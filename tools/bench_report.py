#!/usr/bin/env python3
"""Benchmark runner / regression gate for the repro bench suite.

Three modes:

  run (default)
      Runs the full ``benchmarks/`` suite with wall-clock timing disabled
      (the suite is deterministic in I/O counts, which is what we gate
      on), then writes ``BENCH_<tag>.json`` at the repo root and prints a
      summary of the gated counters.

          python tools/bench_report.py --tag pr1

  compare
      Compares two bench JSON files produced by this tool (or by any
      bench run via ``benchmarks/conftest.py``) and exits nonzero if any
      gated I/O counter regressed beyond the tolerance.

          python tools/bench_report.py --compare BENCH_baseline.json \
              BENCH_pr1.json --tolerance 2%

  markdown
      Renders a bench JSON file as markdown tables.  Experiments that
      export a ``cache`` section (A7, the pooled serving runs) get an
      extra per-pool table with policy, hit-rate, prefetch and
      write-coalescing columns -- like ``perf``, informational only,
      never gated.

          python tools/bench_report.py --markdown BENCH_pr1.json

Exit codes: 0 success / no regression; 1 regression or invalid input;
2 bench suite failed to run.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs.export import (  # noqa: E402
    SchemaError,
    compare,
    load_bench_json,
    to_markdown,
)


def _parse_tolerance(text: str) -> float:
    """Accept '2', '2%', '2.5%' -> percent as float."""
    text = text.strip()
    if text.endswith("%"):
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid tolerance {text!r}: expected a number like '2' or '2%'"
        )
    if value < 0:
        raise argparse.ArgumentTypeError("tolerance must be >= 0")
    return value


def _run_suite(tag: str, pytest_args: list) -> int:
    out_path = REPO_ROOT / f"BENCH_{tag}.json"
    env = dict(os.environ)
    env["BENCH_TAG"] = tag
    sep = os.pathsep
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{SRC}{sep}{existing}" if existing else str(SRC)
    cmd = [
        sys.executable, "-m", "pytest", "benchmarks/",
        "--benchmark-disable", "-q",
    ] + pytest_args
    print(f"$ {' '.join(cmd)}  (BENCH_TAG={tag})")
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        print("bench suite failed; no report written", file=sys.stderr)
        return 2
    if not out_path.exists():
        print(f"bench suite passed but {out_path} was not written",
              file=sys.stderr)
        return 2
    payload = load_bench_json(out_path)
    n_gates = sum(
        len(exp["gate"]) for exp in payload["experiments"].values()
    )
    print(f"\nwrote {out_path}: {len(payload['experiments'])} experiments, "
          f"{n_gates} gated counters")
    return 0


def _compare(old_path: str, new_path: str, tolerance_pct: float,
             strict: bool) -> int:
    try:
        old = load_bench_json(old_path)
        new = load_bench_json(new_path)
    except (OSError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = compare(old, new, tolerance_pct=tolerance_pct)
    print(result.summary(strict=strict))
    return 0 if result.ok(strict=strict) else 1


def _markdown(path: str) -> int:
    try:
        payload = load_bench_json(path)
    except (OSError, SchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(to_markdown(payload))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_report",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--tag", default="pr1",
        help="tag for the output file BENCH_<tag>.json (default: pr1)",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"),
        help="compare two bench JSON files instead of running the suite",
    )
    parser.add_argument(
        "--tolerance", type=_parse_tolerance, default=0.0, metavar="PCT",
        help="allowed regression per gated counter, e.g. '2%%' (default 0)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="in compare mode, also fail on improvements (drift detection)",
    )
    parser.add_argument(
        "--markdown", metavar="JSON",
        help="render a bench JSON file as markdown and exit",
    )
    parser.add_argument(
        "pytest_args", nargs="*",
        help="extra arguments forwarded to pytest in run mode "
             "(e.g. -k e6 to run a subset)",
    )
    args, unknown = parser.parse_known_args(argv)

    if args.compare and args.markdown:
        parser.error("--compare and --markdown are mutually exclusive")
    if args.compare:
        if unknown:
            parser.error(f"unrecognized arguments: {' '.join(unknown)}")
        return _compare(args.compare[0], args.compare[1],
                        args.tolerance, args.strict)
    if args.markdown:
        if unknown:
            parser.error(f"unrecognized arguments: {' '.join(unknown)}")
        return _markdown(args.markdown)
    # unknown flags (e.g. -k, -x) are forwarded to pytest in run mode
    return _run_suite(args.tag, unknown + args.pytest_args)


if __name__ == "__main__":
    sys.exit(main())
