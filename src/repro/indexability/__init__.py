"""The indexability framework of Hellerstein-Koutsoupias-Papadimitriou.

A *workload* is a hypergraph ``(I, Q)``: a set of instances and a set of
queries, each query a subset of ``I``.  An *indexing scheme* for block
size ``B`` is a set of ``B``-subsets of ``I`` (blocks) whose union covers
``I``.  Its quality is measured by

- **redundancy** ``r = B |blocks| / |I|`` -- space blow-up, and
- **access overhead** ``A`` -- the least number such that every query
  ``q`` is covered by at most ``A * ceil(|q|/B)`` blocks.

Search cost is ignored by design; Sections 3-4 of the paper (package
:mod:`repro.core`) add the search structures back.

This package provides the formalism, the Fibonacci workload that is
worst-case for 2-D range searching, and the Redundancy-Theorem lower
bounds (Theorems 1-3 of the paper).
"""

from repro.indexability.workload import Workload, RangeWorkload
from repro.indexability.scheme import (
    IndexingScheme,
    redundancy,
    access_overhead,
    greedy_cover,
    verify_covering,
)
from repro.indexability.fibonacci import (
    fibonacci,
    fibonacci_lattice,
    fibonacci_workload,
    rectangle_point_count,
    tiling_queries,
)
from repro.indexability.lowerbound import (
    redundancy_theorem_bound,
    fibonacci_query_set,
    fibonacci_tradeoff_bound,
    check_redundancy_theorem_conditions,
)

__all__ = [
    "Workload",
    "RangeWorkload",
    "IndexingScheme",
    "redundancy",
    "access_overhead",
    "greedy_cover",
    "verify_covering",
    "fibonacci",
    "fibonacci_lattice",
    "fibonacci_workload",
    "rectangle_point_count",
    "tiling_queries",
    "redundancy_theorem_bound",
    "fibonacci_query_set",
    "fibonacci_tradeoff_bound",
    "check_redundancy_theorem_conditions",
]
