"""Indexing schemes and their quality measures (redundancy, access overhead).

An indexing scheme here is simply a list of blocks, each a set of at most
``B`` instances, whose union covers the instance set.  The paper defines
blocks as exactly-``B`` subsets; allowing partial blocks and charging them
as full blocks in the redundancy (as :func:`redundancy` does) is the
standard convention and only makes our measured redundancy *larger*, i.e.
conservative with respect to the paper's upper bounds.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.indexability.workload import Workload


class IndexingScheme:
    """A placement of instances into blocks of capacity ``B``.

    Parameters
    ----------
    block_size:
        The paper's ``B`` (must be >= 2).
    blocks:
        Iterable of blocks; each block an iterable of instances.
    """

    def __init__(self, block_size: int, blocks: Iterable[Iterable]):
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = block_size
        self.blocks: List[FrozenSet] = [frozenset(b) for b in blocks]
        for i, b in enumerate(self.blocks):
            if len(b) > block_size:
                raise ValueError(
                    f"block {i} holds {len(b)} > B = {block_size} instances"
                )

    @property
    def num_blocks(self) -> int:
        """Number of blocks the structure owns."""
        return len(self.blocks)

    def covered_instances(self) -> FrozenSet:
        """Union of all blocks (the instances the scheme stores)."""
        out: set = set()
        for b in self.blocks:
            out |= b
        return frozenset(out)

    def __repr__(self) -> str:
        return f"IndexingScheme(B={self.block_size}, blocks={self.num_blocks})"


def verify_covering(scheme: IndexingScheme, workload: Workload) -> bool:
    """True iff every instance of the workload appears in some block."""
    return workload.instances <= scheme.covered_instances()


def redundancy(scheme: IndexingScheme, workload: Workload) -> float:
    """The paper's ``r = B |blocks| / |I|``."""
    if workload.num_instances == 0:
        raise ValueError("redundancy undefined for an empty instance set")
    return scheme.block_size * scheme.num_blocks / workload.num_instances


def greedy_cover(
    scheme: IndexingScheme, query: FrozenSet
) -> Optional[List[int]]:
    """Greedy set cover of ``query`` by the scheme's blocks.

    Returns indices of the chosen blocks, or ``None`` when the scheme
    cannot cover the query at all.  Optimal covering is NP-hard in
    general; greedy gives an ``H_B``-approximation, which is adequate for
    measuring *upper-bound* constructions whose own query procedures we
    also measure exactly.
    """
    remaining = set(query)
    if not remaining:
        return []
    chosen: List[int] = []
    # Pre-filter to relevant blocks once; greedy then scans those.
    candidates = [
        (i, b & query) for i, b in enumerate(scheme.blocks) if b & query
    ]
    while remaining:
        best_i, best_gain = -1, 0
        for i, inter in candidates:
            gain = len(inter & remaining)
            if gain > best_gain:
                best_i, best_gain = i, gain
        if best_gain == 0:
            return None
        chosen.append(best_i)
        remaining -= scheme.blocks[best_i]
    return chosen


def access_overhead(
    scheme: IndexingScheme,
    workload: Workload,
    covers: Optional[Sequence[Sequence[int]]] = None,
) -> float:
    """Measured access overhead ``A``.

    ``A`` is the smallest number such that each query ``q`` used at most
    ``A * ceil(|q|/B)`` blocks.  If ``covers`` is given (one block-index
    list per query, e.g. produced by a scheme's own query procedure) those
    covers are charged; otherwise greedy covers are computed.

    Empty queries are skipped (they need no blocks).  Raises if any
    non-empty query cannot be covered.
    """
    B = scheme.block_size
    worst = 0.0
    for qi, q in enumerate(workload.queries):
        if not q:
            continue
        if covers is not None:
            cover = covers[qi]
            got = set()
            for bi in cover:
                got |= scheme.blocks[bi] & q
            if got != q:
                raise ValueError(f"provided cover for query {qi} is incomplete")
        else:
            cover = greedy_cover(scheme, q)
            if cover is None:
                raise ValueError(f"scheme cannot cover query {qi}")
        denom = math.ceil(len(q) / B)
        worst = max(worst, len(cover) / denom)
    return worst


def per_query_block_counts(
    scheme: IndexingScheme, workload: Workload
) -> List[Tuple[int, int]]:
    """For each non-empty query: ``(|q|, blocks used by greedy cover)``."""
    out: List[Tuple[int, int]] = []
    for q in workload.queries:
        if not q:
            continue
        cover = greedy_cover(scheme, q)
        if cover is None:
            raise ValueError("scheme cannot cover a workload query")
        out.append((len(q), len(cover)))
    return out
