"""The Fibonacci lattice and workload (Koutsoupias-Taylor, Section 2.1).

For ``N = f_k`` (the k-th Fibonacci number) the lattice is

    F_N = { (i, i * f_{k-1} mod N) : i = 0 .. N-1 }.

Its key property (Proposition 1 of the paper) is that every axis-parallel
rectangle of area ``l*B*N/B = l*N`` placed anywhere holds roughly the same
number of points regardless of aspect ratio -- the lattice is "uniform at
every scale", which is what makes it worst-case for range indexing.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Sequence

from repro.geometry import Point, Rect
from repro.indexability.workload import RangeWorkload

#: Proposition 1 constants: any rectangle of area ``l*N`` on ``F_N``
#: contains between ``~l/c1`` and ``~l/c2`` times ``B`` points when the
#: area is written as ``l*B*N``.  (c1 ~ 1.9, c2 ~ 0.45.)
C1 = 1.9
C2 = 0.45


@lru_cache(maxsize=None)
def fibonacci(k: int) -> int:
    """The k-th Fibonacci number with f_1 = 1, f_2 = 1."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k <= 2:
        return 1
    a, b = 1, 1
    for _ in range(k - 2):
        a, b = b, a + b
    return b


def fibonacci_index_at_least(n: int) -> int:
    """Smallest k with f_k >= n."""
    k = 1
    while fibonacci(k) < n:
        k += 1
    return k


def fibonacci_lattice(k: int) -> List[Point]:
    """The Fibonacci lattice ``F_N`` for ``N = f_k`` as integer points."""
    if k < 3:
        raise ValueError("k must be >= 3 so that f_{k-1} is defined sensibly")
    N = fibonacci(k)
    step = fibonacci(k - 1)
    return [(float(i), float((i * step) % N)) for i in range(N)]


def rectangle_point_count(points: Sequence[Point], rect: Rect) -> int:
    """Brute-force count of lattice points inside ``rect``."""
    return sum(1 for p in points if rect.contains(p))


def tiling_queries(
    N: int, width: float, height: float
) -> List[Rect]:
    """Partition ``[0, N) x [0, N)`` into non-overlapping w x h tiles.

    This is the query-set construction of Section 2.1: for each aspect
    ratio the lattice is tiled by congruent rectangles.  Tiles are
    half-open in effect: each tile ``[x, x+w) x [y, y+h)`` is represented
    by the closed rectangle ``[x, x+w-eps] x [y, y+h-eps]`` on the integer
    lattice (eps = 0.5 suffices because coordinates are integers).
    """
    if width <= 0 or height <= 0:
        raise ValueError("tile dimensions must be positive")
    eps = 0.5
    tiles: List[Rect] = []
    nx = math.ceil(N / width)
    ny = math.ceil(N / height)
    for ix in range(nx):
        for iy in range(ny):
            x0 = ix * width
            y0 = iy * height
            x1 = min(x0 + width - eps, N - eps)
            y1 = min(y0 + height - eps, N - eps)
            if x1 < x0 or y1 < y0:
                continue
            tiles.append(Rect(x0, x1, y0, y1))
    return tiles


def fibonacci_workload(
    k: int, block_size: int, aspect_levels: int = 4
) -> RangeWorkload:
    """The Fibonacci workload: lattice ``F_{f_k}`` + tilings of area ~B*N.

    Rectangles of dimension ``c^i x (a / c^i)`` with ``a = B*N`` and a
    few aspect levels ``i``; each tiling covers the whole square.  This is
    the concrete instantiation used by the lower-bound experiments.
    """
    points = fibonacci_lattice(k)
    N = len(points)
    a = block_size * N  # target tile area: ~B points by Proposition 1
    rects: List[Rect] = []
    # geometric ladder of aspect ratios, clamped to side <= N
    base = max(2.0, (N / math.sqrt(a)) ** (1.0 / max(1, aspect_levels - 1)))
    for i in range(aspect_levels):
        w = math.sqrt(a) * (base ** i)
        h = a / w
        if w > N or h < 1:
            break
        rects.extend(tiling_queries(N, w, h))
    return RangeWorkload(points, rects)
