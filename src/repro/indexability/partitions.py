"""Redundancy-1 (partition) indexing schemes, for the paper's open problem.

Section 2.2.1 ends with: "Interestingly, we were unable to achieve
A = O(1) for the case r = 1 in which there is no redundancy.  Whether
this bound is possible is an interesting open problem."

An ``r = 1`` scheme is simply a *partition* of the points into B-blocks.
This module provides the natural candidates -- x-sorted, y-sorted,
z-order, and grid-tile partitions -- together with the *exact* access
overhead of a partition on a query set (no set-cover search needed: a
partition admits exactly one cover, the blocks intersecting the query).
Experiment F1 measures how their overheads grow on 3-sided workloads,
illustrating why the open problem resisted: every natural partition has
a query family forcing ``A = omega(1)``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from repro.geometry import Point, ThreeSidedQuery
from repro.indexability.scheme import IndexingScheme


def x_partition(points: Sequence[Point], B: int) -> IndexingScheme:
    """Consecutive runs of the x-order (a B+-tree's leaves)."""
    pts = sorted(points)
    return IndexingScheme(B, [pts[i:i + B] for i in range(0, len(pts), B)])


def y_partition(points: Sequence[Point], B: int) -> IndexingScheme:
    """Consecutive runs of the y-order."""
    pts = sorted(points, key=lambda p: (p[1], p[0]))
    return IndexingScheme(B, [pts[i:i + B] for i in range(0, len(pts), B)])


def zorder_partition(points: Sequence[Point], B: int) -> IndexingScheme:
    """Consecutive runs of the Morton order (a UB-tree's leaves)."""
    from repro.baselines.zorder import morton

    pts = list(points)
    if not pts:
        return IndexingScheme(B, [])
    xs = sorted(p[0] for p in pts)
    ys = sorted(p[1] for p in pts)
    scale = (1 << 16) - 1

    def quant(v: float, lo: float, hi: float) -> int:
        if hi == lo:
            return 0
        return int(max(0.0, min(1.0, (v - lo) / (hi - lo))) * scale)

    pts.sort(key=lambda p: morton(
        quant(p[0], xs[0], xs[-1]), quant(p[1], ys[0], ys[-1])
    ))
    return IndexingScheme(B, [pts[i:i + B] for i in range(0, len(pts), B)])


def grid_partition(points: Sequence[Point], B: int) -> IndexingScheme:
    """~sqrt(N/B) x sqrt(N/B) tiles, row-major packed into B-blocks.

    Tiles hold ~B points under uniformity; skew degrades them -- the
    grid file's failure mode, here in pure indexability terms.
    """
    pts = list(points)
    if not pts:
        return IndexingScheme(B, [])
    g = max(1, round(math.sqrt(len(pts) / B)))
    xs = sorted(p[0] for p in pts)
    ys = sorted(p[1] for p in pts)
    x_cuts = [xs[min(len(xs) - 1, (i * len(xs)) // g)] for i in range(1, g)]
    y_cuts = [ys[min(len(ys) - 1, (i * len(ys)) // g)] for i in range(1, g)]

    def cell(p: Point) -> Tuple[int, int]:
        cx = sum(1 for c in x_cuts if p[0] > c)
        cy = sum(1 for c in y_cuts if p[1] > c)
        return cx, cy

    cells: Dict[Tuple[int, int], List[Point]] = {}
    for p in pts:
        cells.setdefault(cell(p), []).append(p)
    blocks: List[List[Point]] = []
    for key in sorted(cells):
        bucket = cells[key]
        for i in range(0, len(bucket), B):
            blocks.append(bucket[i:i + B])
    return IndexingScheme(B, blocks)


PARTITIONS: Dict[str, Callable[[Sequence[Point], int], IndexingScheme]] = {
    "x-sorted": x_partition,
    "y-sorted": y_partition,
    "z-order": zorder_partition,
    "grid tiles": grid_partition,
}


def partition_access_overhead(
    scheme: IndexingScheme,
    points: Sequence[Point],
    queries: Sequence[ThreeSidedQuery],
) -> float:
    """Exact worst access overhead of a partition over the queries.

    A partition has a unique cover per query -- the blocks containing at
    least one answer point -- so no approximation is involved.
    """
    B = scheme.block_size
    worst = 0.0
    for q in queries:
        answer = {p for p in points if q.contains(p)}
        if not answer:
            continue
        used = sum(1 for blk in scheme.blocks if blk & answer)
        worst = max(worst, used / math.ceil(len(answer) / B))
    return worst
