"""Lower bounds on redundancy: the Redundancy Theorem and Theorems 2-3.

The Redundancy Theorem (Samoladas-Miranker, Theorem 1 in the paper): if an
indexing scheme has access overhead ``A`` and there are queries
``q_1..q_M`` with ``|q_i| >= B`` and pairwise intersections at most
``B / (2 (eps A)^2)``, then

    r  >=  (eps - 2) / (2 eps)  *  (1 / (B N))  *  sum_i |q_i|

for any real ``2 < eps < B/A`` with ``B/(eps A)`` an integer.

Applied to the Fibonacci workload with tilings of ``~log_c(N/(c1 k B))``
aspect ratios, each tiling containing ``N/(kB)`` queries of ``~kB``
points, this yields Theorem 2: ``r = Omega(log n / log A)``, and with the
weaker requirement of covering ``T = tB`` points using ``L + A t`` blocks,
Theorem 3: ``r = Omega(log n / (log L + log A))``.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import List, Sequence, Tuple

from repro.geometry import Rect
from repro.indexability.fibonacci import C1, C2, tiling_queries
from repro.indexability.workload import RangeWorkload


def redundancy_theorem_bound(
    query_sizes: Sequence[int], B: int, N: int, eps: float
) -> float:
    """Numeric lower bound on r from Theorem 1 given a valid query set."""
    if not 2 < eps:
        raise ValueError("eps must exceed 2")
    if B <= 0 or N <= 0:
        raise ValueError("B and N must be positive")
    return (eps - 2) / (2 * eps) * sum(query_sizes) / (B * N)


def check_redundancy_theorem_conditions(
    workload: RangeWorkload, B: int, A: float, eps: float
) -> Tuple[bool, str]:
    """Verify Theorem 1's hypotheses on a concrete workload.

    Checks ``|q_i| >= B`` and ``|q_i ∩ q_j| <= B / (2 (eps A)^2)`` for all
    pairs.  Returns ``(ok, reason)``.  O(M^2) -- intended for the modest
    query sets of the experiments.
    """
    limit = B / (2 * (eps * A) ** 2)
    sets = workload.queries
    for i, q in enumerate(sets):
        if len(q) < B:
            return False, f"query {i} has {len(q)} < B = {B} points"
    for (i, qi), (j, qj) in combinations(enumerate(sets), 2):
        inter = len(qi & qj)
        if inter > limit:
            return (
                False,
                f"queries {i},{j} intersect in {inter} > {limit:.2f} points",
            )
    return True, "ok"


def separation_parameter(B: int, A: float, k: int = 1, eps: float = 4.0) -> float:
    """The paper's aspect-ratio step ``c = (4 c1 / c2) k (eps A)^2``.

    Rectangles of consecutive aspect levels differ by factor ``c``, which
    by Proposition 1 keeps pairwise intersections below the Redundancy
    Theorem's threshold (requires ``B >= 4 (eps A)^2``).
    """
    return (4 * C1 / C2) * k * (eps * A) ** 2


def fibonacci_query_set(
    N: int, B: int, A: float, k: int = 1, eps: float = 4.0
) -> List[Rect]:
    """The lower-bound query set: tilings at aspect levels separated by c.

    Tile area is ``a = c1 * k * B * N`` so each tile holds >= kB points by
    Proposition 1; widths run over ``c^i`` within ``[a/N, N]``.
    """
    a = C1 * k * B * N
    c = separation_parameter(B, A, k, eps)
    rects: List[Rect] = []
    w = max(a / N, 1.0)
    while w <= N and a / w >= 1.0:
        rects.extend(tiling_queries(N, w, a / w))
        w *= c
    return rects


def fibonacci_tradeoff_bound(
    N: int, B: int, A: float, k: int = 1, eps: float = 4.0
) -> float:
    """Numeric form of Theorems 2-3 for the Fibonacci workload.

    Number of aspect levels ``~ log_c(N / (c1 k B))`` with
    ``c = (4c1/c2) k (eps A)^2``; each level's tiling sums to ``>= N``
    points (the tiles partition the lattice), so Theorem 1 gives

        r >= (eps-2)/(2 eps) * levels * 1 / (c1 k)

    up to the floor in Proposition 1.  The value is returned *unfloored*:
    at practical N the explicit constants make it far below the trivial
    ``r >= 1``, which is the usual fate of lower-bound constants -- the
    Omega(log n / log A) *growth* is what experiment E2 verifies.
    Returns 0.0 when the parameters admit no aspect level (tiny N).
    """
    c = separation_parameter(B, A, k, eps)
    span = N / (C1 * k * B)
    if span <= 1 or c <= 1:
        return 0.0
    levels = math.log(span) / math.log(c)
    return (eps - 2) / (2 * eps) * levels / (C1 * k)


def theorem2_asymptotic(n: int, A: float) -> float:
    """The clean asymptotic shape ``log(n) / log(A)`` (A > 1) of Theorem 2.

    Useful as the reference curve in plots; constants are absorbed.
    """
    if n < 2:
        return 0.0
    la = math.log(max(A, 2.0))
    return math.log(n) / la


def theorem3_asymptotic(n: int, L: float, A: float) -> float:
    """Theorem 3's shape ``log(n) / (log L + log A)``."""
    if n < 2:
        return 0.0
    denom = math.log(max(L, 2.0)) + math.log(max(A, 2.0))
    return math.log(n) / denom
