"""Workloads: the hypergraph ``(I, Q)`` of indexability theory."""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence

from repro.geometry import Point, Rect


class Workload:
    """A finite workload ``W = (I, Q)``.

    ``instances`` is the ground set; ``queries`` are subsets of it.  The
    class is deliberately small: indexability theory is purely
    combinatorial, and keeping queries as frozensets makes redundancy and
    access-overhead computations direct set algebra.
    """

    def __init__(self, instances: Iterable, queries: Iterable[Iterable]):
        self.instances: FrozenSet = frozenset(instances)
        self.queries: List[FrozenSet] = [frozenset(q) for q in queries]
        for i, q in enumerate(self.queries):
            extra = q - self.instances
            if extra:
                raise ValueError(
                    f"query {i} contains {len(extra)} non-instance elements"
                )

    @property
    def num_instances(self) -> int:
        """Size of the instance set ``|I|``."""
        return len(self.instances)

    @property
    def num_queries(self) -> int:
        """Number of queries ``|Q|``."""
        return len(self.queries)

    def __repr__(self) -> str:
        return f"Workload(|I|={self.num_instances}, |Q|={self.num_queries})"


class RangeWorkload(Workload):
    """A 2-D range-searching workload: points plus rectangle queries.

    Queries are given geometrically (as :class:`~repro.geometry.Rect`) and
    materialized to point sets, which is what the indexability measures
    need.  The geometric form is kept for the lower-bound machinery, which
    reasons about areas and aspect ratios.
    """

    def __init__(self, points: Sequence[Point], rects: Sequence[Rect]):
        self.points: List[Point] = list(points)
        self.rects: List[Rect] = list(rects)
        super().__init__(
            self.points, [tuple(r.filter(self.points)) for r in self.rects]
        )

    def query_sizes(self) -> List[int]:
        """Output size ``|q|`` of every query, in order."""
        return [len(q) for q in self.queries]

    def __repr__(self) -> str:
        return (
            f"RangeWorkload(|I|={self.num_instances}, |Q|={self.num_queries})"
        )
