"""Simulated external memory: block store, I/O accounting, buffer pool.

The paper's cost model (the standard I/O model of Aggarwal and Vitter)
charges one unit per transfer of a *block* of ``B`` records between disk
and main memory.  Reproducing the paper in Python means reproducing that
accounting exactly, so this package provides:

- :class:`BlockStore` -- a simulated disk of fixed-capacity blocks.  Every
  read and write is counted in an :class:`IOStats`.
- :class:`BufferPool` -- a write-back cache in front of a store with
  pluggable replacement (LRU / scan-resistant 2Q / CLOCK, see
  :mod:`repro.io.policies`), optional CONT-chain readahead and write
  coalescing, and a pin API modelling the paper's "O(1) catalog blocks
  held in main memory".
- :class:`IOStats` -- exact counters, subtractable for scoped measurement.

All data structures in :mod:`repro` access their data exclusively through
this interface, so the quantities the paper's theorems bound (blocks of
space, I/Os per operation) are measured, not estimated.
"""

from repro.io.stats import IOStats
from repro.io.blockstore import Block, BlockStore, StorageError, BlockCapacityError
from repro.io.bufferpool import BufferPool, CowRecords
from repro.io.checksum import ChecksummedStore, CorruptBlockError
from repro.io.hooks import crash_point, prefetch_hint
from repro.io.policies import (
    POLICIES,
    ClockPolicy,
    LRUPolicy,
    ReplacementPolicy,
    TwoQPolicy,
    make_policy,
)
from repro.io.trace import TraceRecorder, TraceSummary

__all__ = [
    "IOStats",
    "Block",
    "BlockStore",
    "BufferPool",
    "CowRecords",
    "TraceRecorder",
    "TraceSummary",
    "StorageError",
    "BlockCapacityError",
    "ChecksummedStore",
    "CorruptBlockError",
    "crash_point",
    "prefetch_hint",
    "ReplacementPolicy",
    "LRUPolicy",
    "TwoQPolicy",
    "ClockPolicy",
    "POLICIES",
    "make_policy",
]
