"""Exact I/O accounting for the simulated disk."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Counts of block-level operations.

    ``reads`` and ``writes`` are the quantities the paper's theorems bound
    (one unit per block transferred).  ``allocs`` and ``frees`` track space
    turnover and are not I/Os by themselves; a freshly allocated block only
    costs an I/O when it is written.
    """

    reads: int = 0
    writes: int = 0
    allocs: int = 0
    frees: int = 0

    @property
    def ios(self) -> int:
        """Total I/Os: block reads plus block writes."""
        return self.reads + self.writes

    def copy(self) -> "IOStats":
        """Return an independent snapshot of the current counters."""
        return IOStats(self.reads, self.writes, self.allocs, self.frees)

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.reads - other.reads,
            self.writes - other.writes,
            self.allocs - other.allocs,
            self.frees - other.frees,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.reads + other.reads,
            self.writes + other.writes,
            self.allocs + other.allocs,
            self.frees + other.frees,
        )

    def reset(self) -> None:
        """Zero all counters in place."""
        self.reads = 0
        self.writes = 0
        self.allocs = 0
        self.frees = 0

    def as_dict(self) -> dict:
        """Plain-dict view (JSON-friendly; used by the obs exporters)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "ios": self.ios,
            "allocs": self.allocs,
            "frees": self.frees,
        }

    def __str__(self) -> str:
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"ios={self.ios}, allocs={self.allocs}, frees={self.frees})"
        )


class Meter:
    """Scoped I/O measurement over a storage object.

    Usage::

        with Meter(store) as m:
            tree.query(...)
        print(m.delta.ios)

    Meters are snapshot-based, so any number of them may be nested or
    overlapped on the same store: each one independently measures the
    traffic between its own ``__enter__`` and ``__exit__`` (the span
    layer in :mod:`repro.obs.spans` relies on this).  A meter may be
    reused: re-entering takes a fresh snapshot.
    """

    def __init__(self, storage) -> None:
        self._storage = storage
        self._before: "IOStats | None" = None
        self.delta: IOStats = IOStats()

    def __enter__(self) -> "Meter":
        self._before = self._storage.stats.copy()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.delta = self._storage.stats - self._before
        self._before = None

    @property
    def current(self) -> IOStats:
        """The delta accrued so far.

        Inside the ``with`` block this reads the live counters; after
        exit it equals :attr:`delta`.
        """
        if self._before is None:
            return self.delta.copy()
        return self._storage.stats - self._before
