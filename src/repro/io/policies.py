"""Pluggable frame-replacement policies for the buffer pool.

The paper states its bounds in block transfers; *which* blocks a cache
keeps resident decides how many transfers a real workload pays.  The
pool in :mod:`repro.io.bufferpool` delegates that decision to a policy
object so the experiments can compare strategies under identical
workloads:

- :class:`LRUPolicy` -- classic least-recently-used, bit-for-bit the
  behaviour of the original insertion-order pool (the default, and the
  one the gated experiment baselines were recorded under).
- :class:`TwoQPolicy` -- the 2Q algorithm (Johnson & Shasha, VLDB '94):
  a probationary FIFO ``A1in`` absorbs first-touch blocks, a ghost
  queue ``A1out`` remembers recently evicted ids, and only a block
  re-referenced *after* leaving ``A1in`` is admitted to the protected
  LRU ``Am``.  Big sequential sweeps (``BlockedSequence`` CONT-chain
  scans, bulk builds) flow through ``A1in`` without displacing the hot
  upper-level blocks parked in ``Am`` -- scan resistance.
- :class:`ClockPolicy` -- second-chance CLOCK: one reference bit per
  frame and a sweeping hand, approximating LRU at O(1) per touch.

The protocol is deliberately small; the pool owns the frame table and
the policy owns only the ordering:

``record_insert(bid)``
    A frame was admitted (read miss or write of an uncached block).
``record_hit(bid)``
    A resident frame was touched again (read or write hit).
``peek_victim() -> bid | None``
    Choose the next frame to evict *without* removing it -- the pool
    only removes the frame after its dirty write-back succeeded, so a
    failed flush leaves pool and policy consistent.  ``None`` means no
    evictable frame exists (the pool raises ``BlockCapacityError``).
``evicted(bid)``
    The chosen victim actually left the pool (2Q records its ghost).
``record_remove(bid)``
    A frame left outside eviction (``free`` or ``pin``); no ghost.

Policies never see pinned blocks: the pool keeps those in a separate
resident set, exactly as the paper keeps its O(1) catalog blocks in
main memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Type, Union


class ReplacementPolicy:
    """Base class: the ordering half of a buffer pool."""

    name = "?"

    def __init__(self, capacity: int):
        self.capacity = capacity

    def record_insert(self, bid: int) -> None:
        raise NotImplementedError

    def record_hit(self, bid: int) -> None:
        raise NotImplementedError

    def peek_victim(self) -> Optional[int]:
        raise NotImplementedError

    def evicted(self, bid: int) -> None:
        """Default: eviction removes like any other removal."""
        self.record_remove(bid)

    def record_remove(self, bid: int) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(capacity={self.capacity})"


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used; insertion order == recency order.

    Reproduces the original pool's ``OrderedDict`` exactly: admit at
    the MRU end, touch moves to the MRU end, evict from the LRU head.
    The gated experiment baselines assume this eviction sequence.
    """

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def record_insert(self, bid: int) -> None:
        self._order[bid] = None

    def record_hit(self, bid: int) -> None:
        self._order.move_to_end(bid)

    def peek_victim(self) -> Optional[int]:
        return next(iter(self._order)) if self._order else None

    def record_remove(self, bid: int) -> None:
        self._order.pop(bid, None)

    def clear(self) -> None:
        self._order.clear()

    def __len__(self) -> int:
        return len(self._order)


class TwoQPolicy(ReplacementPolicy):
    """Scan-resistant 2Q: probationary FIFO + ghost queue + protected LRU.

    Parameters follow the paper's tuning guidance: ``A1in`` holds up to
    a quarter of the capacity, the ghost ``A1out`` remembers half a
    capacity's worth of evicted ids (ids only -- no data, so the memory
    cost is negligible).  A block's life cycle:

    1. first touch -> tail of ``A1in`` (FIFO; repeat touches while
       probationary do NOT promote -- correlated accesses within one
       scan pass are not evidence of reuse),
    2. evicted from ``A1in`` -> id parked in ``A1out``,
    3. touched again while ghosted -> admitted to ``Am`` (protected
       LRU): the block demonstrated genuine re-reference distance.

    Reclaim prefers ``A1in`` whenever it is over its share, so
    sequential floods cannibalize themselves and ``Am`` survives.
    """

    name = "2q"

    def __init__(self, capacity: int, *,
                 kin: Optional[int] = None, kout: Optional[int] = None):
        super().__init__(capacity)
        self.kin = max(1, capacity // 4) if kin is None else max(1, kin)
        self.kout = max(1, capacity // 2) if kout is None else max(0, kout)
        self._a1in: "OrderedDict[int, None]" = OrderedDict()
        self._a1out: "OrderedDict[int, None]" = OrderedDict()
        self._am: "OrderedDict[int, None]" = OrderedDict()

    def record_insert(self, bid: int) -> None:
        if bid in self._a1out:
            # re-referenced after probation: proven reuse -> protected
            del self._a1out[bid]
            self._am[bid] = None
        else:
            self._a1in[bid] = None

    def record_hit(self, bid: int) -> None:
        if bid in self._am:
            self._am.move_to_end(bid)
        # hits inside A1in deliberately do not reorder or promote

    def peek_victim(self) -> Optional[int]:
        if self._a1in and (len(self._a1in) > self.kin or not self._am):
            return next(iter(self._a1in))
        if self._am:
            return next(iter(self._am))
        if self._a1in:
            return next(iter(self._a1in))
        return None

    def evicted(self, bid: int) -> None:
        if bid in self._a1in:
            del self._a1in[bid]
            self._a1out[bid] = None
            while len(self._a1out) > self.kout:
                self._a1out.popitem(last=False)
        else:
            self._am.pop(bid, None)

    def record_remove(self, bid: int) -> None:
        # freed or pinned: forget entirely, including the ghost (a freed
        # id may be re-allocated to unrelated data)
        self._a1in.pop(bid, None)
        self._am.pop(bid, None)
        self._a1out.pop(bid, None)

    def clear(self) -> None:
        self._a1in.clear()
        self._a1out.clear()
        self._am.clear()

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def snapshot(self) -> Dict[str, int]:
        """Queue occupancies for the observability exporters."""
        return {
            "a1in": len(self._a1in),
            "a1out": len(self._a1out),
            "am": len(self._am),
        }


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK: reference bits and a sweeping hand.

    Frames sit on a logical ring (dict order); a touch sets the frame's
    reference bit.  The victim search sweeps from the hand, clearing
    set bits and rotating those frames behind the hand, and picks the
    first frame whose bit is already clear.  O(1) amortized, no
    per-touch reordering -- the classic cheap LRU approximation.
    """

    name = "clock"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._ref: "OrderedDict[int, bool]" = OrderedDict()

    def record_insert(self, bid: int) -> None:
        self._ref[bid] = False

    def record_hit(self, bid: int) -> None:
        self._ref[bid] = True

    def peek_victim(self) -> Optional[int]:
        if not self._ref:
            return None
        # at most one full rotation clears every set bit
        for _ in range(2 * len(self._ref)):
            bid = next(iter(self._ref))
            if self._ref[bid]:
                self._ref[bid] = False
                self._ref.move_to_end(bid)
            else:
                return bid
        return next(iter(self._ref))

    def record_remove(self, bid: int) -> None:
        self._ref.pop(bid, None)

    def clear(self) -> None:
        self._ref.clear()

    def __len__(self) -> int:
        return len(self._ref)


#: Selectable policies, by the name the ``BufferPool(policy=...)``
#: parameter accepts.
POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    LRUPolicy.name: LRUPolicy,
    TwoQPolicy.name: TwoQPolicy,
    ClockPolicy.name: ClockPolicy,
}


def make_policy(
    policy: Union[str, ReplacementPolicy, Type[ReplacementPolicy]],
    capacity: int,
) -> ReplacementPolicy:
    """Resolve a policy spec: a name, a class, or a ready instance."""
    if isinstance(policy, ReplacementPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, ReplacementPolicy):
        return policy(capacity)
    try:
        return POLICIES[policy](capacity)
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {policy!r}; "
            f"choose from {sorted(POLICIES)}"
        ) from None
