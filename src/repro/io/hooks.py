"""Protocol-level hook points shared by stores and store wrappers.

The storage protocol (see :class:`~repro.io.BlockStore`) is duck-typed:
structures run over the raw store, a :class:`~repro.io.BufferPool`, a
:class:`~repro.io.TraceRecorder` or the fault-injection wrappers in
:mod:`repro.resilience` without knowing which.  This module holds the
hooks that must stay cheap on the plain store:

- :func:`crash_point` -- a named marker inside a multi-block update
  path.  A store that exposes a ``crash_hook(tag)`` callable (only
  :class:`~repro.resilience.FaultyStore` does) gets to raise a
  :class:`~repro.resilience.SimulatedCrash` there; every other store
  pays a single ``getattr`` returning ``None``, the same price as an
  unattached :func:`repro.obs.spans.span`.
- :func:`prefetch_hint` -- a sequential-run announcement.  A store
  that exposes a ``prefetch_hint(bids)`` callable (only
  :class:`~repro.io.BufferPool` does) learns the run for readahead;
  every other store pays the same single ``getattr``.

Structures annotate the points between which their on-disk state is
transiently inconsistent (mid-split, mid-placement, mid-promotion), so
the recovery verifier can crash *at every such point* and prove the
journal restores an invariant-clean state -- and announce the block
runs they are about to walk (CONT chains, slab lists), so a readahead
pool can batch the fetches.
"""

from __future__ import annotations


def crash_point(store, tag: str) -> None:
    """Declare a named crash site inside a multi-block update.

    No-op unless ``store`` (or a wrapper in its stack) exposes a
    ``crash_hook`` attribute; the hook may raise ``SimulatedCrash`` to
    model the process dying at exactly this point.
    """
    hook = getattr(store, "crash_hook", None)
    if hook is not None:
        hook(tag)


def prefetch_hint(store, bids) -> None:
    """Announce a sequential run of block ids the caller will read.

    No-op unless ``store`` exposes a ``prefetch_hint`` attribute (a
    :class:`~repro.io.BufferPool`; and even there it is free unless the
    pool was built with ``readahead_window > 0``).  Hints are advisory:
    they never change results, only which blocks a readahead pool
    fetches ahead of demand.
    """
    hint = getattr(store, "prefetch_hint", None)
    if hint is not None:
        hint(bids)
