"""Policy-pluggable write-back buffer pool with readahead and coalescing.

The paper's Section 3.1 keeps ``O(1)`` "catalog" blocks resident in main
memory; :meth:`BufferPool.pin` models exactly that.  Reads served from the
pool cost no disk I/O; evictions of dirty frames cost a write.  The pool
presents the same storage protocol as :class:`BlockStore`, so any structure
can run with or without caching -- ablation A2 quantifies the difference.

Beyond the classic pool, three hot-path features are selectable (all off
by default, under which the pool is bit-for-bit the original LRU pool --
the gated experiment baselines depend on that):

``policy=``
    Frame replacement strategy: ``"lru"`` (default), scan-resistant
    ``"2q"``, or ``"clock"`` -- see :mod:`repro.io.policies`.  A policy
    only orders the unpinned frames; the pool owns the frame table,
    dirty set and pin set.

``readahead_window=``
    CONT-chain readahead.  Structures with sequential block runs
    (:class:`~repro.substrates.blocked_list.BlockedSequence` chains, the
    static indexes' slab lists, the PST's spill chains) announce them
    via :func:`repro.io.hooks.prefetch_hint`; the pool learns the
    successor of each hinted block and, on a logical miss, batch-fetches
    up to ``readahead_window`` further blocks down the learned chain.
    Counters: ``prefetch_issued`` (blocks fetched ahead of demand),
    ``prefetch_hits`` (later reads served from a prefetched frame),
    ``prefetch_waste`` (prefetched frames evicted, dropped or
    overwritten before any read).  ``issued == hits + waste +
    still-resident-untouched`` at all times.

``coalesce_writes=``
    Group flush: when an eviction must write back a dirty victim, the
    *entire* dirty set is written in one block-id-sorted batch (the
    sequential pass a real disk absorbs in one seek), leaving the
    survivors resident but clean.  ``coalesced_writes`` counts the
    writes that rode along with a batch leader.  The failure discipline
    is unchanged: a frame is unmarked only after its own write
    succeeded, so a mid-batch failure leaves exactly the unflushed
    frames dirty.

``copy_on_hit=``
    Zero-copy fast path.  By default (``None``) the pool mirrors the
    physical store's ``copy_on_io``: a safety-first chain keeps the
    defensive per-hit ``list(records)`` copy, while a
    ``copy_on_io=False`` chain serves hits as :class:`CowRecords` --
    a copy-on-write view over the cached frame that costs nothing to
    create and only materializes a private list if the caller mutates
    it.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.io.blockstore import (
    Block,
    BlockCapacityError,
    BlockStore,
    StorageError,
    StoreObserver,
)
from repro.io.policies import ReplacementPolicy, make_policy
from repro.io.stats import IOStats


class CowRecords:
    """Copy-on-write view of a cached frame's record list.

    Reading (iteration, indexing, ``len``, ``in``) delegates straight to
    the shared list; the first mutating operation copies it, so a caller
    can never corrupt the pool's cached frame through the returned
    block.  This gives ``copy_on_io=False`` chains allocation-free cache
    hits while preserving the aliasing guarantee the I/O accounting
    relies on.
    """

    __slots__ = ("_data", "_shared")

    def __init__(self, data: List[Any]):
        self._data = data
        self._shared = True

    def _own(self) -> List[Any]:
        if self._shared:
            self._data = list(self._data)
            self._shared = False
        return self._data

    @property
    def is_shared(self) -> bool:
        """True while the view still aliases the pool's frame."""
        return self._shared

    # -- readers: zero-copy delegation ---------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __getitem__(self, index):
        return self._data[index]

    def __contains__(self, item: Any) -> bool:
        return item in self._data

    def __reversed__(self) -> Iterator[Any]:
        return reversed(self._data)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, CowRecords):
            other = other._data
        return self._data == other

    def __add__(self, other) -> List[Any]:
        return list(self._data) + list(other)

    def __radd__(self, other) -> List[Any]:
        return list(other) + list(self._data)

    def index(self, *args) -> int:
        return self._data.index(*args)

    def count(self, item: Any) -> int:
        return self._data.count(item)

    def copy(self) -> List[Any]:
        return list(self._data)

    # -- mutators: copy first ------------------------------------------
    def __setitem__(self, index, value) -> None:
        self._own()[index] = value

    def __delitem__(self, index) -> None:
        del self._own()[index]

    def append(self, item: Any) -> None:
        self._own().append(item)

    def extend(self, items: Iterable[Any]) -> None:
        self._own().extend(items)

    def insert(self, index: int, item: Any) -> None:
        self._own().insert(index, item)

    def pop(self, index: int = -1) -> Any:
        return self._own().pop(index)

    def remove(self, item: Any) -> None:
        self._own().remove(item)

    def sort(self, **kwargs) -> None:
        self._own().sort(**kwargs)

    def reverse(self) -> None:
        self._own().reverse()

    def clear(self) -> None:
        self._data = []
        self._shared = False

    def __repr__(self) -> str:
        tag = "shared" if self._shared else "owned"
        return f"CowRecords({tag}, n={len(self._data)})"


class BufferPool:
    """Write-back cache over a block store with pluggable replacement.

    Parameters
    ----------
    store:
        The underlying simulated disk (or a wrapper chain over one).
    capacity:
        Number of unpinned frames the pool may hold.  Pinned frames are
        accounted separately (the paper's resident catalog blocks).
    policy:
        Replacement policy: a name from
        :data:`repro.io.policies.POLICIES`, a policy class, or a ready
        instance.  Default ``"lru"`` reproduces the original pool's
        eviction sequence exactly.
    readahead_window:
        Maximum blocks fetched ahead per logical miss along a learned
        CONT chain.  ``0`` (default) disables readahead entirely:
        hints are ignored and no extra physical reads ever happen.
    coalesce_writes:
        Flush the whole dirty set, block-id-sorted, whenever an
        eviction or :meth:`flush` writes back.  Default off.
    copy_on_hit:
        ``True`` -> defensive copy per hit (original behaviour);
        ``False`` -> :class:`CowRecords` zero-copy views; ``None``
        (default) -> follow the physical store's ``copy_on_io``.
    """

    def __init__(
        self,
        store: BlockStore,
        capacity: int,
        *,
        policy: "Union[str, ReplacementPolicy, type]" = "lru",
        readahead_window: int = 0,
        coalesce_writes: bool = False,
        copy_on_hit: "Optional[bool]" = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if readahead_window < 0:
            raise ValueError("readahead_window must be non-negative")
        self._store = store
        self._capacity = capacity
        self._policy = make_policy(policy, capacity)
        self._window = int(readahead_window)
        self._coalesce = bool(coalesce_writes)
        if copy_on_hit is None:
            copy_on_hit = bool(getattr(self.physical_store, "copy_on_io", True))
        self._copy_on_hit = bool(copy_on_hit)
        # bid -> records for the unpinned resident frames; victim choice
        # is the policy's job, the table itself is unordered
        self._frames: Dict[int, List[Any]] = {}
        self._dirty: set[int] = set()
        self._pinned: dict[int, List[Any]] = {}
        self._pinned_dirty: set[int] = set()
        # readahead state: learned successor per hinted block, plus the
        # resident frames that were prefetched and not yet touched
        self._succ: Dict[int, int] = {}
        self._prefetched: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.logical_writes = 0
        self.evictions = 0
        self.prefetch_issued = 0
        self.prefetch_hits = 0
        self.prefetch_waste = 0
        self.coalesced_writes = 0
        # every read now mutates policy state, so concurrent readers
        # (the serving tier's shared read lock admits them) serialize on
        # this lock; single-threaded callers pay one uncontended acquire
        self._lock = threading.RLock()
        self._observers: List[StoreObserver] = []
        # registry counters only when the features needing them are on,
        # so default pools add no metric keys (import is lazy to keep
        # repro.io free of an import-time obs dependency)
        self._m_issued = self._m_phits = self._m_waste = None
        self._m_coalesced = None
        if self._window > 0 or self._coalesce:
            from repro.obs.metrics import counter as _counter

            labels = {"structure": "bufferpool", "policy": self._policy.name}
            if self._window > 0:
                self._m_issued = _counter("prefetch_issued", **labels)
                self._m_phits = _counter("prefetch_hits", **labels)
                self._m_waste = _counter("prefetch_waste", **labels)
            if self._coalesce:
                self._m_coalesced = _counter("coalesced_writes", **labels)

    # ------------------------------------------------------------------
    # Storage protocol
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the underlying store's ``B``)."""
        return self._store.block_size

    @property
    def stats(self) -> IOStats:
        """Physical I/O counters of the underlying disk."""
        return self._store.stats

    @property
    def physical_store(self) -> BlockStore:
        """The underlying store whose counters are the physical truth."""
        return getattr(self._store, "physical_store", self._store)

    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy instance ordering the frames."""
        return self._policy

    @property
    def crash_hook(self):
        """Forward the inner chain's crash hook (fault injection)."""
        return getattr(self._store, "crash_hook", None)

    def add_observer(self, callback: StoreObserver) -> None:
        """Subscribe ``callback(op, bid)`` to *pool-level* events.

        Hook point for the observability layer: ``op`` is ``"hit"``,
        ``"miss"``, ``"evict"`` or ``"prefetch"`` -- the cache behaviour
        the physical counters cannot see.  Physical reads/writes are
        observed on :attr:`physical_store` instead.
        """
        self._observers.append(callback)

    def remove_observer(self, callback: StoreObserver) -> None:
        """Unsubscribe a previously added pool observer."""
        try:
            self._observers.remove(callback)
        except ValueError:
            pass

    def _emit(self, op: str, bid: int) -> None:
        for cb in self._observers:
            cb(op, bid)

    def alloc(self) -> int:
        """Allocate a block on the underlying store (no I/O)."""
        return self._store.alloc()

    def read(self, bid: int) -> Block:
        """Read through the cache; hits cost no physical I/O."""
        with self._lock:
            if bid in self._pinned:
                self.hits += 1
                if self._observers:
                    self._emit("hit", bid)
                records = self._pinned[bid]
                return Block(
                    bid,
                    list(records) if self._copy_on_hit else CowRecords(records),
                )
            if bid in self._frames:
                self.hits += 1
                self._policy.record_hit(bid)
                if bid in self._prefetched:
                    self._prefetched.discard(bid)
                    self.prefetch_hits += 1
                    if self._m_phits is not None:
                        self._m_phits.inc()
                if self._observers:
                    self._emit("hit", bid)
                records = self._frames[bid]
                return Block(
                    bid,
                    list(records) if self._copy_on_hit else CowRecords(records),
                )
            self.misses += 1
            if self._observers:
                self._emit("miss", bid)
            block = self._store.read(bid)
            if self._capacity > 0:
                self._evict_to_fit()
                self._frames[bid] = list(block.records)
                self._policy.record_insert(bid)
                if self._window > 0:
                    self._readahead(bid)
            return block

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Write into the cache (write-back; flushed on eviction).

        Over-capacity record lists raise :class:`BlockCapacityError`
        up front, before any frame-table mutation or physical traffic:
        the block is invalid no matter where it would eventually land.
        """
        data = list(records)
        if len(data) > self.block_size:
            raise BlockCapacityError(
                f"block {bid}: {len(data)} records > block size "
                f"{self.block_size}"
            )
        with self._lock:
            self.logical_writes += 1
            if bid in self._pinned:
                self._pinned[bid] = data
                self._pinned_dirty.add(bid)
                return
            if self._capacity == 0:
                # degenerate pool: pure write-through
                self._store.write(bid, data)
                return
            if bid in self._frames:
                self._policy.record_hit(bid)
                if bid in self._prefetched:
                    # overwritten before any read: the fetched data was
                    # never used, so the prefetch was wasted
                    self._prefetched.discard(bid)
                    self.prefetch_waste += 1
                    if self._m_waste is not None:
                        self._m_waste.inc()
            else:
                self._evict_to_fit()
                self._policy.record_insert(bid)
            self._frames[bid] = data
            self._dirty.add(bid)

    def free(self, bid: int) -> None:
        """Drop any cached frame and free the block on the store.

        The store free runs first: if it fails, the cached frame (and
        its dirty mark) survive untouched.
        """
        with self._lock:
            if bid in self._pinned:
                raise StorageError(f"cannot free pinned block {bid}")
            self._store.free(bid)
            if bid in self._frames:
                del self._frames[bid]
                self._policy.record_remove(bid)
            self._dirty.discard(bid)
            if bid in self._prefetched:
                self._prefetched.discard(bid)
                self.prefetch_waste += 1
                if self._m_waste is not None:
                    self._m_waste.inc()
            self._succ.pop(bid, None)

    def invalidate(self, bid: int) -> None:
        """Drop any cached frame for ``bid`` without writing it back.

        For out-of-band repair channels (the scrubber) that rewrote the
        block beneath the pool: the resident frame -- clean or dirty --
        no longer describes the disk and must not be served or flushed.
        Pinned frames cannot be invalidated (they are the structure's
        resident state, not a cache of the disk).
        """
        with self._lock:
            if bid in self._pinned:
                raise StorageError(f"cannot invalidate pinned block {bid}")
            if bid in self._frames:
                del self._frames[bid]
                self._policy.record_remove(bid)
            self._dirty.discard(bid)
            self._prefetched.discard(bid)

    def discard_all(self) -> None:
        """Drop every resident frame -- dirty, prefetched and pinned --
        without any write-back.

        The abort path of a replica-level rollback: the store beneath
        the pool has been rewound to a pre-operation state, so every
        frame (including the structure's pinned catalog frames, whose
        owning structure instance is about to be re-attached) describes
        a world that no longer exists.
        """
        with self._lock:
            for bid in list(self._frames):
                self._policy.record_remove(bid)
            self._frames.clear()
            self._dirty.clear()
            self._pinned.clear()
            self._pinned_dirty.clear()
            self._prefetched.clear()

    # ------------------------------------------------------------------
    # Readahead
    # ------------------------------------------------------------------
    def prefetch_hint(self, bids: Iterable[int]) -> None:
        """Announce a sequential run of block ids (a CONT chain).

        Called through :func:`repro.io.hooks.prefetch_hint` by the
        structures that know their layout.  The pool learns each
        consecutive pair as a successor link; a later logical miss on a
        hinted block batch-fetches down the chain.  With
        ``readahead_window=0`` this is a no-op, so hints are free on
        pools that did not opt in.
        """
        if self._window <= 0:
            return
        with self._lock:
            succ = self._succ
            prev: Optional[int] = None
            for bid in bids:
                if prev is not None and bid != prev:
                    succ[prev] = bid
                prev = bid

    def _readahead(self, bid: int) -> None:
        """Fetch up to ``readahead_window`` blocks down the learned chain.

        Every chain step consumes window budget (resident blocks are
        skipped but still counted), so a cyclic or stale successor map
        cannot loop.  A broken link (freed block) ends the chain.
        """
        succ = self._succ
        nxt = succ.get(bid)
        for _ in range(self._window):
            if nxt is None:
                break
            if nxt in self._frames or nxt in self._pinned:
                nxt = succ.get(nxt)
                continue
            try:
                block = self._store.read(nxt)
            except StorageError:
                break
            self._evict_to_fit()
            self._frames[nxt] = list(block.records)
            self._policy.record_insert(nxt)
            self._prefetched.add(nxt)
            self.prefetch_issued += 1
            if self._m_issued is not None:
                self._m_issued.inc()
            if self._observers:
                self._emit("prefetch", nxt)
            nxt = succ.get(nxt)

    # ------------------------------------------------------------------
    # Pinning (the paper's resident catalog blocks)
    # ------------------------------------------------------------------
    def pin(self, bid: int) -> None:
        """Make a block memory-resident: later reads/writes are free."""
        with self._lock:
            self._pin_locked(bid)

    def _pin_locked(self, bid: int) -> None:
        if bid in self._pinned:
            return
        if bid in self._frames:
            records = self._frames.pop(bid)
            self._policy.record_remove(bid)
            if bid in self._prefetched:
                # pinning found the block already fetched: the prefetch
                # saved the physical read the pin would have issued
                self._prefetched.discard(bid)
                self.prefetch_hits += 1
                if self._m_phits is not None:
                    self._m_phits.inc()
            if bid in self._dirty:
                self._dirty.discard(bid)
                self._pinned_dirty.add(bid)
        else:
            records = list(self._store.read(bid).records)
        self._pinned[bid] = records

    def unpin(self, bid: int) -> None:
        """Release a pinned block back to disk (writing it if dirty).

        If the write-back fails the block stays pinned and dirty.
        """
        with self._lock:
            if bid not in self._pinned:
                return
            if bid in self._pinned_dirty:
                self._store.write(bid, self._pinned[bid])
                self._pinned_dirty.discard(bid)
            self._pinned.pop(bid)

    @property
    def pinned_blocks(self) -> List[int]:
        """Ids of the memory-resident blocks."""
        return list(self._pinned)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back every dirty frame (pinned frames stay resident).

        Writes go out in block-id order.  A frame is unmarked only
        after its write succeeds, so a failed write leaves exactly the
        unflushed frames dirty for a retry.
        """
        with self._lock:
            pending = sorted(self._dirty)
            if not pending:
                return
            # under coalescing the first write of the batch is the leader
            # the pool had to issue anyway; the rest rode along
            self._write_batch(pending, leader=pending[0])

    def _write_batch(self, pending: List[int], leader: int) -> None:
        for bid in pending:
            self._store.write(bid, self._frames[bid])
            self._dirty.discard(bid)
            if self._coalesce and bid != leader:
                self.coalesced_writes += 1
                if self._m_coalesced is not None:
                    self._m_coalesced.inc()

    def drop(self) -> None:
        """Flush then empty the cache (pinned frames stay resident)."""
        with self._lock:
            self.flush()
            if self._prefetched:
                self.prefetch_waste += len(self._prefetched)
                if self._m_waste is not None:
                    self._m_waste.inc(len(self._prefetched))
                self._prefetched.clear()
            self._frames.clear()
            self._policy.clear()

    def close(self) -> None:
        """Flush everything including pinned frames."""
        with self._lock:
            self.flush()
            for bid in list(self._pinned):
                self.unpin(bid)

    def peek(self, bid: int) -> List[Any]:
        """Inspect a block without charging an I/O (dirty frames included).

        Invariant checkers peek through the pool so they see write-back
        state the physical store has not received yet.
        """
        with self._lock:
            if bid in self._pinned:
                return list(self._pinned[bid])
            if bid in self._frames:
                return list(self._frames[bid])
            return self._store.peek(bid)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served without touching the disk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Machine-readable cache state for the observability exporters."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "capacity": self._capacity,
            "policy": self._policy.name,
            "frames": len(self._frames),
            "pinned": len(self._pinned),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
        if self._window > 0:
            snap["readahead_window"] = self._window
            snap["prefetch_issued"] = self.prefetch_issued
            snap["prefetch_hits"] = self.prefetch_hits
            snap["prefetch_waste"] = self.prefetch_waste
        if self._coalesce:
            snap["coalesced_writes"] = self.coalesced_writes
        policy_snap = getattr(self._policy, "snapshot", None)
        if policy_snap is not None:
            snap["policy_queues"] = policy_snap()
        return snap

    # ------------------------------------------------------------------
    def _evict_to_fit(self) -> None:
        while len(self._frames) >= self._capacity:
            victim = self._policy.peek_victim()
            if victim is None:
                # nothing evictable (policy exhausted / all frames held):
                # fail loudly instead of spinning forever
                raise BlockCapacityError(
                    f"buffer pool exhausted: {len(self._frames)} frames "
                    f"resident, none evictable (capacity {self._capacity})"
                )
            self._evict(victim)

    def _evict(self, victim: int) -> None:
        if victim in self._dirty:
            # flush BEFORE dropping: if the write fails the frame must
            # stay resident and dirty, not silently vanish
            if self._coalesce:
                self._write_batch(sorted(self._dirty), leader=victim)
            else:
                self._store.write(victim, self._frames[victim])
                self._dirty.discard(victim)
        del self._frames[victim]
        self._policy.evicted(victim)
        if victim in self._prefetched:
            self._prefetched.discard(victim)
            self.prefetch_waste += 1
            if self._m_waste is not None:
                self._m_waste.inc()
        self.evictions += 1
        if self._observers:
            self._emit("evict", victim)

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self._capacity}, "
            f"policy={self._policy.name!r}, frames={len(self._frames)}, "
            f"pinned={len(self._pinned)}, hit_rate={self.hit_rate:.2f})"
        )
