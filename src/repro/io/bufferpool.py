"""LRU buffer pool with pinning, layered over a :class:`BlockStore`.

The paper's Section 3.1 keeps ``O(1)`` "catalog" blocks resident in main
memory; :meth:`BufferPool.pin` models exactly that.  Reads served from the
pool cost no disk I/O; evictions of dirty frames cost a write.  The pool
presents the same storage protocol as :class:`BlockStore`, so any structure
can run with or without caching -- ablation A2 quantifies the difference.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, List

from repro.io.blockstore import Block, BlockStore, StorageError, StoreObserver
from repro.io.stats import IOStats


class BufferPool:
    """Write-back LRU cache over a block store.

    Parameters
    ----------
    store:
        The underlying simulated disk.
    capacity:
        Number of unpinned frames the pool may hold.  Pinned frames are
        accounted separately (the paper's resident catalog blocks).
    """

    def __init__(self, store: BlockStore, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._store = store
        self._capacity = capacity
        # bid -> records; insertion order == LRU order (oldest first)
        self._frames: "OrderedDict[int, List[Any]]" = OrderedDict()
        self._dirty: set[int] = set()
        self._pinned: dict[int, List[Any]] = {}
        self._pinned_dirty: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._observers: List[StoreObserver] = []

    # ------------------------------------------------------------------
    # Storage protocol
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the underlying store's ``B``)."""
        return self._store.block_size

    @property
    def stats(self) -> IOStats:
        """Physical I/O counters of the underlying disk."""
        return self._store.stats

    @property
    def physical_store(self) -> BlockStore:
        """The underlying store whose counters are the physical truth."""
        return getattr(self._store, "physical_store", self._store)

    def add_observer(self, callback: StoreObserver) -> None:
        """Subscribe ``callback(op, bid)`` to *pool-level* events.

        Hook point for the observability layer: ``op`` is ``"hit"``,
        ``"miss"`` or ``"evict"`` -- the cache behaviour the physical
        counters cannot see.  Physical reads/writes are observed on
        :attr:`physical_store` instead.
        """
        self._observers.append(callback)

    def remove_observer(self, callback: StoreObserver) -> None:
        """Unsubscribe a previously added pool observer."""
        try:
            self._observers.remove(callback)
        except ValueError:
            pass

    def _emit(self, op: str, bid: int) -> None:
        for cb in self._observers:
            cb(op, bid)

    def alloc(self) -> int:
        """Allocate a block on the underlying store (no I/O)."""
        return self._store.alloc()

    def read(self, bid: int) -> Block:
        """Read through the cache; hits cost no physical I/O."""
        if bid in self._pinned:
            self.hits += 1
            if self._observers:
                self._emit("hit", bid)
            return Block(bid, list(self._pinned[bid]))
        if bid in self._frames:
            self.hits += 1
            self._frames.move_to_end(bid)
            if self._observers:
                self._emit("hit", bid)
            return Block(bid, list(self._frames[bid]))
        self.misses += 1
        if self._observers:
            self._emit("miss", bid)
        block = self._store.read(bid)
        if self._capacity > 0:
            self._evict_to_fit()
            self._frames[bid] = list(block.records)
        return block

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Write into the cache (write-back; flushed on eviction)."""
        data = list(records)
        if len(data) > self.block_size:
            # surface the capacity error immediately, like the raw store
            self._store.write(bid, data)  # raises BlockCapacityError
            return
        if bid in self._pinned:
            self._pinned[bid] = data
            self._pinned_dirty.add(bid)
            return
        if self._capacity == 0:
            # degenerate pool: pure write-through
            self._store.write(bid, data)
            return
        if bid in self._frames:
            self._frames.move_to_end(bid)
        else:
            self._evict_to_fit()
        self._frames[bid] = data
        self._dirty.add(bid)

    def free(self, bid: int) -> None:
        """Drop any cached frame and free the block on the store.

        The store free runs first: if it fails, the cached frame (and
        its dirty mark) survive untouched.
        """
        if bid in self._pinned:
            raise StorageError(f"cannot free pinned block {bid}")
        self._store.free(bid)
        self._frames.pop(bid, None)
        self._dirty.discard(bid)

    # ------------------------------------------------------------------
    # Pinning (the paper's resident catalog blocks)
    # ------------------------------------------------------------------
    def pin(self, bid: int) -> None:
        """Make a block memory-resident: later reads/writes are free."""
        if bid in self._pinned:
            return
        if bid in self._frames:
            records = self._frames.pop(bid)
            if bid in self._dirty:
                self._dirty.discard(bid)
                self._pinned_dirty.add(bid)
        else:
            records = list(self._store.read(bid).records)
        self._pinned[bid] = records

    def unpin(self, bid: int) -> None:
        """Release a pinned block back to disk (writing it if dirty).

        If the write-back fails the block stays pinned and dirty.
        """
        if bid not in self._pinned:
            return
        if bid in self._pinned_dirty:
            self._store.write(bid, self._pinned[bid])
            self._pinned_dirty.discard(bid)
        self._pinned.pop(bid)

    @property
    def pinned_blocks(self) -> List[int]:
        """Ids of the memory-resident blocks."""
        return list(self._pinned)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back every dirty frame (pinned frames stay resident).

        A frame is unmarked only after its write succeeds, so a failed
        write leaves exactly the unflushed frames dirty for a retry.
        """
        for bid in sorted(self._dirty):
            self._store.write(bid, self._frames[bid])
            self._dirty.discard(bid)

    def drop(self) -> None:
        """Flush then empty the cache (pinned frames stay resident)."""
        self.flush()
        self._frames.clear()

    def close(self) -> None:
        """Flush everything including pinned frames."""
        self.flush()
        for bid in list(self._pinned):
            self.unpin(bid)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served without touching the disk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Machine-readable cache state for the observability exporters."""
        return {
            "capacity": self._capacity,
            "frames": len(self._frames),
            "pinned": len(self._pinned),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    # ------------------------------------------------------------------
    def _evict_to_fit(self) -> None:
        while len(self._frames) >= self._capacity:
            old_bid = next(iter(self._frames))  # LRU head
            if old_bid in self._dirty:
                # flush BEFORE dropping: if the write fails the frame
                # must stay resident and dirty, not silently vanish
                self._store.write(old_bid, self._frames[old_bid])
                self._dirty.discard(old_bid)
            del self._frames[old_bid]
            self.evictions += 1
            if self._observers:
                self._emit("evict", old_bid)

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self._capacity}, frames={len(self._frames)}, "
            f"pinned={len(self._pinned)}, hit_rate={self.hit_rate:.2f})"
        )
