"""Block checksumming: detect silent corruption before it is served.

The fault model so far made the disk *loud*: every injected failure
raised.  Real media also rot silently -- a block reads back fine at the
bus level but its payload is garbage.  :class:`ChecksummedStore` frames
every block with a CRC32 computed over a canonical serialization of its
records at write time and verifies it on every read; a mismatch raises
the typed :class:`CorruptBlockError` instead of handing rotten data to
a structure.

The CRC side table is in-memory (one int per allocated block, the same
O(n/B) words a real system keeps in its block headers or a checksum
file).  The wrapper adds **zero physical I/O**: counters live in the
wrapped store and move only on operations that reach it, so composing
it into a chain leaves every gated I/O count unchanged.

Semantics worth knowing:

- **trust-on-first-read**: a block whose CRC is unknown (the wrapper
  was created over an already-populated disk, e.g. after a crash
  re-attachment) is adopted as-is on its first read.  Detection starts
  from the first write/read the wrapper itself witnesses.
- :meth:`ChecksummedStore.verify` checks a block *without charging
  I/O or raising* -- the background scrubber's primitive.
- :meth:`ChecksummedStore.place` is the replica-rebuild channel: it
  installs a block at a chosen id (see :meth:`repro.io.blockstore.
  BlockStore.place`) and records its CRC, so a rebuilt mirror starts
  life fully checksummed.

Mismatches are counted under ``crc_mismatches{layer=io}`` in the
metrics registry.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, Dict, Iterable, List, Optional

from repro.io.blockstore import Block, StorageError


class CorruptBlockError(StorageError):
    """A block's payload no longer matches its recorded checksum.

    Deliberately *not* a :class:`~repro.resilience.errors.
    TransientIOError`: re-reading rotten data yields the same rot, so
    retry layers must not spin on it.  Callers with redundancy (a
    replica set, the scrubber) catch it and serve or repair from a
    healthy copy.
    """

    def __init__(self, bid: int, expected: int, actual: int):
        super().__init__(
            f"block {bid}: checksum mismatch "
            f"(expected {expected:#010x}, got {actual:#010x})"
        )
        self.bid = bid
        self.expected = expected
        self.actual = actual


def record_crc(records: Iterable[Any]) -> int:
    """CRC32 over a canonical serialization of a record list.

    Pickle of the tuples/floats/strings the structures store is
    deterministic within a process, which is all the simulated disk
    needs; a real implementation would hash the block's bytes.
    """
    return zlib.crc32(pickle.dumps(list(records), protocol=4))


class ChecksummedStore:
    """Storage wrapper that CRC-frames every block (standard protocol)."""

    def __init__(self, store):
        self._store = store
        self._crcs: Dict[int, int] = {}
        self.verified = 0     # reads that passed the checksum
        self.mismatches = 0   # reads that raised CorruptBlockError

    # ------------------------------------------------------------------
    # protocol delegation
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the wrapped store's ``B``)."""
        return self._store.block_size

    @property
    def stats(self):
        """Physical I/O counters of the wrapped store."""
        return self._store.stats

    @property
    def physical_store(self):
        """The wrapped store whose counters are the physical truth."""
        return getattr(self._store, "physical_store", self._store)

    @property
    def crash_hook(self):
        """Forward named crash points to the wrapped store (or None)."""
        return getattr(self._store, "crash_hook", None)

    def add_observer(self, callback) -> None:
        """Delegate observer registration to the wrapped store."""
        self._store.add_observer(callback)

    def remove_observer(self, callback) -> None:
        """Delegate observer removal to the wrapped store."""
        self._store.remove_observer(callback)

    @property
    def blocks_in_use(self) -> int:
        """Blocks allocated on the wrapped store."""
        return self._store.blocks_in_use

    def block_ids(self) -> List[int]:
        """Ids of all allocated blocks (introspection passthrough)."""
        return self._store.block_ids()

    def peek(self, bid: int):
        """Pass-through inspection (no I/O, no verification)."""
        return self._store.peek(bid)

    def flush(self) -> None:
        """Pass-through flush."""
        self._store.flush()

    # ------------------------------------------------------------------
    # checksummed operations
    # ------------------------------------------------------------------
    def alloc(self) -> int:
        """Allocate; a fresh block is checksummed as empty."""
        bid = self._store.alloc()
        self._crcs[bid] = record_crc([])
        return bid

    def read(self, bid: int) -> Block:
        """Read and verify; raises :class:`CorruptBlockError` on rot."""
        block = self._store.read(bid)
        actual = record_crc(block.records)
        expected = self._crcs.get(bid)
        if expected is None:
            # trust-on-first-read: adopt pre-existing content
            self._crcs[bid] = actual
        elif actual != expected:
            self.mismatches += 1
            from repro.obs.metrics import counter

            counter("crc_mismatches", layer="io").inc()
            raise CorruptBlockError(bid, expected, actual)
        self.verified += 1
        return block

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Write through, recording the new payload's CRC.

        The CRC updates only after the inner write succeeded, so a
        failed or torn write (which the fault layer routes through here
        with whatever prefix actually landed) never leaves the table
        describing data that is not on the disk.
        """
        data = list(records)
        self._store.write(bid, data)
        self._crcs[bid] = record_crc(data)

    def free(self, bid: int) -> None:
        """Free through and forget the block's CRC."""
        self._store.free(bid)
        self._crcs.pop(bid, None)

    def place(self, bid: int, records: Iterable[Any], *, crc: Optional[int] = None) -> None:
        """Install a block at a chosen id (replica rebuild channel).

        ``crc`` overrides the recorded checksum: a rebuild cloning a
        donor's *rotten* block copies the payload verbatim but records
        the donor's original CRC, so the rot stays detectable on the
        new replica instead of being laundered into "clean" data.
        """
        data = list(records)
        self._store.place(bid, data)
        self._crcs[bid] = record_crc(data) if crc is None else crc

    # ------------------------------------------------------------------
    # scrub support
    # ------------------------------------------------------------------
    def verify(self, bid: int) -> bool:
        """Check a block against its recorded CRC without charging I/O.

        Returns True for blocks with no recorded CRC (nothing to
        compare) and for missing blocks (the allocator, not the
        scrubber, owns those).  Never raises.
        """
        expected = self._crcs.get(bid)
        if expected is None:
            return True
        try:
            actual = record_crc(self._store.peek(bid))
        except StorageError:
            return True
        return actual == expected

    def crc_of(self, bid: int) -> Optional[int]:
        """The recorded CRC for ``bid`` (None if never written here)."""
        return self._crcs.get(bid)

    def __repr__(self) -> str:
        return (
            f"ChecksummedStore(tracked={len(self._crcs)}, "
            f"verified={self.verified}, mismatches={self.mismatches})"
        )
