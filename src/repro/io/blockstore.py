"""The simulated disk: a store of fixed-capacity blocks.

A block holds at most ``block_size`` records.  A record is any Python
object; the structures in this repository store tuples (points, catalog
entries, child pointers).  Every :meth:`BlockStore.read` and
:meth:`BlockStore.write` increments exact counters, which is how all
experiments measure I/O cost.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Iterable, Iterator, List

from repro.io.stats import IOStats

#: Signature of a store observer: ``callback(op, bid)`` with ``op`` one of
#: ``"read" | "write" | "alloc" | "free"``.  Observers fire synchronously
#: after the counters have been updated, so they may read ``store.stats``.
StoreObserver = Callable[[str, int], None]


class StorageError(Exception):
    """Raised on invalid block access (bad id, double free, ...)."""


class BlockCapacityError(StorageError):
    """Raised when writing more than ``block_size`` records to a block."""


class Block:
    """A snapshot of one disk block: its id and its records.

    Blocks returned by :meth:`BlockStore.read` are copies; mutating the
    returned list does not change the disk until written back.  This keeps
    the I/O accounting honest: a structure cannot smuggle updates past the
    counter by aliasing.
    """

    __slots__ = ("bid", "records")

    def __init__(self, bid: int, records: List[Any]):
        self.bid = bid
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"Block(bid={self.bid}, n={len(self.records)})"


class BlockStore:
    """A simulated disk of blocks, each holding at most ``block_size`` records.

    Parameters
    ----------
    block_size:
        The paper's ``B``: the number of records a block holds.
    copy_on_io:
        When True (default), reads and writes copy the record list so the
        disk contents cannot be mutated through aliases.  Benchmarks may
        disable it to reduce interpreter overhead; the I/O *counts* are
        identical either way.
    """

    def __init__(self, block_size: int, *, copy_on_io: bool = True):
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        self._block_size = int(block_size)
        self._blocks: dict[int, List[Any]] = {}
        self._next_bid = 0
        self._copy = copy_on_io
        self.stats = IOStats()
        self._observers: List[StoreObserver] = []

    # ------------------------------------------------------------------
    # Storage protocol
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """The paper's ``B``: records per block."""
        return self._block_size

    @property
    def copy_on_io(self) -> bool:
        """Whether reads/writes defensively copy the record list."""
        return self._copy

    @property
    def physical_store(self) -> "BlockStore":
        """The store whose counters are the physical I/O ground truth."""
        return self

    def add_observer(self, callback: StoreObserver) -> None:
        """Subscribe ``callback(op, bid)`` to every physical operation.

        Hook point for the observability layer (:mod:`repro.obs.spans`):
        ``op`` is ``"read"``, ``"write"``, ``"alloc"`` or ``"free"`` and
        fires after the matching :class:`IOStats` counter moved.  With no
        observers registered the hot paths pay a single truthiness check.
        """
        self._observers.append(callback)

    def remove_observer(self, callback: StoreObserver) -> None:
        """Unsubscribe a previously added observer (no error if absent)."""
        try:
            self._observers.remove(callback)
        except ValueError:
            pass

    def alloc(self) -> int:
        """Allocate an empty block and return its id (no I/O charged)."""
        bid = self._next_bid
        self._next_bid += 1
        self._blocks[bid] = []
        self.stats.allocs += 1
        if self._observers:
            for cb in self._observers:
                cb("alloc", bid)
        return bid

    def read(self, bid: int) -> Block:
        """Fetch one block from disk.  Costs one read I/O."""
        try:
            records = self._blocks[bid]
        except KeyError:
            raise StorageError(f"read of unallocated block {bid}") from None
        self.stats.reads += 1
        if self._observers:
            for cb in self._observers:
                cb("read", bid)
        return Block(bid, list(records) if self._copy else records)

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Write one block to disk.  Costs one write I/O."""
        if bid not in self._blocks:
            raise StorageError(f"write to unallocated block {bid}")
        data = list(records)
        if len(data) > self._block_size:
            raise BlockCapacityError(
                f"block {bid}: {len(data)} records > block size {self._block_size}"
            )
        self.stats.writes += 1
        self._blocks[bid] = data if not self._copy else list(data)
        if self._observers:
            for cb in self._observers:
                cb("write", bid)

    def free(self, bid: int) -> None:
        """Release a block.  No I/O charged; space accounting only."""
        if bid not in self._blocks:
            raise StorageError(f"free of unallocated block {bid}")
        del self._blocks[bid]
        self.stats.frees += 1
        if self._observers:
            for cb in self._observers:
                cb("free", bid)

    def flush(self) -> None:
        """No-op on the raw store (exists for protocol parity with pools)."""

    # ------------------------------------------------------------------
    # Space accounting / introspection (not I/Os)
    # ------------------------------------------------------------------
    @property
    def blocks_in_use(self) -> int:
        """Number of currently allocated blocks -- the paper's space measure."""
        return len(self._blocks)

    def block_ids(self) -> List[int]:
        """Ids of all allocated blocks (introspection; no I/O charged)."""
        return list(self._blocks)

    def peek(self, bid: int) -> List[Any]:
        """Inspect a block without charging an I/O.

        For tests and invariant checkers only; library code must use
        :meth:`read`.
        """
        try:
            return list(self._blocks[bid])
        except KeyError:
            raise StorageError(f"peek of unallocated block {bid}") from None

    def scribble(self, bid: int, records: Iterable[Any]) -> None:
        """Silently replace a block's payload: simulated media rot.

        Fault-injection entry point only (:class:`~repro.resilience.
        faulty_store.FaultyStore` corruption faults).  No I/O is
        charged and no observers fire -- the point of bit rot is that
        nothing notices until a checksum does.
        """
        if bid not in self._blocks:
            raise StorageError(f"scribble on unallocated block {bid}")
        self._blocks[bid] = list(records)

    def place(self, bid: int, records: Iterable[Any]) -> None:
        """Install a block at a chosen id (charges one write I/O).

        The replica-rebuild channel: cloning a healthy peer block-by
        -block must preserve block ids so rebuilt mirrors stay
        addressable by the same structure meta.  Raises if the id is
        already allocated; advances the allocator past ``bid`` so later
        :meth:`alloc` calls never collide.
        """
        if bid in self._blocks:
            raise StorageError(f"place over allocated block {bid}")
        data = list(records)
        if len(data) > self._block_size:
            raise BlockCapacityError(
                f"block {bid}: {len(data)} records > block size {self._block_size}"
            )
        self._blocks[bid] = data if not self._copy else list(data)
        self._next_bid = max(self._next_bid, bid + 1)
        self.stats.writes += 1
        if self._observers:
            for cb in self._observers:
                cb("write", bid)

    def reserve_ids(self, next_bid: int) -> None:
        """Advance the allocator to ``next_bid`` (never backwards).

        Used after a block-level clone so the rebuilt store's future
        allocations mirror its source's, even when the source had freed
        its highest blocks.
        """
        self._next_bid = max(self._next_bid, int(next_bid))

    @property
    def next_bid(self) -> int:
        """The id the next :meth:`alloc` would hand out."""
        return self._next_bid

    def rewind_ids(self, next_bid: int) -> None:
        """Roll the allocator back to ``next_bid`` (rollback support).

        Only legal when no block at or above the watermark is still
        allocated -- the caller (an epoch rollback) frees the blocks
        born after the watermark first.  Rewinding means a rolled-back
        -and-retried operation re-allocates the same ids, which keeps
        replicated stores block-for-block mirrors.
        """
        nb = int(next_bid)
        alive = [b for b in self._blocks if b >= nb]
        if alive:
            raise StorageError(
                f"cannot rewind allocator to {nb}: blocks {sorted(alive)} "
                f"still allocated"
            )
        self._next_bid = nb

    def occupancy(self) -> float:
        """Mean fill fraction over allocated blocks (0.0 if none)."""
        if not self._blocks:
            return 0.0
        used = sum(len(r) for r in self._blocks.values())
        return used / (len(self._blocks) * self._block_size)

    # ------------------------------------------------------------------
    # persistence (snapshot the simulated disk to a real file)
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Snapshot the disk image to ``path`` (pickle).

        The I/O counters are part of the image so a reloaded experiment
        continues its accounting.  Structures that keep in-memory
        handles (block-id registries) must be re-created against the
        reloaded store by their owners.
        """
        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "block_size": self._block_size,
                    "blocks": self._blocks,
                    "next_bid": self._next_bid,
                    "stats": (
                        self.stats.reads, self.stats.writes,
                        self.stats.allocs, self.stats.frees,
                    ),
                },
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )

    @classmethod
    def load(cls, path: str, *, copy_on_io: bool = True) -> "BlockStore":
        """Reload a disk image written by :meth:`save`."""
        with open(path, "rb") as fh:
            image = pickle.load(fh)
        store = cls(image["block_size"], copy_on_io=copy_on_io)
        store._blocks = image["blocks"]
        store._next_bid = image["next_bid"]
        store.stats = IOStats(*image["stats"])
        return store

    def __repr__(self) -> str:
        return (
            f"BlockStore(B={self._block_size}, blocks={self.blocks_in_use}, "
            f"{self.stats})"
        )


def blocks_needed(n_records: int, block_size: int) -> int:
    """Number of blocks needed to hold ``n_records`` records: ``ceil(n/B)``."""
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    return -(-n_records // block_size)
