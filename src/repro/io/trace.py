"""Block-access tracing: what the I/O counters cannot see.

The paper's model charges every transfer equally, but practitioners also
care about *locality*: sequential block runs are far cheaper on spinning
disks and still matter for SSD prefetching.  :class:`TraceRecorder`
wraps any storage object, records the exact access sequence, and
summarizes it (sequential fraction, distinct blocks, re-reads), enabling
the locality ablation A6 without touching any structure code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple


@dataclass
class TraceSummary:
    """Aggregate view of an access trace."""

    reads: int
    writes: int
    distinct_blocks: int
    sequential_reads: int      # reads whose bid == previous read bid + 1
    repeat_reads: int          # reads of a block already read before

    @property
    def sequential_fraction(self) -> float:
        """Share of reads that continued a consecutive-bid run."""
        return self.sequential_reads / self.reads if self.reads else 0.0

    @property
    def reread_fraction(self) -> float:
        """Share of reads that revisited an already-read block."""
        return self.repeat_reads / self.reads if self.reads else 0.0


class TraceRecorder:
    """Storage wrapper that logs every (op, block id) pair.

    Presents the same protocol as :class:`~repro.io.BlockStore`, so any
    structure runs over it unchanged.  The trace lists tuples
    ``("r"|"w"|"a"|"f", bid)`` in order.
    """

    def __init__(self, store):
        self._store = store
        self.trace: List[Tuple[str, int]] = []

    # -- protocol ---------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the wrapped store's ``B``)."""
        return self._store.block_size

    @property
    def stats(self):
        """Physical I/O counters of the wrapped store."""
        return self._store.stats

    @property
    def physical_store(self):
        """The wrapped store whose counters are the physical truth."""
        return getattr(self._store, "physical_store", self._store)

    def add_observer(self, callback) -> None:
        """Delegate observer registration to the wrapped store."""
        self._store.add_observer(callback)

    def remove_observer(self, callback) -> None:
        """Delegate observer removal to the wrapped store."""
        self._store.remove_observer(callback)

    def alloc(self) -> int:
        """Allocate on the wrapped store, logging the event."""
        bid = self._store.alloc()
        self.trace.append(("a", bid))
        return bid

    def read(self, bid: int):
        """Read through, logging the access."""
        self.trace.append(("r", bid))
        return self._store.read(bid)

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Write through, logging the access."""
        self.trace.append(("w", bid))
        self._store.write(bid, records)

    def free(self, bid: int) -> None:
        """Free on the wrapped store, logging the event."""
        self.trace.append(("f", bid))
        self._store.free(bid)

    def peek(self, bid: int):
        """Pass-through inspection (not logged; costs no I/O)."""
        return self._store.peek(bid)

    def flush(self) -> None:
        """Pass-through flush."""
        self._store.flush()

    @property
    def blocks_in_use(self) -> int:
        """Blocks allocated on the wrapped store."""
        return self._store.blocks_in_use

    # -- analysis ----------------------------------------------------------
    def clear(self) -> None:
        """Forget the trace so far (e.g. after a build phase)."""
        self.trace = []

    def summary(self) -> TraceSummary:
        """Aggregate the trace into a :class:`TraceSummary`."""
        reads = writes = seq = repeats = 0
        seen: set = set()
        prev_read: Optional[int] = None
        for op, bid in self.trace:
            if op == "r":
                reads += 1
                if prev_read is not None and bid == prev_read + 1:
                    seq += 1
                if bid in seen:
                    repeats += 1
                seen.add(bid)
                prev_read = bid
            elif op == "w":
                writes += 1
        return TraceSummary(
            reads=reads,
            writes=writes,
            distinct_blocks=len(seen),
            sequential_reads=seq,
            repeat_reads=repeats,
        )

    def read_run_lengths(self) -> List[int]:
        """Lengths of maximal consecutive-bid read runs (locality view)."""
        runs: List[int] = []
        prev: Optional[int] = None
        cur = 0
        for op, bid in self.trace:
            if op != "r":
                continue
            if prev is not None and bid == prev + 1:
                cur += 1
            else:
                if cur:
                    runs.append(cur)
                cur = 1
            prev = bid
        if cur:
            runs.append(cur)
        return runs
