"""One-command differential self-check of every structure.

``python -m repro.selftest`` builds each index over the same random point
set, runs a batch of queries and updates, and compares every answer
against the brute-force oracle.  Intended as a downstream smoke test
(after install, after porting to a new Python) and used by the test
suite itself.
"""

from __future__ import annotations

import random
import sys
from typing import Callable, List

from repro.io import BlockStore
from repro.baselines import (
    BTreeXFilter,
    ExternalKDTree,
    GridFile,
    LinearScan,
    RTree,
    ZOrderIndex,
)
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.range_tree import ExternalRangeTree
from repro.core.static_index import StaticFourSidedIndex, StaticThreeSidedIndex
from repro.substrates.av_interval_tree import SlabIntervalTree
from repro.substrates.interval_tree import ExternalIntervalTree


def run_selftest(n: int = 800, seed: int = 20260707, verbose: bool = False) -> List[str]:
    """Run every check; returns a list of failure descriptions (empty =
    all good)."""
    rng = random.Random(seed)
    failures: List[str] = []

    def check(name: str, fn: Callable[[], None]) -> None:
        try:
            fn()
            if verbose:
                print(f"  ok    {name}")
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"{name}: {exc!r}")
            if verbose:
                print(f"  FAIL  {name}: {exc!r}")

    pts = set()
    while len(pts) < n:
        pts.add((rng.uniform(0, 1000), rng.uniform(0, 1000)))
    pts = sorted(pts)
    queries3 = []
    queries4 = []
    for _ in range(20):
        a = rng.uniform(0, 1000)
        b = a + rng.uniform(0, 400)
        c = rng.uniform(0, 1000)
        d = c + rng.uniform(0, 400)
        queries3.append((a, b, c))
        queries4.append((a, b, c, d))

    def brute3(live, a, b, c):
        return sorted(p for p in live if a <= p[0] <= b and p[1] >= c)

    def brute4(live, a, b, c, d):
        return sorted(p for p in live if a <= p[0] <= b and c <= p[1] <= d)

    # --- 3-sided ---------------------------------------------------------
    def pst_case():
        pst = ExternalPrioritySearchTree(BlockStore(32), pts)
        for a, b, c in queries3:
            assert sorted(pst.query(a, b, c)) == brute3(pts, a, b, c)
        victims = rng.sample(pts, n // 4)
        live = set(pts)
        for p in victims:
            assert pst.delete(*p)
            live.discard(p)
        for a, b, c in queries3[:5]:
            assert sorted(pst.query(a, b, c)) == brute3(live, a, b, c)
        pst.check_invariants()

    check("ExternalPrioritySearchTree", pst_case)

    def static3_case():
        idx = StaticThreeSidedIndex(BlockStore(32), pts)
        for a, b, c in queries3:
            assert sorted(idx.query(x_lo=a, x_hi=b, y_lo=c)) == brute3(pts, a, b, c)

    check("StaticThreeSidedIndex", static3_case)

    # --- 4-sided ---------------------------------------------------------
    def rt_case():
        rt = ExternalRangeTree(BlockStore(32), pts)
        for a, b, c, d in queries4:
            assert sorted(rt.query(a, b, c, d)) == brute4(pts, a, b, c, d)
        rt.check_invariants()

    check("ExternalRangeTree", rt_case)

    def static4_case():
        idx = StaticFourSidedIndex(BlockStore(32), pts)
        for a, b, c, d in queries4:
            assert sorted(idx.query(a, b, c, d)) == brute4(pts, a, b, c, d)

    check("StaticFourSidedIndex", static4_case)

    for cls in (LinearScan, BTreeXFilter, ExternalKDTree, RTree, GridFile,
                ZOrderIndex):
        def baseline_case(cls=cls):
            idx = cls(BlockStore(32), pts)
            for a, b, c, d in queries4[:10]:
                got = sorted(set(idx.query_4sided(a, b, c, d)))
                assert got == brute4(pts, a, b, c, d)

        check(cls.__name__, baseline_case)

    # --- intervals ---------------------------------------------------------
    ivs = set()
    while len(ivs) < n // 2:
        l = rng.uniform(0, 1000)
        ivs.add((round(l, 4), round(l + rng.expovariate(1 / 60.0), 4)))
    ivs = sorted(ivs)
    stabs = [rng.uniform(0, 1100) for _ in range(15)]

    def interval_case(cls):
        tree = cls(BlockStore(32), ivs)
        for q in stabs:
            got = sorted(tree.stab(q))
            assert got == sorted((l, r) for l, r in ivs if l <= q <= r)

    check("ExternalIntervalTree", lambda: interval_case(ExternalIntervalTree))
    check("SlabIntervalTree", lambda: interval_case(SlabIntervalTree))

    return failures


def main() -> int:
    """CLI entry point: run the self-test, exit 1 on any failure."""
    print("repro self-test: differential validation of every structure")
    failures = run_selftest(verbose=True)
    if failures:
        print(f"\n{len(failures)} FAILURE(S):")
        for f in failures:
            print(" -", f)
        return 1
    print("\nall structures agree with the brute-force oracle")
    return 0


if __name__ == "__main__":
    sys.exit(main())
