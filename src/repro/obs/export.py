"""Versioned machine-readable export of benchmark results.

The bench harness (``benchmarks/conftest.py``) accumulates one entry
per experiment -- the table a bench prints, plus a ``gate`` dict of
scalar counters (exact I/O counts, block counts, bound ratios) that the
CI regression gate tracks.  This module turns those entries into:

- a schema-versioned JSON file (``BENCH_<tag>.json`` at the repo root,
  the bench trajectory the ROADMAP calls for),
- a markdown report (for humans and PR comments),
- a :func:`compare` verdict between two JSON files, the core of
  ``tools/bench_report.py --compare`` and the CI gate.

Schema (``repro-bench`` version 1)::

    {
      "schema": "repro-bench",
      "schema_version": 1,
      "tag": "baseline",
      "python": "3.11.7",
      "experiments": {
        "E6a": {
          "title": "...",
          "headers": ["N", "blocks", ...],
          "rows": [[1024, 139, ...], ...],
          "gate": {"insert_io": 34.2, "delete_io": 23.1}
        }
      }
    }

Gate counters are *lower-is-better* by convention (I/O counts, blocks,
overheads, violations).  ``compare`` flags any counter that grew past
the tolerance as a regression; shrinkage is reported as an improvement
(a failure only under ``strict``, where any drift means the committed
baseline is stale).  Experiments or gate keys missing from the new run
are coverage regressions and always fail.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

SCHEMA_NAME = "repro-bench"
SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """Raised when a bench JSON file does not match the schema."""


def make_result(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    gate: "Optional[Dict[str, float]]" = None,
    notes: "Optional[str]" = None,
    perf: "Optional[Dict[str, float]]" = None,
    cache: "Optional[Dict[str, Dict[str, Any]]]" = None,
) -> Dict[str, Any]:
    """Normalize one experiment's result entry (validating the gate).

    ``perf`` carries wall-clock quantities (throughput, latency
    percentiles).  They are exported and rendered but **never gated**:
    the regression gate compares exact deterministic counters only,
    and timing is machine-dependent.

    ``cache`` carries per-configuration buffer-pool behaviour (one
    inner dict per pool/policy label: hit rates, prefetch and
    coalescing counters, plus the policy name).  Like ``perf`` it is
    exported and rendered but never gated -- cache behaviour under
    non-default policies is informational; the gated I/O counts are
    what the paper's theorems bound.
    """
    gate = dict(gate or {})
    for key, value in gate.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError(
                f"gate counter {key!r} must be a number, got {value!r}"
            )
    entry: Dict[str, Any] = {
        "title": str(title),
        "headers": [str(h) for h in headers],
        "rows": [list(r) for r in rows],
        "gate": gate,
    }
    if notes:
        entry["notes"] = str(notes)
    if perf:
        for key, value in perf.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TypeError(
                    f"perf value {key!r} must be a number, got {value!r}"
                )
        entry["perf"] = dict(perf)
    if cache:
        for label, fields in cache.items():
            if not isinstance(fields, dict):
                raise TypeError(
                    f"cache entry {label!r} must be a dict, got {fields!r}"
                )
            for key, value in fields.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float, str)
                ):
                    raise TypeError(
                        f"cache value {label}.{key} must be a number or "
                        f"string, got {value!r}"
                    )
        entry["cache"] = {k: dict(v) for k, v in cache.items()}
    return entry


def bench_payload(
    experiments: Dict[str, Dict[str, Any]],
    *,
    tag: str,
    meta: "Optional[Dict[str, Any]]" = None,
) -> Dict[str, Any]:
    """Assemble the full schema-versioned payload.

    Deliberately timestamp-free: tables and gate counters are
    byte-identical across runs, so the committed baseline only churns
    in the (clearly marked, never gated) wall-clock ``perf`` sections
    of experiments that export them.
    """
    payload: Dict[str, Any] = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "tag": str(tag),
        "python": platform.python_version(),
        "experiments": {k: experiments[k] for k in sorted(experiments)},
    }
    if meta:
        payload["meta"] = dict(meta)
    return payload


def write_bench_json(
    experiments: Dict[str, Dict[str, Any]],
    path: str,
    *,
    tag: str,
    meta: "Optional[Dict[str, Any]]" = None,
) -> Dict[str, Any]:
    """Write ``BENCH_<tag>.json``; returns the payload written."""
    payload = bench_payload(experiments, tag=tag, meta=meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload


def load_bench_json(path: str) -> Dict[str, Any]:
    """Load and schema-check a bench JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    validate_payload(payload, source=path)
    return payload


def validate_payload(payload: Any, source: str = "<payload>") -> None:
    """Raise :class:`SchemaError` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict):
        raise SchemaError(f"{source}: not a JSON object")
    if payload.get("schema") != SCHEMA_NAME:
        raise SchemaError(
            f"{source}: schema is {payload.get('schema')!r}, "
            f"expected {SCHEMA_NAME!r}"
        )
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise SchemaError(
            f"{source}: schema_version {payload.get('schema_version')!r} "
            f"unsupported (this tool speaks {SCHEMA_VERSION})"
        )
    experiments = payload.get("experiments")
    if not isinstance(experiments, dict):
        raise SchemaError(f"{source}: missing 'experiments' object")
    for name, entry in experiments.items():
        for required in ("title", "headers", "rows", "gate"):
            if required not in entry:
                raise SchemaError(
                    f"{source}: experiment {name!r} lacks {required!r}"
                )
        for key, value in entry["gate"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError(
                    f"{source}: gate {name}.{key} is not numeric: {value!r}"
                )
        for key, value in entry.get("perf", {}).items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError(
                    f"{source}: perf {name}.{key} is not numeric: {value!r}"
                )
        cache = entry.get("cache", {})
        if not isinstance(cache, dict):
            raise SchemaError(f"{source}: cache of {name!r} is not an object")
        for label, fields in cache.items():
            if not isinstance(fields, dict):
                raise SchemaError(
                    f"{source}: cache {name}.{label} is not an object"
                )
            for key, value in fields.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float, str)
                ):
                    raise SchemaError(
                        f"{source}: cache {name}.{label}.{key} is not a "
                        f"number or string: {value!r}"
                    )


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------
def to_markdown(payload: Dict[str, Any]) -> str:
    """Render a bench payload as a markdown report."""
    lines: List[str] = [
        f"# Bench report `{payload.get('tag', '?')}`",
        "",
        f"Schema `{payload['schema']}/{payload['schema_version']}`, "
        f"Python {payload.get('python', '?')}.",
    ]
    for name, entry in payload["experiments"].items():
        lines.append("")
        lines.append(f"## {name} — {entry['title']}")
        lines.append("")
        headers = entry["headers"]
        lines.append("| " + " | ".join(str(h) for h in headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in entry["rows"]:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        if entry["gate"]:
            lines.append("")
            gate = ", ".join(
                f"`{k}` = {v:g}" for k, v in sorted(entry["gate"].items())
            )
            lines.append(f"Gated counters: {gate}")
        if entry.get("perf"):
            lines.append("")
            lines.append("| wall-clock (not gated) | value |")
            lines.append("|---|---|")
            for k, v in sorted(entry["perf"].items()):
                lines.append(f"| `{k}` | {v:g} |")
        if entry.get("cache"):
            lines.append("")
            lines.extend(_cache_table(entry["cache"]))
    lines.append("")
    return "\n".join(lines)


def _cache_table(cache: Dict[str, Dict[str, Any]]) -> List[str]:
    """Render an experiment's cache section: one row per pool config.

    Column order puts the headline hit-rate first; remaining fields
    follow alphabetically so the table is stable across runs.
    """
    preferred = ["policy", "hit_rate", "hits", "misses"]
    keys: List[str] = [
        k for k in preferred if any(k in f for f in cache.values())
    ]
    extras = sorted(
        {k for fields in cache.values() for k in fields} - set(preferred)
    )
    keys.extend(extras)
    lines = [
        "| cache (not gated) | " + " | ".join(keys) + " |",
        "|---|" + "|".join("---" for _ in keys) + "|",
    ]
    for label in sorted(cache):
        fields = cache[label]
        cells = []
        for k in keys:
            v = fields.get(k, "")
            if isinstance(v, float):
                cells.append(f"{v:.3f}" if k == "hit_rate" else f"{v:g}")
            else:
                cells.append(str(v))
        lines.append(f"| `{label}` | " + " | ".join(cells) + " |")
    return lines


# ----------------------------------------------------------------------
# comparison (the regression gate)
# ----------------------------------------------------------------------
@dataclass
class GateDiff:
    """One gate counter's old-vs-new comparison."""

    experiment: str
    key: str
    old: float
    new: float

    @property
    def ratio(self) -> float:
        if self.old == 0:
            return float("inf") if self.new else 1.0
        return self.new / self.old

    def __str__(self) -> str:
        return (
            f"{self.experiment}.{self.key}: {self.old:g} -> {self.new:g} "
            f"({self.ratio - 1:+.1%})" if self.old != 0 else
            f"{self.experiment}.{self.key}: {self.old:g} -> {self.new:g}"
        )


@dataclass
class CompareResult:
    """Outcome of comparing two bench payloads."""

    tolerance_pct: float
    regressions: List[GateDiff] = field(default_factory=list)
    improvements: List[GateDiff] = field(default_factory=list)
    unchanged: int = 0
    missing_experiments: List[str] = field(default_factory=list)
    missing_gates: List[str] = field(default_factory=list)
    added_experiments: List[str] = field(default_factory=list)

    def ok(self, strict: bool = False) -> bool:
        """True when the new run passes the gate."""
        if self.regressions or self.missing_experiments or self.missing_gates:
            return False
        if strict and self.improvements:
            return False
        return True

    def summary(self, strict: bool = False) -> str:
        """Human-readable verdict."""
        lines: List[str] = []
        if self.missing_experiments:
            lines.append(
                "coverage regression — experiments missing from the new run:"
            )
            lines.extend(f"  - {name}" for name in self.missing_experiments)
        if self.missing_gates:
            lines.append("coverage regression — gate counters missing:")
            lines.extend(f"  - {name}" for name in self.missing_gates)
        if self.regressions:
            lines.append(
                f"regressions (beyond {self.tolerance_pct:g}% tolerance):"
            )
            lines.extend(f"  - {d}" for d in self.regressions)
        if self.improvements:
            tag = (
                "improvements (strict mode: refresh the baseline)"
                if strict else "improvements"
            )
            lines.append(f"{tag}:")
            lines.extend(f"  - {d}" for d in self.improvements)
        if self.added_experiments:
            lines.append(
                "new experiments (not gated): "
                + ", ".join(self.added_experiments)
            )
        verdict = "PASS" if self.ok(strict) else "FAIL"
        lines.append(
            f"{verdict}: {self.unchanged} counters within tolerance, "
            f"{len(self.improvements)} improved, "
            f"{len(self.regressions)} regressed"
        )
        return "\n".join(lines)


def compare(
    old: Dict[str, Any],
    new: Dict[str, Any],
    tolerance_pct: float = 0.0,
) -> CompareResult:
    """Compare gate counters of two payloads (lower is better).

    A counter regresses when ``new > old * (1 + tolerance_pct/100)``
    (with a 1e-9 absolute epsilon so exact-equality comparisons are not
    at the mercy of float formatting).  At the default 0% tolerance the
    gate is exact: any I/O-count increase fails.
    """
    validate_payload(old, "old")
    validate_payload(new, "new")
    if tolerance_pct < 0:
        raise ValueError("tolerance_pct must be >= 0")
    result = CompareResult(tolerance_pct=tolerance_pct)
    eps = 1e-9
    old_exps = old["experiments"]
    new_exps = new["experiments"]
    result.added_experiments = sorted(set(new_exps) - set(old_exps))
    for name in sorted(old_exps):
        if name not in new_exps:
            result.missing_experiments.append(name)
            continue
        old_gate = old_exps[name]["gate"]
        new_gate = new_exps[name]["gate"]
        for key in sorted(old_gate):
            if key not in new_gate:
                result.missing_gates.append(f"{name}.{key}")
                continue
            o, n = float(old_gate[key]), float(new_gate[key])
            allowance = abs(o) * tolerance_pct / 100.0 + eps
            if n > o + allowance:
                result.regressions.append(GateDiff(name, key, o, n))
            elif n < o - allowance:
                result.improvements.append(GateDiff(name, key, o, n))
            else:
                result.unchanged += 1
    return result
