"""A registry of named counters and gauges, keyed by structure/operation.

The I/O counters in :mod:`repro.io.stats` answer "how many blocks
moved"; this registry answers "which structure did what, how often":
splits, rebuilds, promotions, blocks touched per query phase, cache
evictions.  Structures record into the process-wide default registry
(cheap: one dict lookup plus an integer add per event, and the recorded
events -- splits, rebuilds, whole queries -- are orders of magnitude
rarer than block I/Os), and exporters snapshot it into the versioned
JSON alongside the span trees.

Metrics are identified by a name plus free-form labels, conventionally
``structure=`` and ``op=``::

    counter("splits", structure="external_pst", op="insert").inc()
    gauge("hit_rate", structure="bufferpool").set(pool.hit_rate)
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(key: MetricKey) -> str:
    """Render a metric key as ``name{k=v,...}`` (stable label order)."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("key", "value")
    kind = "counter"

    def __init__(self, key: MetricKey):
        self.key = key
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({format_key(self.key)}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("key", "value")
    kind = "gauge"

    def __init__(self, key: MetricKey):
        self.key = key
        self.value = 0.0

    def set(self, v: float) -> None:
        """Overwrite the gauge with ``v``."""
        self.value = v

    def __repr__(self) -> str:
        return f"Gauge({format_key(self.key)}={self.value})"


class MetricsRegistry:
    """Get-or-create registry of :class:`Counter` and :class:`Gauge`.

    A metric is uniquely identified by ``(name, labels)``; asking for an
    existing name with a different kind raises ``TypeError`` so a gauge
    can never silently shadow a counter.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[MetricKey, object]" = {}

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, labels)

    def _get(self, cls, name: str, labels: Dict[str, str]):
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {format_key(key)} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[object]:
        return iter(self._metrics.values())

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{rendered_key: value}`` view, sorted by key."""
        return {
            format_key(m.key): m.value
            for m in sorted(self._metrics.values(), key=lambda m: m.key)
        }

    def rows(self) -> List[Tuple[str, str, float]]:
        """``(kind, rendered key, value)`` rows, sorted by key."""
        return [
            (m.kind, format_key(m.key), m.value)
            for m in sorted(self._metrics.values(), key=lambda m: m.key)
        ]

    def clear(self) -> None:
        """Drop every metric (tests and bench isolation)."""
        self._metrics.clear()


#: Process-wide default registry; structures record here unless told
#: otherwise, and the bench exporters snapshot it per experiment.
DEFAULT_REGISTRY = MetricsRegistry()


def counter(name: str, **labels: str) -> Counter:
    """Shorthand for ``DEFAULT_REGISTRY.counter(...)``."""
    return DEFAULT_REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    """Shorthand for ``DEFAULT_REGISTRY.gauge(...)``."""
    return DEFAULT_REGISTRY.gauge(name, **labels)
