"""Structured observability for the I/O-model reproduction.

Three layers, importable independently:

- :mod:`repro.obs.metrics` -- named counters/gauges keyed by structure
  and operation (splits, rebuilds, promotions, phase block counts).
- :mod:`repro.obs.spans` -- nested spans attributing every physical
  read/write/alloc to a logical phase via the ``BlockStore`` /
  ``BufferPool`` observer hook points.
- :mod:`repro.obs.export` -- versioned JSON + markdown exporters and
  the ``compare`` regression gate used by ``tools/bench_report.py``
  and CI.
"""

from repro.obs.export import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    CompareResult,
    GateDiff,
    SchemaError,
    bench_payload,
    compare,
    load_bench_json,
    make_result,
    to_markdown,
    validate_payload,
    write_bench_json,
)
from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    counter,
    format_key,
    gauge,
)
from repro.obs.spans import Span, SpanRecorder, span

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "CompareResult",
    "Counter",
    "DEFAULT_REGISTRY",
    "Gauge",
    "GateDiff",
    "MetricsRegistry",
    "SchemaError",
    "Span",
    "SpanRecorder",
    "bench_payload",
    "compare",
    "counter",
    "format_key",
    "gauge",
    "load_bench_json",
    "make_result",
    "span",
    "to_markdown",
    "validate_payload",
    "write_bench_json",
]
