"""Nested spans: attribute every physical I/O to a logical phase.

A :class:`SpanRecorder` subscribes to the ``on_read``/``on_write`` hook
points of a storage object (see :meth:`repro.io.BlockStore.add_observer`)
and maintains a stack of named spans.  While a span is open, every
physical read, write, alloc and free is charged to it *exclusively*;
spans nest, so an external-PST query shows up as::

    total                      52 reads
      pst.query.descend         6
        small.catalog           4
        small.data              2
      pst.query.leaf           44

Two guarantees make the numbers trustworthy:

- **Exactness.**  The recorder counts by observing the same events that
  move :class:`~repro.io.stats.IOStats`, so the sum of all exclusive
  span counts (plus the root's unattributed remainder) equals the
  store's counter delta over the attachment window -- checked in
  ``tests/test_obs.py``.
- **Cheap when off.**  Structures open spans through the module-level
  :func:`span` helper, which is a single ``getattr`` returning a shared
  null context when no recorder is attached.

Spans with the same name under the same parent are merged (a query that
visits 40 leaves produces one ``pst.query.leaf`` span with
``entries=40``), keeping reports readable and export sizes bounded.

If the storage object is a :class:`~repro.io.BufferPool`, the recorder
additionally subscribes to its logical events and attributes cache hits
and misses per span, so phase-level hit rates come for free.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.io.stats import IOStats


class Span:
    """One node of the attribution tree (exclusive counts)."""

    __slots__ = ("name", "parent", "children", "stats", "entries",
                 "pool_hits", "pool_misses")

    def __init__(self, name: str, parent: "Optional[Span]" = None):
        self.name = name
        self.parent = parent
        self.children: "Dict[str, Span]" = {}
        self.stats = IOStats()       # I/O charged to this span alone
        self.entries = 0             # times the span was entered
        self.pool_hits = 0
        self.pool_misses = 0

    def child(self, name: str) -> "Span":
        """The child span called ``name``, created on first use."""
        ch = self.children.get(name)
        if ch is None:
            ch = Span(name, self)
            self.children[name] = ch
        return ch

    @property
    def total(self) -> IOStats:
        """Inclusive counts: this span plus all descendants."""
        t = self.stats.copy()
        for ch in self.children.values():
            t = t + ch.total
        return t

    def walk(self, depth: int = 0) -> "Iterator[Tuple[Span, int]]":
        """Yield ``(span, depth)`` pre-order over the subtree."""
        yield self, depth
        for ch in self.children.values():
            for item in ch.walk(depth + 1):
                yield item

    def as_dict(self) -> dict:
        """JSON-friendly view of the subtree (exclusive + inclusive)."""
        return {
            "name": self.name,
            "entries": self.entries,
            "self": self.stats.as_dict(),
            "total": self.total.as_dict(),
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "children": [ch.as_dict() for ch in self.children.values()],
        }

    def __repr__(self) -> str:
        return f"Span({self.name}, entries={self.entries}, self={self.stats})"


class _SpanContext:
    """Context manager pushing/popping one span on its recorder."""

    __slots__ = ("_recorder", "_name")

    def __init__(self, recorder: "SpanRecorder", name: str):
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> Span:
        return self._recorder._push(self._name)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._pop()


class _NullContext:
    """Shared no-op context returned when no recorder is attached."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL = _NullContext()


def span(storage, name: str):
    """Open span ``name`` on the recorder attached to ``storage``.

    This is the hook structures call around their query/update phases.
    When nothing is attached (the common case) it returns a shared null
    context: the instrumentation costs one attribute lookup.
    """
    rec = getattr(storage, "_span_recorder", None)
    if rec is None:
        # wrapper mismatch: the recorder may be attached to the pool
        # while this structure holds the raw store, or the reverse --
        # the physical store is always marked too.
        phys = getattr(storage, "physical_store", storage)
        if phys is storage:
            return _NULL
        rec = getattr(phys, "_span_recorder", None)
        if rec is None:
            return _NULL
    return rec.span(name)


class SpanRecorder:
    """Attach to a storage object and build a span-attribution tree.

    Usage::

        rec = SpanRecorder(store)
        with rec:                        # subscribes to the hook points
            with rec.span("query"):
                pst.query(a, b, c)       # structures add nested spans
        print(rec.format_report())

    Everything observed outside any explicit span lands on the implicit
    root span (:attr:`unattributed`); :attr:`total` is always exactly
    the store's counter delta over the attachment window.
    """

    def __init__(self, storage):
        self._storage = storage
        self._phys = getattr(storage, "physical_store", storage)
        self._pool = storage if storage is not self._phys else None
        self.root = Span("total")
        self.root.entries = 1
        self._stack: List[Span] = [self.root]
        self._attached = False

    # ------------------------------------------------------------------
    # attachment lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "SpanRecorder":
        """Subscribe to the storage hook points (idempotent)."""
        if self._attached:
            return self
        for obj in (self._storage, self._phys):
            existing = getattr(obj, "_span_recorder", None)
            if existing is not None and existing is not self:
                raise RuntimeError(
                    "another SpanRecorder is already attached to this storage"
                )
        self._phys.add_observer(self._on_store_event)
        if self._pool is not None and hasattr(self._pool, "add_observer"):
            self._pool.add_observer(self._on_pool_event)
        self._storage._span_recorder = self
        self._phys._span_recorder = self
        self._attached = True
        return self

    def detach(self) -> None:
        """Unsubscribe; the collected tree stays readable."""
        if not self._attached:
            return
        self._phys.remove_observer(self._on_store_event)
        if self._pool is not None and hasattr(self._pool, "remove_observer"):
            self._pool.remove_observer(self._on_pool_event)
        for obj in (self._storage, self._phys):
            if getattr(obj, "_span_recorder", None) is self:
                obj._span_recorder = None
        self._attached = False

    def __enter__(self) -> "SpanRecorder":
        return self.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # span stack
    # ------------------------------------------------------------------
    def span(self, name: str) -> _SpanContext:
        """Context manager opening ``name`` under the current span."""
        return _SpanContext(self, name)

    def _push(self, name: str) -> Span:
        sp = self._stack[-1].child(name)
        sp.entries += 1
        self._stack.append(sp)
        return sp

    def _pop(self) -> None:
        if len(self._stack) > 1:
            self._stack.pop()

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    # ------------------------------------------------------------------
    # event handlers (the hook-point callbacks)
    # ------------------------------------------------------------------
    def _on_store_event(self, op: str, bid: int) -> None:
        st = self._stack[-1].stats
        if op == "read":
            st.reads += 1
        elif op == "write":
            st.writes += 1
        elif op == "alloc":
            st.allocs += 1
        elif op == "free":
            st.frees += 1

    def _on_pool_event(self, op: str, bid: int) -> None:
        sp = self._stack[-1]
        if op == "hit":
            sp.pool_hits += 1
        elif op == "miss":
            sp.pool_misses += 1

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def total(self) -> IOStats:
        """All I/O observed while attached (== the store's delta)."""
        return self.root.total

    @property
    def unattributed(self) -> IOStats:
        """I/O observed outside every explicit span."""
        return self.root.stats

    def as_dict(self) -> dict:
        """JSON-friendly span tree."""
        return self.root.as_dict()

    def report_rows(self) -> List[List[object]]:
        """``[indented name, entries, reads, writes, allocs, frees, ios]``
        rows in pre-order (for tables)."""
        rows: List[List[object]] = []
        for sp, depth in self.root.walk():
            s = sp.stats if sp is not self.root else sp.total
            label = "  " * depth + (sp.name if sp is not self.root else "total")
            rows.append([
                label, sp.entries, s.reads, s.writes, s.allocs, s.frees, s.ios,
            ])
        return rows

    def format_report(self) -> str:
        """Aligned plain-text report of the span tree."""
        headers = ["span", "entries", "reads", "writes", "allocs", "frees", "ios"]
        rows = [[str(c) for c in row] for row in self.report_rows()]
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
            for i, h in enumerate(headers)
        ]
        out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
        out.append("-+-".join("-" * w for w in widths))
        for r in rows:
            out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(out)
