"""Small blocked sorted sequences: the leaf lists ``L_z`` of Section 3.3.

A :class:`BlockedSequence` keeps records sorted by a key, *descending*,
split across data blocks plus a single directory block.  The directory
holds one ``(block_id, max_key, count)`` record per data block, so the
structure supports at most ``B`` data blocks (~``B^2/2`` records) -- ample
for leaf lists, whose size is ``O(B log_B N)``, and deliberately not a
general index (use :class:`repro.substrates.bplus_tree.BPlusTree` for
that).

All operations cost O(1 + records_touched/B) I/Os.  The descending order
matches the access pattern of 3-sided queries: scan from the top until
the key drops below the query's ``y = c``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.io.hooks import prefetch_hint


class BlockedSequence:
    """A y-descending blocked list on a block store.

    Parameters
    ----------
    store:
        Block storage (``BlockStore`` or ``BufferPool``).
    key:
        Maps a record to its sort key.  Records are kept in descending
        key order; ties are broken by the record itself, so records must
        be totally orderable when keys tie (tuples are).
    """

    def __init__(self, store, key: Callable[[Any], Any]):
        self._store = store
        self._key = key
        self._dir_bid = store.alloc()
        store.write(self._dir_bid, [])

    @property
    def dir_bid(self) -> int:
        """Id of the directory block (persist this to re-attach later)."""
        return self._dir_bid

    @classmethod
    def attach(cls, store, dir_bid: int, key: Callable[[Any], Any]) -> "BlockedSequence":
        """Re-open an existing sequence from its directory block id."""
        seq = cls.__new__(cls)
        seq._store = store
        seq._key = key
        seq._dir_bid = dir_bid
        return seq

    # ------------------------------------------------------------------
    @classmethod
    def from_sorted(
        cls, store, records: Sequence[Any], key: Callable[[Any], Any]
    ) -> "BlockedSequence":
        """Bulk build from records ALREADY sorted descending by key.

        Blocks are filled half full so early inserts do not immediately
        split; cost O(1 + n/B) I/Os.
        """
        seq = cls(store, key)
        B = store.block_size
        fill = max(1, B // 2)
        directory: List[Tuple[int, Any, int]] = []
        for lo in range(0, len(records), fill):
            chunk = list(records[lo:lo + fill])
            bid = store.alloc()
            store.write(bid, chunk)
            directory.append((bid, key(chunk[0]), len(chunk)))
        if len(directory) > B:
            raise ValueError(
                f"sequence needs {len(directory)} blocks > B = {B}; "
                "use a BPlusTree for sequences this large"
            )
        store.write(seq._dir_bid, directory)
        return seq

    # ------------------------------------------------------------------
    def _read_dir(self) -> List[Tuple[int, Any, int]]:
        return list(self._store.read(self._dir_bid).records)

    def _sort_key(self, rec: Any):
        return (self._key(rec), rec)

    def count(self) -> int:
        """Number of records (1 I/O: the directory)."""
        return sum(c for _, _, c in self._read_dir())

    def is_empty(self) -> bool:
        """True iff nothing is stored."""
        return self.count() == 0

    # ------------------------------------------------------------------
    def insert(self, record: Any) -> None:
        """Insert a record (O(1) I/Os; splits a full block if needed)."""
        directory = self._read_dir()
        B = self._store.block_size
        if not directory:
            bid = self._store.alloc()
            self._store.write(bid, [record])
            self._store.write(self._dir_bid, [(bid, self._key(record), 1)])
            return
        # Directory is descending by block max.  The record belongs in
        # the LAST block whose max >= its key (its covered range reaches
        # down to the record); if the record exceeds every max it goes in
        # the first block.
        rk = self._key(record)
        slot = 0
        for i in range(len(directory) - 1, -1, -1):
            if directory[i][1] >= rk:
                slot = i
                break
        bid, mx, cnt = directory[slot]
        block = self._store.read(bid)
        recs = list(block.records)
        recs.append(record)
        recs.sort(key=self._sort_key, reverse=True)
        if len(recs) > B:
            # split into two half-full blocks
            half = len(recs) // 2
            hi, lo = recs[:half], recs[half:]
            self._store.write(bid, hi)
            bid2 = self._store.alloc()
            self._store.write(bid2, lo)
            directory[slot] = (bid, self._key(hi[0]), len(hi))
            directory.insert(slot + 1, (bid2, self._key(lo[0]), len(lo)))
            if len(directory) > B:
                raise ValueError("BlockedSequence overflow: too many blocks")
        else:
            self._store.write(bid, recs)
            directory[slot] = (bid, self._key(recs[0]), len(recs))
        self._store.write(self._dir_bid, directory)

    def remove(self, record: Any) -> bool:
        """Remove one occurrence of ``record``; True if found.

        O(1) I/Os for distinct keys; with heavy key duplication every
        block whose max reaches the key may be probed.
        """
        directory = self._read_dir()
        rk = self._key(record)
        for slot, (bid, mx, cnt) in enumerate(directory):
            # only blocks whose max reaches the key can hold the record
            if mx < rk:
                break
            block = self._store.read(bid)
            recs = list(block.records)
            if record in recs:
                recs.remove(record)
                if recs:
                    self._store.write(bid, recs)
                    directory[slot] = (bid, self._key(recs[0]), len(recs))
                else:
                    self._store.free(bid)
                    directory.pop(slot)
                self._store.write(self._dir_bid, directory)
                return True
        return False

    def pop_top(self) -> Optional[Any]:
        """Remove and return the record with the largest key (O(1) I/Os)."""
        directory = self._read_dir()
        if not directory:
            return None
        bid, mx, cnt = directory[0]
        block = self._store.read(bid)
        recs = list(block.records)
        top = recs.pop(0)
        if recs:
            self._store.write(bid, recs)
            directory[0] = (bid, self._key(recs[0]), len(recs))
        else:
            self._store.free(bid)
            directory.pop(0)
        self._store.write(self._dir_bid, directory)
        return top

    def peek_top(self) -> Optional[Any]:
        """The record with the largest key, or None (O(1) I/Os)."""
        directory = self._read_dir()
        if not directory:
            return None
        bid, _, _ = directory[0]
        return self._store.read(bid).records[0]

    # ------------------------------------------------------------------
    def scan_top_while(self, predicate: Callable[[Any], bool]) -> Tuple[List[Any], int]:
        """Records from the top while ``predicate`` holds, stopping at the
        first failure.  Returns ``(records, blocks_read)`` (excludes the
        directory read)."""
        directory = self._read_dir()
        if len(directory) > 1:
            # the data blocks form a sequential run in directory order;
            # a readahead pool can batch the fetches
            prefetch_hint(self._store, [bid for bid, _, _ in directory])
        out: List[Any] = []
        blocks_read = 0
        for bid, mx, cnt in directory:
            block = self._store.read(bid)
            blocks_read += 1
            stopped = False
            for rec in block.records:
                if predicate(rec):
                    out.append(rec)
                else:
                    stopped = True
                    break
            if stopped:
                break
        return out, blocks_read

    def scan_all(self) -> List[Any]:
        """All records in descending key order (O(1 + n/B) I/Os)."""
        directory = self._read_dir()
        if len(directory) > 1:
            prefetch_hint(self._store, [bid for bid, _, _ in directory])
        out: List[Any] = []
        for bid, _, _ in directory:
            out.extend(self._store.read(bid).records)
        return out

    def num_blocks(self) -> int:
        """Data blocks plus the directory block (1 I/O)."""
        return len(self._read_dir()) + 1

    def destroy(self) -> None:
        """Free every block owned by the sequence."""
        for bid, _, _ in self._read_dir():
            self._store.free(bid)
        self._store.free(self._dir_bid)

    def check_invariants(self) -> None:
        """Descending order within and across blocks; directory accuracy."""
        directory = self._read_dir()
        prev_min = None
        for bid, mx, cnt in directory:
            recs = self._store.peek(bid) if hasattr(self._store, "peek") else list(
                self._store.read(bid).records
            )
            assert recs, "empty data block in directory"
            assert len(recs) == cnt, "directory count mismatch"
            assert self._key(recs[0]) == mx, "directory max mismatch"
            keys = [self._sort_key(r) for r in recs]
            assert keys == sorted(keys, reverse=True), "block not descending"
            # across blocks only the KEY order is maintained: insert
            # routes by key alone (the directory holds no tie-break), so
            # records with equal keys may interleave between blocks
            if prev_min is not None:
                assert prev_min >= self._key(recs[0]), "blocks out of order"
            prev_min = self._key(recs[-1])
