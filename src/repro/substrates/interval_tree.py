"""Dynamic interval management via the diagonal-corner reduction.

Kannan et al. (and Figure 1(a) of the paper) observed that *stabbing
queries* -- report every stored interval ``[l, r]`` containing a query
point ``q`` -- are exactly *diagonal corner queries* on the point set
``{(l, r)}``: the interval contains ``q`` iff ``l <= q <= r``, i.e. iff
the point ``(l, r)`` lies in the quadrant with corner ``(q, q)`` on the
diagonal.  A diagonal corner query is a special case of a 3-sided query
(``x <= q``, ``y >= q``), so our external priority search tree answers it
in ``O(log_B N + t)`` I/Os with linear space and ``O(log_B N)`` updates.

Arge-Vitter [2] built a dedicated slab-based structure with the same
bounds; Section 4 of the paper uses it as a substrate.  This module *is*
that substrate for this repository: identical asymptotics, implemented
through the very reduction the paper highlights (see DESIGN.md's
substitution table).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.external_pst import ExternalPrioritySearchTree
from repro.geometry import NEG_INF

Interval = Tuple[float, float]


class ExternalIntervalTree:
    """Dynamic stabbing queries in optimal external-memory bounds.

    Stored intervals are closed ``[l, r]`` with ``l <= r`` and must be
    pairwise distinct as pairs (duplicate intervals would collide as
    points; wrap a distinguishing id into the endpoints if needed).
    """

    def __init__(self, store, intervals: Sequence[Interval] = (), **pst_kwargs):
        pts = []
        for l, r in intervals:
            self._validate(l, r)
            pts.append((float(l), float(r)))
        self._pst = ExternalPrioritySearchTree(store, pts, **pst_kwargs)

    @staticmethod
    def _validate(l: float, r: float) -> None:
        if l > r:
            raise ValueError(f"empty interval [{l}, {r}]")

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._pst.count

    def insert(self, l: float, r: float) -> None:
        """Add interval [l, r] in O(log_B N) I/Os."""
        self._validate(l, r)
        self._pst.insert(l, r)

    def delete(self, l: float, r: float) -> bool:
        """Remove interval [l, r]; True if present.  O(log_B N) I/Os."""
        self._validate(l, r)
        return self._pst.delete(l, r)

    def stab(self, q: float) -> List[Interval]:
        """Every interval containing ``q``: O(log_B N + t) I/Os."""
        return self._pst.query(NEG_INF, q, q)

    def intervals_containing_range(self, lo: float, hi: float) -> List[Interval]:
        """Intervals that contain the whole range [lo, hi] (l <= lo and
        r >= hi): a single 3-sided query."""
        return self._pst.query(NEG_INF, lo, hi)

    def all_intervals(self) -> List[Interval]:
        """Every live interval (reads the whole structure)."""
        return self._pst.all_points()

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        return self._pst.blocks_in_use()

    def check_invariants(self) -> None:
        """Validate structural guarantees; raises AssertionError on breach."""
        self._pst.check_invariants()
        for l, r in self._pst.all_points():
            assert l <= r, "corrupt interval endpoint order"
