"""The Arge-Vitter external interval tree, slab-based (reference [2]).

:mod:`repro.substrates.interval_tree` answers stabbing queries through
the diagonal-corner reduction onto the external PST.  This module builds
the *original* structure of Arge-Vitter instead -- the one the paper
cites as its Section 4 substrate -- so the two can be compared (bench
E9b):

- A fan-out ``f = Theta(sqrt(B))`` base tree over the ~2N/B *slabs*
  induced by the sorted endpoint multiset.
- Each interval lives at the highest node where its endpoints fall in
  different child slabs (or in a leaf if it fits inside one leaf slab).
  At that node it is recorded three ways:

  * in the **left list** of the slab holding its left endpoint
    (ascending by ``l``: a stab in that slab scans a prefix from the
    list head),
  * in the **right list** of the slab holding its right endpoint
    (descending by ``r``),
  * if it fully spans middle slabs, in the **multislab** structure:
    a dedicated list once the multislab is *dense* (``>= B`` intervals,
    so reporting it whole is output-amortized), otherwise in the node's
    **underflow corner structure** -- a Lemma-1
    :class:`~repro.core.small_structure.SmallThreeSidedStructure` over
    the points ``(l, r)``, stabbed by the very diagonal-corner query of
    Figure 1(a).  With ``O(f^2) = O(B)`` multislabs the corner structure
    holds ``O(B^2)`` intervals, exactly its design point.

Lists are B+-trees whose head-first ``prefix_scan`` costs
``O(1 + prefix/B)`` I/Os with no descent (the paper's blocked linked
lists); updates into a list pay the B+-tree's ``O(log_B)`` instead of the
paper's ``O(1)`` -- a documented constant-factor simplification that
keeps the overall ``O(log_B N)`` update bound.

A stab at ``q`` walks the root-to-leaf path of ``q``'s slab (height
``~2 log_B N``) and at each node scans one left prefix, one right
prefix, every dense multislab list spanning ``q``'s slab (each fully
reported), and one corner query: ``O(log_B N + T/B)`` I/Os total.

Dynamics are semi-dynamic, as in the static-to-dynamic recipe the paper
itself uses elsewhere: slab boundaries are fixed at build time, updates
edit the lists (sparse multislabs promote to dense at the threshold),
and the whole structure is rebuilt after N/2 updates (global
rebuilding).  The fully dynamic weight-balanced version is deferred
exactly as the paper defers its own "details to the full paper".
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.small_structure import SmallThreeSidedStructure
from repro.geometry import INF, NEG_INF, ThreeSidedQuery
from repro.substrates.bplus_tree import BPlusTree

Interval = Tuple[float, float]

# node metadata records (chained across blocks with a ("NEXT", bid) tail):
#   ("H", n_children, bounds)          bounds: tuple of n_children+1 cuts
#   ("C", i, child_node_bid | None)    None = empty leaf slab
#   ("LF", list_id)                    leaf: resident interval list
#   ("L", i, list_id)                  left list of child slab i
#   ("R", i, list_id)                  right list of child slab i
#   ("D", first, last, list_id)        dense multislab list
#   ("S", first, last, count)          sparse multislab count (in corner)
#
# list_id values index the in-memory registry of B+-tree handles (their
# data lives on the store; only the root pointers are in memory, the
# moral equivalent of keeping each list's head block id in the node).


class SlabIntervalTree:
    """Arge-Vitter slab-based interval tree (static build + semi-dynamic
    updates + global rebuilding).  Intervals must be distinct pairs."""

    def __init__(self, store, intervals: Sequence[Interval] = ()):
        self._store = store
        B = store.block_size
        if B < 9:
            raise ValueError("slab interval tree needs B >= 9")
        self.fanout = max(3, math.isqrt(B))
        self._corner: Dict[int, SmallThreeSidedStructure] = {}
        self._lists: Dict[int, BPlusTree] = {}
        self._next_list_id = 0
        self._root: Optional[int] = None
        self._count = 0
        self._updates = 0
        self.rebuilds = 0
        ivs = [(float(l), float(r)) for l, r in intervals]
        if len(set(ivs)) != len(ivs):
            raise ValueError("intervals must be distinct")
        for l, r in ivs:
            if l > r:
                raise ValueError(f"empty interval [{l}, {r}]")
        self._bulk_build(ivs)

    # ==================================================================
    # list helpers (B+-trees playing the paper's blocked linked lists)
    # ==================================================================
    def _new_list(self, keys: List[Tuple]) -> int:
        lid = self._next_list_id
        self._next_list_id += 1
        self._lists[lid] = BPlusTree.bulk_load(
            self._store, [(k, None) for k in sorted(keys)]
        )
        return lid

    def _scan_prefix(self, lid: int, keep) -> List[Tuple]:
        pairs, _ = self._lists[lid].prefix_scan(lambda k, v: keep(k))
        return [k for k, _v in pairs]

    def _scan_all(self, lid: int) -> List[Tuple]:
        return self._scan_prefix(lid, lambda k: True)

    @staticmethod
    def _rkey(iv: Interval) -> Tuple[float, float]:
        """Right lists sort descending by r: negate both coordinates."""
        return (-iv[1], -iv[0])

    @staticmethod
    def _from_rkey(k: Tuple[float, float]) -> Interval:
        return (-k[1], -k[0])

    # ==================================================================
    # node metadata I/O (records chained across blocks)
    # ==================================================================
    def _write_node(self, records: List[Tuple], head: Optional[int] = None) -> int:
        store = self._store
        per = store.block_size - 1   # room for the chain record
        chunks = [records[i:i + per] for i in range(0, len(records), per)] or [[]]
        bids = [head if head is not None else store.alloc()]
        for _ in chunks[1:]:
            bids.append(store.alloc())
        for i, chunk in enumerate(chunks):
            tail = [("NEXT", bids[i + 1])] if i + 1 < len(chunks) else []
            store.write(bids[i], chunk + tail)
        return bids[0]

    def _read_node(self, head: int) -> List[Tuple]:
        records: List[Tuple] = []
        bid: Optional[int] = head
        while bid is not None:
            chunk = list(self._store.read(bid).records)
            nxt = None
            if chunk and chunk[-1][0] == "NEXT":
                nxt = chunk[-1][1]
                chunk = chunk[:-1]
            records.extend(chunk)
            bid = nxt
        return records

    def _peek_node(self, head: int) -> List[Tuple]:
        records: List[Tuple] = []
        bid: Optional[int] = head
        while bid is not None:
            chunk = self._store.peek(bid)
            nxt = None
            if chunk and chunk[-1][0] == "NEXT":
                nxt = chunk[-1][1]
                chunk = chunk[:-1]
            records.extend(chunk)
            bid = nxt
        return records

    def _free_node_chain(self, head: int) -> None:
        bid: Optional[int] = head
        while bid is not None:
            chunk = self._store.peek(bid)
            nxt = chunk[-1][1] if chunk and chunk[-1][0] == "NEXT" else None
            self._store.free(bid)
            bid = nxt

    def _rewrite_node(self, head: int, records: List[Tuple]) -> None:
        chunk = self._store.read(head).records
        nxt = chunk[-1][1] if chunk and chunk[-1][0] == "NEXT" else None
        while nxt is not None:
            nchunk = self._store.read(nxt).records
            self._store.free(nxt)
            nxt = nchunk[-1][1] if nchunk and nchunk[-1][0] == "NEXT" else None
        self._write_node(records, head=head)

    # ==================================================================
    # construction
    # ==================================================================
    def _bulk_build(self, ivs: List[Interval]) -> None:
        self._count = len(ivs)
        self._built_n = len(ivs)
        self._updates = 0
        B = self._store.block_size
        endpoints = sorted(v for iv in ivs for v in iv)
        cuts = [NEG_INF]
        for i in range(B, len(endpoints), B):
            if endpoints[i - 1] != cuts[-1]:
                cuts.append(endpoints[i - 1])
        cuts.append(INF)
        self._root = self._build(cuts, ivs)

    @staticmethod
    def _child_of(bounds: Tuple, v: float) -> int:
        for i in range(1, len(bounds) - 1):
            if v <= bounds[i]:
                return i - 1
        return len(bounds) - 2

    def _build(self, cuts: List[float], ivs: List[Interval]) -> int:
        store = self._store
        B = store.block_size
        n_slabs = len(cuts) - 1
        if n_slabs <= 1:
            return self._write_node([
                ("H", 0, (cuts[0], cuts[-1])),
                ("LF", self._new_list(ivs)),
            ])

        f = self.fanout
        group = max(1, math.ceil(n_slabs / f))
        child_cuts = [cuts[i:i + group + 1] for i in range(0, n_slabs, group)]
        bounds = tuple([cc[0] for cc in child_cuts] + [child_cuts[-1][-1]])

        here: List[Interval] = []
        below: List[List[Interval]] = [[] for _ in child_cuts]
        for iv in ivs:
            ci = self._child_of(bounds, iv[0])
            cj = self._child_of(bounds, iv[1])
            if ci == cj:
                below[ci].append(iv)
            else:
                here.append(iv)

        left_lists: Dict[int, List[Interval]] = {}
        right_lists: Dict[int, List[Interval]] = {}
        multislabs: Dict[Tuple[int, int], List[Interval]] = {}
        for iv in here:
            ci = self._child_of(bounds, iv[0])
            cj = self._child_of(bounds, iv[1])
            left_lists.setdefault(ci, []).append(iv)
            right_lists.setdefault(cj, []).append(iv)
            if cj > ci + 1:
                multislabs.setdefault((ci + 1, cj - 1), []).append(iv)

        records: List[Tuple] = [("H", len(child_cuts), bounds)]
        for i, ivl in sorted(left_lists.items()):
            records.append(("L", i, self._new_list(ivl)))
        for i, ivl in sorted(right_lists.items()):
            records.append(("R", i, self._new_list([self._rkey(iv) for iv in ivl])))
        corner_ivs: List[Interval] = []
        for (first, last), ivl in sorted(multislabs.items()):
            if len(ivl) >= B:
                records.append(("D", first, last, self._new_list(ivl)))
            else:
                corner_ivs.extend(ivl)
                records.append(("S", first, last, len(ivl)))
        head = store.alloc()
        if corner_ivs:
            self._corner[head] = SmallThreeSidedStructure(
                store, corner_ivs, max_points=B * B + 2 * B
            )
        for i, cc in enumerate(child_cuts):
            if len(cc) - 1 <= 1 and not below[i]:
                records.append(("C", i, None))
            else:
                records.append(("C", i, self._build(cc, below[i])))
        self._write_node(records, head=head)
        return head

    # ==================================================================
    # accessors
    # ==================================================================
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def height(self) -> int:
        """Number of levels from root to leaves."""
        h, bid = 1, self._root
        while True:
            records = self._peek_node(bid)
            children = [r for r in records if r[0] == "C" and r[2] is not None]
            if not children:
                return h
            bid = children[0][2]
            h += 1

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        total = 0

        def tree_blocks(lid: int) -> int:
            count = 0
            stack = [self._lists[lid].root_bid]
            while stack:
                b = stack.pop()
                count += 1
                records = self._store.peek(b)
                if records[0][0] == "I":
                    stack.extend(child for _s, child in records[1:])
            return count

        def rec(head: int) -> None:
            nonlocal total
            records = self._peek_node(head)
            total += 1 + len(records) // self._store.block_size
            for r in records:
                if r[0] == "LF":
                    total += tree_blocks(r[1])
                elif r[0] in ("L", "R"):
                    total += tree_blocks(r[2])
                elif r[0] == "D":
                    total += tree_blocks(r[3])
                elif r[0] == "C" and r[2] is not None:
                    rec(r[2])
            if head in self._corner:
                total += self._corner[head].num_blocks()

        if self._root is not None:
            rec(self._root)
        return total

    # ==================================================================
    # stabbing query
    # ==================================================================
    def stab(self, q: float) -> List[Interval]:
        """Every interval containing ``q``: O(log_B N + T/B) I/Os."""
        out: List[Interval] = []
        bid = self._root
        while bid is not None:
            records = self._read_node(bid)
            header = records[0]
            n_children, bounds = header[1], header[2]
            if n_children == 0:
                for r in records:
                    if r[0] == "LF":
                        out.extend(
                            iv for iv in self._scan_all(r[1])
                            if iv[0] <= q <= iv[1]
                        )
                return out
            s = self._child_of(bounds, q)
            nxt = None
            for r in records[1:]:
                tag = r[0]
                if tag == "L" and r[1] == s:
                    out.extend(self._scan_prefix(r[2], lambda k: k[0] <= q))
                elif tag == "R" and r[1] == s:
                    hits = self._scan_prefix(r[2], lambda k: -k[0] >= q)
                    out.extend(self._from_rkey(k) for k in hits)
                elif tag == "D" and r[1] <= s <= r[2]:
                    out.extend(self._scan_all(r[3]))
                elif tag == "C" and r[1] == s:
                    nxt = r[2]
            if bid in self._corner:
                for iv in self._corner[bid].query(
                    ThreeSidedQuery(NEG_INF, q, q)
                ):
                    # intervals with an endpoint in slab s were already
                    # reported by the prefix scans (CPU-only filter)
                    if (self._child_of(bounds, iv[0]) < s
                            < self._child_of(bounds, iv[1])):
                        out.append(iv)
            bid = nxt
        return out

    # ==================================================================
    # updates (semi-dynamic; slab boundaries fixed until rebuild)
    # ==================================================================
    def insert(self, l: float, r: float) -> None:
        """Add interval [l, r]; O(log_B N) I/Os amortized."""
        l, r = float(l), float(r)
        if l > r:
            raise ValueError(f"empty interval [{l}, {r}]")
        self._update((l, r), add=True)
        self._count += 1
        self._note_update()

    def delete(self, l: float, r: float) -> bool:
        """Remove interval [l, r]; True if present.  O(log_B N) I/Os."""
        found = self._update((float(l), float(r)), add=False)
        if found:
            self._count -= 1
            self._note_update()
        return found

    def _note_update(self) -> None:
        self._updates += 1
        if self._updates >= max(self._built_n, 4 * self._store.block_size) // 2:
            self.rebuild()

    def rebuild(self) -> None:
        """Rebuild from the live contents (global rebuilding)."""
        ivs = self.all_intervals()
        self._destroy()
        self.rebuilds += 1
        self._bulk_build(ivs)

    def _update(self, iv: Interval, add: bool) -> bool:
        bid = self._root
        while True:
            records = self._read_node(bid)
            header = records[0]
            n_children, bounds = header[1], header[2]
            if n_children == 0:
                for r in records:
                    if r[0] == "LF":
                        if add:
                            self._lists[r[1]].insert(iv, None)
                            return True
                        return self._lists[r[1]].delete(iv, None)
                return False
            ci = self._child_of(bounds, iv[0])
            cj = self._child_of(bounds, iv[1])
            if ci == cj:
                nxt = next(
                    (r[2] for r in records if r[0] == "C" and r[1] == ci),
                    None,
                )
                if nxt is None:
                    if not add:
                        return False
                    child = self._write_node([
                        ("H", 0, (bounds[ci], bounds[ci + 1])),
                        ("LF", self._new_list([iv])),
                    ])
                    self._rewrite_node(bid, [
                        ("C", ci, child) if (r[0] == "C" and r[1] == ci) else r
                        for r in records
                    ])
                    return True
                bid = nxt
                continue
            return self._update_here(bid, records, iv, ci, cj, add)

    def _update_here(self, bid, records, iv, ci, cj, add) -> bool:
        B = self._store.block_size
        changed = False
        new_records = list(records)

        def edit_list(tag: str, slab: int, key) -> bool:
            nonlocal changed
            for r in new_records:
                if r[0] == tag and r[1] == slab:
                    if add:
                        self._lists[r[2]].insert(key, None)
                        return True
                    return self._lists[r[2]].delete(key, None)
            if add:
                new_records.append((tag, slab, self._new_list([key])))
                changed = True
                return True
            return False

        okl = edit_list("L", ci, iv)
        okr = edit_list("R", cj, self._rkey(iv))
        ok_mid = True
        if cj > ci + 1:
            first, last = ci + 1, cj - 1
            dense = next(
                (r for r in new_records
                 if r[0] == "D" and (r[1], r[2]) == (first, last)),
                None,
            )
            if dense is not None:
                if add:
                    self._lists[dense[3]].insert(iv, None)
                else:
                    ok_mid = self._lists[dense[3]].delete(iv, None)
            else:
                corner = self._corner.get(bid)
                if add:
                    if corner is None:
                        corner = SmallThreeSidedStructure(
                            self._store, [], max_points=B * B + 2 * B
                        )
                        self._corner[bid] = corner
                    corner.insert(iv)
                    self._bump_sparse(new_records, bid, first, last, +1)
                    changed = True
                else:
                    ok_mid = corner.delete(iv) if corner is not None else False
                    if ok_mid:
                        self._bump_sparse(new_records, bid, first, last, -1)
                        changed = True
        if changed:
            self._rewrite_node(bid, new_records)
        return okl and okr and ok_mid

    def _bump_sparse(self, records: List[Tuple], bid: int,
                     first: int, last: int, delta: int) -> None:
        """Adjust a sparse multislab count; promote to dense at B."""
        B = self._store.block_size
        idx = None
        for i, r in enumerate(records):
            if r[0] == "S" and (r[1], r[2]) == (first, last):
                idx = i
                records[i] = ("S", first, last, r[3] + delta)
                break
        if idx is None:
            records.append(("S", first, last, max(0, delta)))
            idx = len(records) - 1
        count = records[idx][3]
        if delta > 0 and count >= B:
            corner = self._corner[bid]
            bounds = records[0][2]
            mine = [
                ivl for ivl in corner.all_points()
                if (self._child_of(bounds, ivl[0]) + 1,
                    self._child_of(bounds, ivl[1]) - 1) == (first, last)
            ]
            for ivl in mine:
                corner.delete(ivl)
            records[idx] = ("D", first, last, self._new_list(mine))

    # ==================================================================
    def all_intervals(self) -> List[Interval]:
        """Every live interval (reads the whole structure)."""
        out: List[Interval] = []

        def rec(head: int) -> None:
            records = self._read_node(head)
            for r in records:
                if r[0] == "LF":
                    out.extend(self._scan_all(r[1]))
                elif r[0] == "L":
                    # R/D/corner hold copies of the same node's intervals
                    out.extend(self._scan_all(r[2]))
                elif r[0] == "C" and r[2] is not None:
                    rec(r[2])

        if self._root is not None:
            rec(self._root)
        return out

    def _destroy(self) -> None:
        def free_list(lid: int) -> None:
            tree = self._lists.pop(lid)
            stack = [tree.root_bid]
            while stack:
                b = stack.pop()
                records = self._store.peek(b)
                if records[0][0] == "I":
                    stack.extend(child for _s, child in records[1:])
                self._store.free(b)

        def rec(head: int) -> None:
            records = self._peek_node(head)
            for r in records:
                if r[0] == "LF":
                    free_list(r[1])
                elif r[0] in ("L", "R"):
                    free_list(r[2])
                elif r[0] == "D":
                    free_list(r[3])
                elif r[0] == "C" and r[2] is not None:
                    rec(r[2])
            if head in self._corner:
                self._corner.pop(head).destroy()
            self._free_node_chain(head)

        if self._root is not None:
            rec(self._root)
        self._root = None
        self._lists.clear()

    def check_invariants(self) -> None:
        """Every interval appears once per required list; counts agree."""
        total = 0

        def rec(head: int, lo: float, hi: float) -> None:
            nonlocal total
            records = self._peek_node(head)
            header = records[0]
            n_children, bounds = header[1], header[2]
            if n_children == 0:
                for r in records:
                    if r[0] == "LF":
                        self._lists[r[1]].check_invariants()
                        for iv in self._scan_all(r[1]):
                            assert lo < iv[0] or lo == NEG_INF
                            assert iv[1] <= hi
                            total += 1
                return
            l_ivs: List[Interval] = []
            r_ivs: List[Interval] = []
            m_ivs: List[Interval] = []
            for r in records:
                if r[0] == "L":
                    self._lists[r[2]].check_invariants()
                    l_ivs.extend(self._scan_all(r[2]))
                elif r[0] == "R":
                    self._lists[r[2]].check_invariants()
                    r_ivs.extend(self._from_rkey(k) for k in self._scan_all(r[2]))
                elif r[0] == "D":
                    # dense lists may drain to empty between rebuilds;
                    # they then cost one wasted scan I/O until rebuilt
                    m_ivs.extend(self._scan_all(r[3]))
                elif r[0] == "S":
                    assert r[3] >= 0
                elif r[0] == "C" and r[2] is not None:
                    rec(r[2], bounds[r[1]], bounds[r[1] + 1])
            if head in self._corner:
                self._corner[head].check_invariants()
                m_ivs.extend(self._corner[head].all_points())
            assert sorted(l_ivs) == sorted(r_ivs), "L/R lists disagree"
            expect_mid = [
                iv for iv in l_ivs
                if self._child_of(bounds, iv[1])
                - self._child_of(bounds, iv[0]) > 1
            ]
            assert sorted(m_ivs) == sorted(expect_mid), "multislab storage wrong"
            total += len(l_ivs)

        if self._root is not None:
            records = self._peek_node(self._root)
            rec(self._root, NEG_INF, INF)
        assert total == self._count, f"{total} != {self._count}"
