"""External-memory substrates the paper's structures are built from.

- :mod:`repro.substrates.blocked_list` -- small blocked sorted sequences
  (the leaf lists ``L_z`` of Section 3.3).
- :mod:`repro.substrates.bplus_tree` -- a classic external B+-tree
  (baseline substrate and the y-lists of Section 4).
- :mod:`repro.substrates.wb_btree` -- the weight-balanced B-tree of
  Arge-Vitter (Section 3.2, Lemmas 2-3).
- :mod:`repro.substrates.interval_tree` -- dynamic interval management
  via the diagonal-corner reduction (Figure 1(a), Section 4 substrate).
"""

from repro.substrates.blocked_list import BlockedSequence
from repro.substrates.bplus_tree import BPlusTree
from repro.substrates.wb_btree import WeightBalancedBTree

__all__ = ["BlockedSequence", "BPlusTree", "WeightBalancedBTree"]

# ExternalIntervalTree and SlabIntervalTree are imported from their own
# modules (repro.substrates.interval_tree / .av_interval_tree) to avoid
# the import cycle with repro.core.
