"""A classic external B+-tree on the simulated block store.

Used three ways in this repository:

- as the substrate for the per-node y-sorted lists of the 4-sided
  structure (Section 4), which need O(log_B N) insertion and O(1 + s/B)
  in-order scans from a found position;
- as the 1-D baseline ("B-tree on x, filter on y") the paper's
  introduction motivates against;
- as the backbone of the z-order baseline.

Design notes.  One node per block; the first record of a block is a
header, so fan-out is ``B - 1``.  Duplicate keys are allowed (the tree is
a multimap).  Deletions are lazy (no merging): the tree stays correct and
search/scan bounds are preserved as long as deletions do not dominate;
callers that delete heavily should rebuild, exactly as the paper's
structures do via global rebuilding.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

# Header layouts (always record 0 of a node block):
#   ("I",)                      internal node; entries: (sep_key, child_bid)
#   ("L", next_leaf_bid|None)   leaf node;     entries: (key, value)
# Internal separator = max key in the child's subtree.


class BPlusTree:
    """External B+-tree multimap with leaf chaining."""

    def __init__(self, store):
        self._store = store
        if store.block_size < 4:
            raise ValueError("B+-tree needs block_size >= 4")
        self._root = store.alloc()
        store.write(self._root, [("L", None)])
        self._count = 0
        self._height = 1
        # the leftmost leaf never changes identity: splits keep the left
        # half in the original block, so head-first scans need no descent
        self._first_leaf = self._root

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    @property
    def height(self) -> int:
        """Number of levels from root to leaves."""
        return self._height

    @property
    def root_bid(self) -> int:
        """Block id of the current root node."""
        return self._root

    def _max_entries(self) -> int:
        return self._store.block_size - 1

    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls, store, pairs: Iterable[Tuple[Any, Any]]
    ) -> "BPlusTree":
        """Build from (key, value) pairs sorted ascending by key.

        Leaves are filled to ~2/3 so subsequent inserts do not split
        immediately.  Costs O(n/B) writes.
        """
        pairs = list(pairs)
        tree = cls(store)
        if not pairs:
            return tree
        keys = [k for k, _ in pairs]
        if keys != sorted(keys):
            raise ValueError("bulk_load requires key-sorted input")
        store.free(tree._root)  # replace the empty root
        cap = tree._max_entries()
        fill = max(1, (2 * cap) // 3)
        # build leaves
        leaves: List[Tuple[int, Any]] = []  # (bid, max_key)
        chunks = [pairs[i:i + fill] for i in range(0, len(pairs), fill)]
        bids = [store.alloc() for _ in chunks]
        for i, chunk in enumerate(chunks):
            nxt = bids[i + 1] if i + 1 < len(bids) else None
            store.write(bids[i], [("L", nxt)] + chunk)
            leaves.append((bids[i], chunk[-1][0]))
        # build internal levels
        level = leaves
        height = 1
        while len(level) > 1:
            nxt_level: List[Tuple[int, Any]] = []
            for i in range(0, len(level), fill):
                group = level[i:i + fill]
                bid = store.alloc()
                store.write(
                    bid, [("I",)] + [(mx, b) for b, mx in group]
                )
                nxt_level.append((bid, group[-1][1]))
            level = nxt_level
            height += 1
        tree._root = level[0][0]
        tree._count = len(pairs)
        tree._height = height
        tree._first_leaf = bids[0]
        return tree

    # ------------------------------------------------------------------
    def _descend(self, key: Any) -> List[Tuple[int, int, List[Any]]]:
        """Path root->leaf for ``key``: list of (bid, child_slot, records).

        ``child_slot`` is the index (into the entry list, 0-based) of the
        child taken; -1 at the leaf.
        """
        path: List[Tuple[int, int, List[Any]]] = []
        bid = self._root
        while True:
            records = list(self._store.read(bid).records)
            header = records[0]
            if header[0] == "L":
                path.append((bid, -1, records))
                return path
            entries = records[1:]
            slot = len(entries) - 1
            for i, (sep, child) in enumerate(entries):
                if key <= sep:
                    slot = i
                    break
            path.append((bid, slot, records))
            bid = entries[slot][1]

    def insert(self, key: Any, value: Any) -> None:
        """Insert a (key, value) pair in O(height) I/Os."""
        path = self._descend(key)
        bid, _, records = path[-1]
        entries = records[1:]
        # position among leaf entries (ascending by key; stable for dups)
        pos = len(entries)
        for i, (k, _) in enumerate(entries):
            if k > key:
                pos = i
                break
        entries.insert(pos, (key, value))
        self._count += 1
        self._write_and_split(path, len(path) - 1, records[0], entries)

    def _write_and_split(
        self, path, depth: int, header: Tuple, entries: List[Any]
    ) -> None:
        bid = path[depth][0]
        cap = self._max_entries()
        if len(entries) <= cap:
            self._store.write(bid, [header] + entries)
            if depth > 0:
                self._fix_separator(path, depth, entries)
            return
        # split
        half = len(entries) // 2
        left, right = entries[:half], entries[half:]
        right_bid = self._store.alloc()
        if header[0] == "L":
            next_leaf = header[1]
            self._store.write(right_bid, [("L", next_leaf)] + right)
            self._store.write(bid, [("L", right_bid)] + left)
            left_max, right_max = left[-1][0], right[-1][0]
        else:
            self._store.write(right_bid, [("I",)] + right)
            self._store.write(bid, [("I",)] + left)
            left_max, right_max = left[-1][0], right[-1][0]
        if depth == 0:
            new_root = self._store.alloc()
            self._store.write(
                new_root,
                [("I",), (left_max, bid), (right_max, right_bid)],
            )
            self._root = new_root
            self._height += 1
            return
        # install into parent
        pbid, pslot, precords = path[depth - 1]
        pheader, pentries = precords[0], precords[1:]
        pentries[pslot] = (left_max, bid)
        pentries.insert(pslot + 1, (right_max, right_bid))
        self._write_and_split(path, depth - 1, pheader, pentries)

    def _fix_separator(self, path, depth: int, entries: List[Any]) -> None:
        """Propagate a changed subtree max up the recorded path."""
        node_max = entries[-1][0] if entries else None
        child_bid = path[depth][0]
        for d in range(depth - 1, -1, -1):
            pbid, pslot, precords = path[d]
            pentries = precords[1:]
            sep, cb = pentries[pslot]
            if node_max is None or sep == node_max or cb != child_bid:
                return
            if node_max > sep or pslot == len(pentries) - 1:
                pentries[pslot] = (node_max, cb)
                self._store.write(pbid, [precords[0]] + pentries)
                path[d] = (pbid, pslot, [precords[0]] + pentries)
                node_max = pentries[-1][0]
                child_bid = pbid
            else:
                return

    # ------------------------------------------------------------------
    def delete(self, key: Any, value: Any) -> bool:
        """Remove one (key, value) pair; True if found.  Lazy (no merges).

        With duplicate keys spilling across leaves, follows the leaf
        chain until the key range is exhausted.
        """
        path = self._descend(key)
        bid, _, records = path[-1]
        while True:
            header, entries = records[0], records[1:]
            changed = False
            for i, (k, v) in enumerate(entries):
                if k == key and v == value:
                    entries.pop(i)
                    changed = True
                    break
            if changed:
                self._store.write(bid, [header] + entries)
                self._count -= 1
                return True
            if entries and entries[-1][0] > key:
                return False
            nxt = header[1]
            if nxt is None:
                return False
            bid = nxt
            records = list(self._store.read(bid).records)

    # ------------------------------------------------------------------
    def search(self, key: Any) -> List[Any]:
        """All values stored under ``key``."""
        vals, _ = self.range_scan(key, key)
        return [v for _, v in vals]

    def range_scan(self, lo: Any, hi: Any) -> Tuple[List[Tuple[Any, Any]], int]:
        """All (key, value) with lo <= key <= hi, plus blocks read."""
        out: List[Tuple[Any, Any]] = []
        reads = 0
        path = self._descend(lo)
        reads += len(path)
        bid, _, records = path[-1]
        while True:
            header, entries = records[0], records[1:]
            done = False
            for k, v in entries:
                if k < lo:
                    continue
                if k > hi:
                    done = True
                    break
                out.append((k, v))
            if done:
                break
            nxt = header[1]
            if nxt is None:
                break
            bid = nxt
            records = list(self._store.read(bid).records)
            reads += 1
        return out, reads

    def scan_from(
        self, lo: Any, keep_going: Callable[[Any, Any], bool]
    ) -> Tuple[List[Tuple[Any, Any]], int]:
        """Scan pairs with key >= lo while ``keep_going(key, value)``.

        Stops at the first pair for which ``keep_going`` is False.
        Returns (pairs kept, blocks read including the descent).
        """
        out: List[Tuple[Any, Any]] = []
        reads = 0
        path = self._descend(lo)
        reads += len(path)
        bid, _, records = path[-1]
        while True:
            header, entries = records[0], records[1:]
            for k, v in entries:
                if k < lo:
                    continue
                if not keep_going(k, v):
                    return out, reads
                out.append((k, v))
            nxt = header[1]
            if nxt is None:
                return out, reads
            bid = nxt
            records = list(self._store.read(bid).records)
            reads += 1

    def prefix_scan(
        self, keep_going: Callable[[Any, Any], bool]
    ) -> Tuple[List[Tuple[Any, Any]], int]:
        """Scan pairs in key order FROM THE HEAD while ``keep_going``.

        No descent: the leftmost leaf's identity is stable, so this costs
        O(1 + prefix/B) I/Os -- the access pattern of the Arge-Vitter
        slab lists, whose stabbing scans always start at the list head.
        Returns (pairs kept, blocks read).
        """
        out: List[Tuple[Any, Any]] = []
        reads = 0
        bid: Optional[int] = self._first_leaf
        while bid is not None:
            records = list(self._store.read(bid).records)
            reads += 1
            header, entries = records[0], records[1:]
            for k, v in entries:
                if not keep_going(k, v):
                    return out, reads
                out.append((k, v))
            bid = header[1]
        return out, reads

    def items(self) -> List[Tuple[Any, Any]]:
        """Every pair in key order (reads every node once)."""
        out: List[Tuple[Any, Any]] = []
        bid = self._root
        # descend to the leftmost leaf
        while True:
            records = list(self._store.read(bid).records)
            header = records[0]
            if header[0] == "L":
                break
            bid = records[1][1]
        # walk the leaf chain
        while True:
            header, entries = records[0], records[1:]
            out.extend(entries)
            if header[1] is None:
                return out
            records = list(self._store.read(header[1]).records)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Key order, separator accuracy, leaf chain completeness."""
        def walk(bid: int, lo, hi) -> Tuple[int, List[int]]:
            records = self._store.peek(bid)
            header, entries = records[0], records[1:]
            if header[0] == "L":
                keys = [k for k, _ in entries]
                assert keys == sorted(keys), "leaf keys out of order"
                for k in keys:
                    # duplicates may span children, so the lower bound is
                    # non-strict; separators are upper bounds (possibly
                    # stale-high after lazy deletes)
                    assert lo is None or k >= lo, "leaf key below range"
                    assert hi is None or k <= hi, "leaf key above separator"
                return len(entries), [bid]
            assert entries, "empty internal node"
            seps = [s for s, _ in entries]
            assert seps == sorted(seps), "separators out of order"
            total, leaves = 0, []
            prev = lo
            for sep, child in entries:
                assert hi is None or sep <= hi, "separator above parent bound"
                t, ls = walk(child, prev, sep)
                total += t
                leaves.extend(ls)
                prev = sep
            return total, leaves

        total, leaves = walk(self._root, None, None)
        assert total == self._count, f"count mismatch {total} != {self._count}"
        # leaf chain visits exactly the leaves, in order
        chain = []
        bid: Optional[int] = leaves[0] if leaves else None
        while bid is not None:
            chain.append(bid)
            records = self._store.peek(bid)
            bid = records[0][1]
        assert chain == leaves, "leaf chain disagrees with tree order"
