"""The weight-balanced B-tree of Arge-Vitter (Section 3.2, Lemmas 2-3).

Unlike an ordinary B-tree, balance is imposed on *weights*: the weight of
a leaf is the number of keys in it; the weight of an internal node is the
sum of its children's weights.  With branching parameter ``a`` and leaf
parameter ``k``:

- a leaf holds between ``k`` and ``2k - 1`` keys (splits at ``2k``);
- a non-root internal node at level ``l`` has weight in
  ``[a^l k / 4, 2 a^l k]`` (splits at ``2 a^l k``);
- consequently fan-out stays within ``[a/4, 4a]`` and height is
  ``O(log_a (N/k))``.

Lemma 2, which the external priority search tree's update analysis leans
on, states that after a node at level ``l`` splits, ``Omega(a^l k)``
inserts must pass through a half before it splits again.  This module
records per-node split history so the experiments can verify that claim
directly.

Storage layout (one logical node = 1 header block, leaves also own data
blocks):

- internal block: ``[("I", level, weight), (sep, child_bid, child_weight), ...]``
- leaf block:     ``[("L", weight, data_bids)]`` with key runs in data blocks.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class WeightBalancedBTree:
    """Ordered key set with weight-balanced rebalancing (inserts only).

    The paper performs deletions by lazy global rebuilding; this
    standalone substrate therefore exposes inserts, searches and bulk
    rebuild, which is all Lemmas 2-3 require.  The external priority
    search tree embeds its own copy of this balancing logic because its
    splits must also reorganize auxiliary structures.
    """

    def __init__(self, store, a: Optional[int] = None, k: Optional[int] = None):
        B = store.block_size
        self._store = store
        self.a = a if a is not None else max(2, B // 8)
        self.k = k if k is not None else max(2, B // 2)
        if self.a < 2:
            raise ValueError("branching parameter a must be >= 2")
        if 4 * self.a + 1 > B:
            raise ValueError("4a + 1 must fit in a block; lower a")
        self._root = self._new_leaf([])
        self._count = 0
        self.splits = 0                     # total splits performed
        self.split_log: List[Tuple[int, int]] = []  # (level, weight at split)

    # ------------------------------------------------------------------
    # node helpers
    # ------------------------------------------------------------------
    def _new_leaf(self, keys: List[Any]) -> int:
        store = self._store
        B = store.block_size
        data_bids = []
        for lo in range(0, len(keys), B):
            bid = store.alloc()
            store.write(bid, keys[lo:lo + B])
            data_bids.append(bid)
        hdr = store.alloc()
        store.write(hdr, [("L", len(keys), tuple(data_bids))])
        return hdr

    def _read_leaf_keys(self, header: Tuple) -> List[Any]:
        keys: List[Any] = []
        for bid in header[2]:
            keys.extend(self._store.read(bid).records)
        return keys

    def _rewrite_leaf(self, hdr_bid: int, old_header: Tuple, keys: List[Any]) -> None:
        store = self._store
        for bid in old_header[2]:
            store.free(bid)
        B = store.block_size
        data_bids = []
        for lo in range(0, len(keys), B):
            bid = store.alloc()
            store.write(bid, keys[lo:lo + B])
            data_bids.append(bid)
        store.write(hdr_bid, [("L", len(keys), tuple(data_bids))])

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def height(self) -> int:
        """Number of levels from root to leaves."""
        h, bid = 1, self._root
        while True:
            records = self._store.peek(bid)
            if records[0][0] == "L":
                return h
            bid = records[1][1]
            h += 1

    def level_capacity(self, level: int) -> int:
        """Split threshold ``2 a^level k`` (level 0 = leaves)."""
        return 2 * (self.a ** level) * self.k

    # ------------------------------------------------------------------
    def search(self, key: Any) -> bool:
        """Membership test in O(height + k/B) I/Os."""
        bid = self._root
        while True:
            records = list(self._store.read(bid).records)
            header = records[0]
            if header[0] == "L":
                return key in self._read_leaf_keys(header)
            entries = records[1:]
            nxt = entries[-1][1]
            for sep, child, _w in entries:
                if key <= sep:
                    nxt = child
                    break
            bid = nxt

    def range_count(self, lo: Any, hi: Any) -> int:
        """Number of keys in [lo, hi] (walks the covered subtrees)."""
        def rec(bid: int) -> int:
            records = list(self._store.read(bid).records)
            header = records[0]
            if header[0] == "L":
                return sum(1 for key in self._read_leaf_keys(header) if lo <= key <= hi)
            total = 0
            prev = None
            for sep, child, _w in records[1:]:
                if (prev is None or prev <= hi) and lo <= sep:
                    total += rec(child)
                elif sep >= lo and prev is not None and prev > hi:
                    break
                prev = sep
            return total
        return rec(self._root)

    # ------------------------------------------------------------------
    def insert(self, key: Any) -> None:
        """Insert a key; splits every node whose weight reaches capacity."""
        # descend, recording the path and bumping weights
        path: List[Tuple[int, int, List[Any]]] = []  # (bid, slot, records)
        bid = self._root
        while True:
            records = list(self._store.read(bid).records)
            header = records[0]
            if header[0] == "L":
                path.append((bid, -1, records))
                break
            entries = records[1:]
            slot = len(entries) - 1
            for i, (sep, child, w) in enumerate(entries):
                if key <= sep:
                    slot = i
                    break
            # bump this child's weight and our own
            sep, child, w = entries[slot]
            if slot == len(entries) - 1 and key > sep:
                sep = key
            entries[slot] = (sep, child, w + 1)
            new_header = ("I", header[1], header[2] + 1)
            self._store.write(bid, [new_header] + entries)
            path.append((bid, slot, [new_header] + entries))
            bid = child

        # leaf insert
        leaf_bid, _, leaf_records = path[-1]
        lheader = leaf_records[0]
        keys = self._read_leaf_keys(lheader)
        pos = len(keys)
        for i, existing in enumerate(keys):
            if existing > key:
                pos = i
                break
        keys.insert(pos, key)
        self._count += 1
        self._rewrite_leaf(leaf_bid, lheader, keys)

        # split pass, bottom-up
        if len(keys) >= 2 * self.k:
            self._split_leaf(path)
        self._split_heavy_internals(path)

    def _split_leaf(self, path) -> None:
        leaf_bid, _, _ = path[-1]
        records = list(self._store.read(leaf_bid).records)
        header = records[0]
        keys = self._read_leaf_keys(header)
        half = len(keys) // 2
        left_keys, right_keys = keys[:half], keys[half:]
        self._rewrite_leaf(leaf_bid, header, left_keys)
        right_bid = self._new_leaf(right_keys)
        self.splits += 1
        self.split_log.append((0, len(keys)))
        self._install_sibling(
            path, len(path) - 1,
            leaf_bid, left_keys[-1], len(left_keys),
            right_bid, right_keys[-1], len(right_keys),
        )

    def _install_sibling(
        self, path, depth: int,
        left_bid: int, left_max: Any, left_w: int,
        right_bid: int, right_max: Any, right_w: int,
    ) -> None:
        """Register a split of path[depth] with its parent (or grow a root)."""
        if depth == 0:
            # split node was the root: create a new root one level up
            old = self._store.peek(left_bid)
            level = 1 if old[0][0] == "L" else old[0][1] + 1
            root = self._store.alloc()
            self._store.write(root, [
                ("I", level, left_w + right_w),
                (left_max, left_bid, left_w),
                (right_max, right_bid, right_w),
            ])
            self._root = root
            return
        pbid, pslot, precords = path[depth - 1]
        pheader, pentries = precords[0], precords[1:]
        old_sep = pentries[pslot][0]
        # the split node keeps the parent's old separator on its right half
        pentries[pslot] = (left_max, left_bid, left_w)
        pentries.insert(pslot + 1, (max(old_sep, right_max), right_bid, right_w))
        self._store.write(pbid, [pheader] + pentries)
        path[depth - 1] = (pbid, pslot, [pheader] + pentries)

    def _split_heavy_internals(self, path) -> None:
        """Walk the recorded path from the bottom, splitting heavy nodes."""
        for depth in range(len(path) - 2, -1, -1):
            bid = path[depth][0]
            records = list(self._store.read(bid).records)
            header, entries = records[0], records[1:]
            level, weight = header[1], header[2]
            if weight < self.level_capacity(level):
                continue
            # choose the child boundary closest to half the weight
            target = weight // 2
            acc, cut = 0, 1
            best_gap = None
            for i, (_s, _c, w) in enumerate(entries[:-1]):
                acc += w
                gap = abs(acc - target)
                if best_gap is None or gap < best_gap:
                    best_gap, cut = gap, i + 1
            left_e, right_e = entries[:cut], entries[cut:]
            lw = sum(w for _s, _c, w in left_e)
            rw = weight - lw
            self._store.write(bid, [("I", level, lw)] + left_e)
            rbid = self._store.alloc()
            self._store.write(rbid, [("I", level, rw)] + right_e)
            self.splits += 1
            self.split_log.append((level, weight))
            self._install_sibling(
                path, depth,
                bid, left_e[-1][0], lw,
                rbid, right_e[-1][0], rw,
            )

    # ------------------------------------------------------------------
    def keys(self) -> List[Any]:
        """All keys in order (walks everything)."""
        out: List[Any] = []

        def rec(bid: int) -> None:
            records = list(self._store.read(bid).records)
            header = records[0]
            if header[0] == "L":
                out.extend(self._read_leaf_keys(header))
                return
            for _s, child, _w in records[1:]:
                rec(child)

        rec(self._root)
        return out

    def check_invariants(self) -> None:
        """Weight bounds, separator order, weight bookkeeping."""
        a, k = self.a, self.k

        def rec(bid: int, is_root: bool, lo, hi) -> Tuple[int, int]:
            records = self._store.peek(bid)
            header = records[0]
            if header[0] == "L":
                keys = []
                for dbid in header[2]:
                    keys.extend(self._store.peek(dbid))
                assert keys == sorted(keys), "leaf keys out of order"
                assert len(keys) == header[1], "leaf weight mismatch"
                if not is_root:
                    assert k <= len(keys) <= 2 * k - 1, (
                        f"leaf weight {len(keys)} outside [{k}, {2*k-1}]"
                    )
                for key in keys:
                    assert lo is None or key >= lo
                    assert hi is None or key <= hi
                return 0, len(keys)
            level, weight = header[1], header[2]
            entries = records[1:]
            # fan-out in [a/4, 4a] holds for a >= 8 (the paper's regime
            # a = Theta(B)); for tiny a only the trivial bounds apply
            assert len(entries) >= 1, "internal node with no children"
            assert len(entries) <= 4 * a + 1, "fan-out too large"
            if a >= 8 and not is_root:
                assert len(entries) >= a // 4, "fan-out too small"
            total = 0
            prev = lo
            child_levels = set()
            for sep, child, w in entries:
                clevel, cweight = rec(child, False, prev, sep)
                child_levels.add(clevel)
                assert cweight == w, "stored child weight stale"
                total += cweight
                prev = sep
            assert child_levels == {level - 1}, "uneven child levels"
            assert total == weight, "internal weight mismatch"
            if not is_root:
                cap = self.level_capacity(level)
                assert weight < cap, f"overweight internal node {weight} >= {cap}"
                assert weight >= cap // 8, (
                    f"underweight internal node {weight} < {cap // 8}"
                )
            return level, total

        _, total = rec(self._root, True, None, None)
        assert total == self._count, "tree count mismatch"
