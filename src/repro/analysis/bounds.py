"""The paper's asymptotic bounds as numeric reference curves.

Experiments compare measured I/O counts against these shapes (fitted
constants, not absolute values -- see EXPERIMENTS.md for methodology).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def log_b(n: int, B: int) -> float:
    """``log_B N``, clamped to >= 1."""
    if n <= 1:
        return 1.0
    return max(1.0, math.log(n) / math.log(max(2, B)))


def pst_query_bound(n: int, B: int, t_points: int) -> float:
    """Theorem 6 query shape: ``log_B N + T/B``."""
    return log_b(n, B) + t_points / B


def pst_update_bound(n: int, B: int) -> float:
    """Theorem 6 update shape: ``log_B N``."""
    return log_b(n, B)


def pst_space_bound(n: int, B: int) -> float:
    """Theorem 6 space shape: ``N/B`` blocks."""
    return n / B


def range_tree_space_bound(n: int, B: int) -> float:
    """Theorem 7 space shape: ``(N/B) log(N/B) / log log_B N`` blocks."""
    blocks = n / B
    if blocks <= 2:
        return max(1.0, blocks)
    denom = max(1.0, math.log(max(math.e, log_b(n, B))))
    return blocks * math.log(blocks) / denom


def range_tree_update_bound(n: int, B: int) -> float:
    """Theorem 7 update shape: ``log_B N * log(N/B) / log log_B N``."""
    blocks = max(2.0, n / B)
    denom = max(1.0, math.log(max(math.e, log_b(n, B))))
    return log_b(n, B) * math.log(blocks) / denom


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ~ a*x + b`` (pure Python; no numpy needed).

    Used to check that measured cost grows like a bound: fit measured
    cost against the bound's values and inspect the slope (the hidden
    constant) and intercept.
    """
    n = len(xs)
    if n == 0 or n != len(ys):
        raise ValueError("need equal, non-empty sequences")
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        return 0.0, my
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    a = sxy / sxx
    return a, my - a * mx


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation; 1.0 means the measured curve tracks the
    bound exactly up to affine scaling."""
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    sy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if sx == 0 or sy == 0:
        return 0.0
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / (sx * sy)
