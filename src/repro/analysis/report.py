"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned ASCII table (the benches print these so the
    harness output reads like the rows a paper would report)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)
