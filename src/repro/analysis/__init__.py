"""Bound formulas and reporting helpers for the experiment suite."""

from repro.analysis.bounds import (
    correlation,
    fit_linear,
    log_b,
    pst_query_bound,
    pst_space_bound,
    pst_update_bound,
    range_tree_space_bound,
    range_tree_update_bound,
)
from repro.analysis.report import format_table

__all__ = [
    "correlation",
    "fit_linear",
    "log_b",
    "pst_query_bound",
    "pst_update_bound",
    "pst_space_bound",
    "range_tree_space_bound",
    "range_tree_update_bound",
    "format_table",
]
