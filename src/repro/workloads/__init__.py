"""Point-set and query generators for the experiment suite."""

from repro.workloads.generators import (
    uniform_points,
    clustered_points,
    diagonal_points,
    skyline_points,
    grid_points,
)
from repro.workloads.queries import (
    three_sided_queries,
    four_sided_queries,
    aspect_sweep_queries,
    thin_slab_queries,
    stabbing_points,
)

__all__ = [
    "uniform_points",
    "clustered_points",
    "diagonal_points",
    "skyline_points",
    "grid_points",
    "three_sided_queries",
    "four_sided_queries",
    "aspect_sweep_queries",
    "thin_slab_queries",
    "stabbing_points",
]
