"""Operation traces: reproducible mixed insert/delete/query workloads.

A *trace* is a list of operations ``("ins", p) | ("del", p) | ("q3",
(a, b, c)) | ("q4", (a, b, c, d))`` generated with a fixed seed and
mix.  ``replay`` drives any structure through a trace via a small
adapter and returns per-kind I/O statistics, so sustained
mixed-workload behaviour (the regime real systems live in) can be
compared across structures with one line.

4-sided queries are opt-in via ``q4_weight``; at the default weight of
zero the generated trace is byte-identical to what earlier versions
produced for the same seed (the RNG consumes exactly the same draws),
so committed baselines never churn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

Point = Tuple[float, float]
Op = Tuple[str, object]


def generate_trace(
    n_ops: int,
    *,
    mix: Tuple[float, float, float] = (0.45, 0.25, 0.30),
    seed: int = 0,
    extent: float = 1000.0,
    query_span: float = 0.3,
    query_y_floor: float = 0.0,
    initial: Sequence[Point] = (),
    q4_weight: float = 0.0,
) -> List[Op]:
    """Build a trace of ``n_ops`` operations.

    ``mix`` gives (insert, delete, query) weights.  Deletes target points
    known to be live at that moment; the generated trace is therefore
    *self-consistent* (every delete hits).  Queries are 3-sided with an
    x-span of ``query_span`` of the extent and a threshold uniform in
    ``[query_y_floor * extent, extent]`` -- raise the floor toward 1 for
    adversarial wide-slab/low-output queries (the paper's hard regime).

    ``q4_weight`` adds a fourth mix component of 4-sided queries
    ``("q4", (a, b, c, d))`` whose x- and y-spans are both
    ``query_span`` of the extent.  At the default 0.0 the RNG draw
    sequence is untouched, so fixed-seed 3-sided traces stay
    byte-identical.
    """
    w_ins, w_del, w_q = mix
    total = w_ins + w_del + w_q + q4_weight
    rng = random.Random(seed)
    live = set(initial)
    trace: List[Op] = []
    while len(trace) < n_ops:
        r = rng.random() * total
        if r < w_ins or not live:
            p = (rng.uniform(0, extent), rng.uniform(0, extent))
            if p in live:
                continue
            live.add(p)
            trace.append(("ins", p))
        elif r < w_ins + w_del:
            p = rng.choice(sorted(live))
            live.discard(p)
            trace.append(("del", p))
        elif r < w_ins + w_del + w_q:
            a = rng.uniform(0, extent * (1 - query_span))
            b = a + rng.uniform(0, extent * query_span)
            c = rng.uniform(query_y_floor * extent, extent)
            trace.append(("q3", (a, b, c)))
        else:
            a = rng.uniform(0, extent * (1 - query_span))
            b = a + rng.uniform(0, extent * query_span)
            c = rng.uniform(0, extent * (1 - query_span))
            d = c + rng.uniform(0, extent * query_span)
            trace.append(("q4", (a, b, c, d)))
    return trace


@dataclass
class ReplayResult:
    """Per-operation-kind I/O totals and counts from a replay."""

    ios: Dict[str, int] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    answers: List[Tuple[int, int]] = field(default_factory=list)
    # answers: (trace index, result size) per query, for cross-checking

    def mean_io(self, kind: str) -> float:
        """Mean I/Os per operation of the given kind."""
        n = self.counts.get(kind, 0)
        return self.ios.get(kind, 0) / n if n else 0.0

    @property
    def total_ios(self) -> int:
        """Sum of I/Os across all operation kinds."""
        return sum(self.ios.values())


def replay(
    trace: Sequence[Op],
    store,
    *,
    insert: Callable[[Point], None],
    delete: Callable[[Point], object],
    query3: Callable[[float, float, float], list],
    query4: Optional[Callable[[float, float, float, float], list]] = None,
    verify_against: Optional[ReplayResult] = None,
) -> ReplayResult:
    """Drive a structure through a trace, charging I/O per op kind.

    ``store`` must expose ``.stats`` (physical counters).  If
    ``verify_against`` is given, each query's result size must match the
    earlier replay's (cheap cross-structure consistency check; full
    answer comparison belongs in the tests).  Traces carrying ``q4``
    operations need the ``query4`` adapter; without one a ``q4`` op
    raises so a mismatched trace/structure pairing fails loudly.
    """
    result = ReplayResult()
    qi = 0
    for idx, (kind, arg) in enumerate(trace):
        before = store.stats.copy()
        if kind == "ins":
            insert(arg)
        elif kind == "del":
            delete(arg)
        else:
            if kind == "q4":
                if query4 is None:
                    raise ValueError(
                        f"trace op {idx} is 4-sided but no query4 adapter given"
                    )
                got = query4(*arg)
            else:
                got = query3(*arg)
            result.answers.append((idx, len(got)))
            if verify_against is not None:
                _, expect = verify_against.answers[qi]
                if len(got) != expect:
                    raise AssertionError(
                        f"query {idx}: got {len(got)} results, expected {expect}"
                    )
            qi += 1
        delta = store.stats - before
        result.ios[kind] = result.ios.get(kind, 0) + delta.ios
        result.counts[kind] = result.counts.get(kind, 0) + 1
    return result
