"""Synthetic point sets.

All generators take an explicit ``seed`` and return *distinct* points,
which every structure in the library assumes.  Coordinates live in
``[0, extent)`` so different structures see identical domains.
"""

from __future__ import annotations

import random
from typing import List, Tuple

Point = Tuple[float, float]


def _dedupe(pts: List[Point]) -> List[Point]:
    return list(dict.fromkeys(pts))


def uniform_points(n: int, seed: int = 0, extent: float = 1_000_000.0) -> List[Point]:
    """Independent uniform points -- the benign case for the baselines."""
    rng = random.Random(seed)
    out: set = set()
    while len(out) < n:
        out.add((rng.uniform(0, extent), rng.uniform(0, extent)))
    return list(out)


def clustered_points(
    n: int, seed: int = 0, clusters: int = 16, spread: float = 0.01,
    extent: float = 1_000_000.0,
) -> List[Point]:
    """Gaussian clusters -- the skew that degrades grids and R-trees."""
    rng = random.Random(seed)
    centers = [
        (rng.uniform(0, extent), rng.uniform(0, extent)) for _ in range(clusters)
    ]
    out: set = set()
    while len(out) < n:
        cx, cy = centers[rng.randrange(clusters)]
        out.add((
            rng.gauss(cx, spread * extent),
            rng.gauss(cy, spread * extent),
        ))
    return list(out)


def diagonal_points(
    n: int, seed: int = 0, jitter: float = 0.001, extent: float = 1_000_000.0
) -> List[Point]:
    """Points hugging the diagonal ``y = x`` -- adversarial for z-order
    and grid cells, and the natural shape of interval endpoints."""
    rng = random.Random(seed)
    out: set = set()
    while len(out) < n:
        t = rng.uniform(0, extent)
        out.add((t, min(extent, max(0.0, t + rng.gauss(0, jitter * extent)))))
    return list(out)


def skyline_points(n: int, seed: int = 0, extent: float = 1_000_000.0) -> List[Point]:
    """Anti-correlated points (x + y ~ extent): maximal overlap pressure
    for 3-sided queries."""
    rng = random.Random(seed)
    out: set = set()
    while len(out) < n:
        x = rng.uniform(0, extent)
        noise = rng.gauss(0, 0.02 * extent)
        out.add((x, min(extent, max(0.0, extent - x + noise))))
    return list(out)


def grid_points(side: int, extent: float = 1_000_000.0) -> List[Point]:
    """A deterministic side x side lattice."""
    step = extent / side
    return [
        (i * step, j * step) for i in range(side) for j in range(side)
    ]
