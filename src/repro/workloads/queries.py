"""Query generators for the experiment suite."""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.geometry import FourSidedQuery, Point, ThreeSidedQuery


def three_sided_queries(
    points: Sequence[Point],
    n: int,
    seed: int = 0,
    target_frac: float = 0.01,
) -> List[ThreeSidedQuery]:
    """3-sided queries whose expected output is ~``target_frac`` of the
    points: the x-interval spans ~sqrt(frac) of the x-extent and c sits
    at the matching y-quantile."""
    rng = random.Random(seed)
    xs = sorted(p[0] for p in points)
    ys = sorted(p[1] for p in points)
    n_pts = len(points)
    span = max(1, int(n_pts * target_frac ** 0.5))
    out: List[ThreeSidedQuery] = []
    for _ in range(n):
        i = rng.randrange(max(1, n_pts - span))
        a, b = xs[i], xs[min(n_pts - 1, i + span)]
        c = ys[int(n_pts * (1.0 - target_frac ** 0.5))]
        out.append(ThreeSidedQuery(a, b, c))
    return out


def four_sided_queries(
    points: Sequence[Point],
    n: int,
    seed: int = 0,
    target_frac: float = 0.01,
) -> List[FourSidedQuery]:
    """Squarish rectangles with ~``target_frac`` expected selectivity."""
    rng = random.Random(seed)
    xs = sorted(p[0] for p in points)
    ys = sorted(p[1] for p in points)
    n_pts = len(points)
    span = max(1, int(n_pts * target_frac ** 0.5))
    out: List[FourSidedQuery] = []
    for _ in range(n):
        i = rng.randrange(max(1, n_pts - span))
        j = rng.randrange(max(1, n_pts - span))
        out.append(FourSidedQuery(
            xs[i], xs[min(n_pts - 1, i + span)],
            ys[j], ys[min(n_pts - 1, j + span)],
        ))
    return out


def aspect_sweep_queries(
    points: Sequence[Point],
    per_aspect: int,
    aspects: Sequence[float] = (1.0, 4.0, 16.0, 64.0),
    seed: int = 0,
    target_frac: float = 0.01,
) -> List[Tuple[float, FourSidedQuery]]:
    """Rectangles of fixed area but varying width/height ratio -- the
    Fibonacci lower bound's worst case.  Returns (aspect, query) pairs."""
    rng = random.Random(seed)
    xs = sorted(p[0] for p in points)
    ys = sorted(p[1] for p in points)
    n_pts = len(points)
    out: List[Tuple[float, FourSidedQuery]] = []
    for aspect in aspects:
        x_span = max(1, int(n_pts * (target_frac * aspect) ** 0.5))
        y_span = max(1, int(n_pts * (target_frac / aspect) ** 0.5))
        for _ in range(per_aspect):
            i = rng.randrange(max(1, n_pts - x_span))
            j = rng.randrange(max(1, n_pts - y_span))
            out.append((aspect, FourSidedQuery(
                xs[i], xs[min(n_pts - 1, i + x_span)],
                ys[j], ys[min(n_pts - 1, j + y_span)],
            )))
    return out


def thin_slab_queries(
    points: Sequence[Point],
    n: int,
    seed: int = 0,
    x_frac: float = 0.5,
    out_frac: float = 0.001,
) -> List[FourSidedQuery]:
    """Adversarial queries for filter-style baselines: a wide x-slab
    (``x_frac`` of all points) but a y-range matching only ``out_frac``.
    A B-tree on x must scan the whole slab; an optimal structure pays
    only for the output."""
    rng = random.Random(seed)
    xs = sorted(p[0] for p in points)
    ys = sorted(p[1] for p in points)
    n_pts = len(points)
    x_span = max(1, int(n_pts * x_frac))
    y_span = max(1, int(n_pts * out_frac))
    out: List[FourSidedQuery] = []
    for _ in range(n):
        i = rng.randrange(max(1, n_pts - x_span))
        j = rng.randrange(max(1, n_pts - y_span))
        out.append(FourSidedQuery(
            xs[i], xs[min(n_pts - 1, i + x_span)],
            ys[j], ys[min(n_pts - 1, j + y_span)],
        ))
    return out


def stabbing_points(
    intervals: Sequence[Tuple[float, float]], n: int, seed: int = 0
) -> List[float]:
    """Stab positions drawn from stored interval endpoints' span."""
    rng = random.Random(seed)
    lo = min(i[0] for i in intervals)
    hi = max(i[1] for i in intervals)
    return [rng.uniform(lo, hi) for _ in range(n)]
