"""Points and the query families of Figure 1 of the paper.

The paper's taxonomy of planar orthogonal queries (Figure 1):

- *diagonal corner* -- ``x <= q <= y`` for a corner ``(q, q)`` on ``x = y``
  (equivalent to interval stabbing);
- *2-sided* -- a quadrant ``x <= b, y >= c``;
- *3-sided* -- a slab open on one side, canonically ``a <= x <= b, y >= c``;
- *4-sided* -- a full rectangle ``a <= x <= b, c <= y <= d``.

All bounds are closed.  Points are plain ``(x, y)`` tuples throughout the
library for speed; this module supplies the query objects, containment
tests, and the coordinate transforms that turn left-/right-open 3-sided
queries into the canonical up-open form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

Point = Tuple[float, float]

INF = float("inf")
NEG_INF = float("-inf")


@dataclass(frozen=True)
class Rect:
    """Closed axis-parallel rectangle ``[x_lo, x_hi] x [y_lo, y_hi]``."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.x_lo > self.x_hi or self.y_lo > self.y_hi:
            raise ValueError(f"empty rectangle: {self}")

    def contains(self, p: Point) -> bool:
        """True iff ``p`` lies inside the closed rectangle."""
        x, y = p
        return self.x_lo <= x <= self.x_hi and self.y_lo <= y <= self.y_hi

    def intersects(self, other: "Rect") -> bool:
        """True iff the two closed rectangles share at least one point."""
        return not (
            other.x_hi < self.x_lo
            or other.x_lo > self.x_hi
            or other.y_hi < self.y_lo
            or other.y_lo > self.y_hi
        )

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.x_hi - self.x_lo

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.y_hi - self.y_lo

    @property
    def area(self) -> float:
        """``width * height``."""
        return self.width * self.height

    def filter(self, points: Iterable[Point]) -> List[Point]:
        """All points inside the rectangle (brute force)."""
        return [p for p in points if self.contains(p)]


@dataclass(frozen=True)
class ThreeSidedQuery:
    """Canonical 3-sided query ``a <= x <= b, y >= c`` (open upward).

    The paper's Section 2.2.1 sweeps upward, so "up-open" is the canonical
    orientation here; other orientations are produced by the transforms at
    the bottom of this module.
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if self.a > self.b:
            raise ValueError(f"empty x-interval in {self}")

    def contains(self, p: Point) -> bool:
        """True iff ``p`` satisfies the query."""
        x, y = p
        return self.a <= x <= self.b and y >= self.c

    def filter(self, points: Iterable[Point]) -> List[Point]:
        """All satisfying points, in input order (brute force)."""
        return [p for p in points if self.contains(p)]

    def as_rect(self) -> Rect:
        """The query region as a rectangle unbounded above."""
        return Rect(self.a, self.b, self.c, INF)


@dataclass(frozen=True)
class FourSidedQuery:
    """General range query ``a <= x <= b, c <= y <= d``."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if self.a > self.b or self.c > self.d:
            raise ValueError(f"empty query: {self}")

    def contains(self, p: Point) -> bool:
        """True iff ``p`` satisfies the query."""
        x, y = p
        return self.a <= x <= self.b and self.c <= y <= self.d

    def filter(self, points: Iterable[Point]) -> List[Point]:
        """All satisfying points, in input order (brute force)."""
        return [p for p in points if self.contains(p)]

    def as_rect(self) -> Rect:
        """The query region as a closed rectangle."""
        return Rect(self.a, self.b, self.c, self.d)


@dataclass(frozen=True)
class TwoSidedQuery:
    """Quadrant query ``x <= b, y >= c`` (Figure 1(b))."""

    b: float
    c: float

    def contains(self, p: Point) -> bool:
        """True iff ``p`` lies in the quadrant."""
        x, y = p
        return x <= self.b and y >= self.c

    def filter(self, points: Iterable[Point]) -> List[Point]:
        """All satisfying points, in input order (brute force)."""
        return [p for p in points if self.contains(p)]

    def as_three_sided(self) -> ThreeSidedQuery:
        """The equivalent 3-sided query with an unbounded left side."""
        return ThreeSidedQuery(NEG_INF, self.b, self.c)


@dataclass(frozen=True)
class DiagonalCornerQuery:
    """Diagonal corner query at ``(q, q)``: report points with ``x <= q <= y``.

    This is the Kannan-et-al. form of interval stabbing (Figure 1(a)): an
    interval ``[l, r]`` stored as the point ``(l, r)`` contains ``q``
    exactly when the point satisfies this query.
    """

    q: float

    def contains(self, p: Point) -> bool:
        """True iff the point/interval ``p`` covers the corner value."""
        x, y = p
        return x <= self.q <= y

    def filter(self, points: Iterable[Point]) -> List[Point]:
        """All satisfying points, in input order (brute force)."""
        return [p for p in points if self.contains(p)]

    def as_three_sided(self) -> ThreeSidedQuery:
        """The equivalent (degenerate) 3-sided query."""
        return ThreeSidedQuery(NEG_INF, self.q, self.q)


# ----------------------------------------------------------------------
# Orientation transforms
# ----------------------------------------------------------------------
#
# Section 2.2.2 needs 3-sided schemes "with the unbounded side to the
# left" and "to the right".  A right-open query {x >= a, c <= y <= d} on
# points P equals the canonical up-open query {c <= x' <= d, y' >= a} on
# the transformed points {(y, x) : (x, y) in P}.  Left-open similarly with
# (y, -x).  The transforms below are self-inverse on points so reported
# points can be mapped back.


class Orientation:
    """A self-describing coordinate transform for 3-sided orientations."""

    UP = "up"
    DOWN = "down"
    LEFT = "left"
    RIGHT = "right"

    _ALL = (UP, DOWN, LEFT, RIGHT)

    def __init__(self, side: str):
        if side not in self._ALL:
            raise ValueError(f"unknown orientation {side!r}")
        self.side = side

    def to_canonical(self, p: Point) -> Point:
        """Map a point so the open side becomes 'up'."""
        x, y = p
        if self.side == self.UP:
            return (x, y)
        if self.side == self.DOWN:
            return (x, -y)
        if self.side == self.RIGHT:
            return (y, x)
        return (y, -x)  # LEFT

    def from_canonical(self, p: Point) -> Point:
        """Inverse of :meth:`to_canonical`."""
        x, y = p
        if self.side == self.UP:
            return (x, y)
        if self.side == self.DOWN:
            return (x, -y)
        if self.side == self.RIGHT:
            return (y, x)
        return (-y, x)  # LEFT

    def query_to_canonical(
        self, *, x_lo: float = NEG_INF, x_hi: float = INF,
        y_lo: float = NEG_INF, y_hi: float = INF,
    ) -> ThreeSidedQuery:
        """Express an open-sided rectangle as a canonical 3-sided query.

        Exactly one bound must be infinite in the direction of the open
        side: ``y_hi = +inf`` for UP, ``y_lo = -inf`` for DOWN,
        ``x_hi = +inf`` for RIGHT, ``x_lo = -inf`` for LEFT.
        """
        if self.side == self.UP:
            if y_hi != INF:
                raise ValueError("UP-open query must have y_hi = +inf")
            return ThreeSidedQuery(x_lo, x_hi, y_lo)
        if self.side == self.DOWN:
            if y_lo != NEG_INF:
                raise ValueError("DOWN-open query must have y_lo = -inf")
            return ThreeSidedQuery(x_lo, x_hi, -y_hi)
        if self.side == self.RIGHT:
            if x_hi != INF:
                raise ValueError("RIGHT-open query must have x_hi = +inf")
            return ThreeSidedQuery(y_lo, y_hi, x_lo)
        if x_lo != NEG_INF:
            raise ValueError("LEFT-open query must have x_lo = -inf")
        return ThreeSidedQuery(y_lo, y_hi, -x_hi)

    def __repr__(self) -> str:
        return f"Orientation({self.side!r})"


def sort_by_x(points: Sequence[Point]) -> List[Point]:
    """Points sorted by (x, y) -- the order the sweep constructions need."""
    return sorted(points, key=lambda p: (p[0], p[1]))


def sort_by_y(points: Sequence[Point]) -> List[Point]:
    """Points sorted by (y, x) -- the sweep order of Section 2.2.1."""
    return sorted(points, key=lambda p: (p[1], p[0]))
