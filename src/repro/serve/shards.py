"""Slab sharding: partition the plane into contiguous x-slabs.

The serving tier scales the paper's single-structure indexes the same
way the Theorem 5 construction scales 3-sided structures into a
4-sided one: cut the x-axis into contiguous slabs and put a complete
3-sided structure in each.  A query ``[a, b]`` touches only the shards
whose slab intersects it; interior shards are *fully spanned* (their
whole slab lies inside ``[a, b]``), so for 4-sided queries they can
answer from a y-ordered directory without touching the 3-sided
structure at all -- exactly the role the ``Y``-sets play inside one
Theorem 5 level, lifted to the serving layer.

Each :class:`Shard` is a :class:`~repro.serve.replication.ReplicaSet`
of ``replication_factor`` private store chains

    ``BlockStore -> Checksummed -> Snapshot [-> Faulty -> Retrying]
    [-> BufferPool]``

so shards fail, retry, cache and snapshot independently, and their I/O
counters never interleave.  With ``replication_factor=1`` (the
default) the shard is exactly the pre-replication serving tier plus
the zero-I/O checksum frame; with more, writes fan out to every live
replica and reads fall over to a peer on a fault or checksum mismatch.
A writer-preferring :class:`~repro.serve.locks.ReadWriteLock` per
shard gives the executor its single-writer / multi-reader discipline.
:class:`SlabRouter` maps points and x-ranges to shards via bisection
on the slab boundaries.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.log_method import LogMethodThreeSidedIndex
from repro.obs.metrics import counter
from repro.resilience.retry import RetryPolicy
from repro.serve.deadline import Deadline
from repro.serve.locks import ReadWriteLock
from repro.serve.replication import Replica, ReplicaSet, ReplicaSpec
from repro.serve.snapshots import ShardSnapshot

Point = Tuple[float, float]

# Backend registry: (build, attach) per selectable 3-sided structure.
# Both present the same surface: query(a, b, c), insert(x, y),
# delete(x, y) -> bool, count, all_points(), snapshot_meta()/attach().
BACKENDS: Dict[str, Tuple[Callable, Callable]] = {
    "pst": (
        lambda store, pts, kw: ExternalPrioritySearchTree(store, pts, **kw),
        ExternalPrioritySearchTree.attach,
    ),
    "log": (
        lambda store, pts, kw: LogMethodThreeSidedIndex(store, pts, **kw),
        LogMethodThreeSidedIndex.attach,
    ),
}


class Shard:
    """One contiguous x-slab: replica set, 3-sided structure, y-list.

    The shard does no locking itself -- callers (the batch executor and
    the engine facade) hold :attr:`lock` appropriately.  ``x_lo`` /
    ``x_hi`` bound the owned slab as ``[x_lo, x_hi)``; the router makes
    the outermost shards open-ended.

    ``fault_schedules`` (one per replica, ``None`` entries allowed)
    gives every copy its own deterministic fault stream; the legacy
    ``fault_schedule`` shorthand applies one schedule to replica 0
    only.  ``base_store`` / ``snapstore`` / ``store`` / ``structure``
    delegate to the current *primary* replica, so the whole
    pre-replication API (snapshots, stats, recovery adapters) keeps
    working unchanged.
    """

    def __init__(
        self,
        shard_id: int,
        x_lo: float,
        x_hi: float,
        *,
        block_size: int = 32,
        backend: str = "pst",
        points: Sequence[Point] = (),
        pool_capacity: int = 0,
        pool_policy: str = "lru",
        readahead_window: int = 0,
        coalesce_writes: bool = False,
        fault_schedule=None,
        fault_schedules: Optional[Sequence] = None,
        retry_policy: Optional[RetryPolicy] = None,
        io_latency: float = 0.0,
        backend_kwargs: Optional[dict] = None,
        replication_factor: int = 1,
        breaker_threshold: int = 3,
        breaker_probe_after: int = 8,
        auto_rebuild: bool = True,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            )
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if fault_schedules is not None:
            if fault_schedule is not None:
                raise ValueError(
                    "pass fault_schedule or fault_schedules, not both"
                )
            if len(fault_schedules) != replication_factor:
                raise ValueError(
                    "need one fault schedule entry per replica "
                    f"({len(fault_schedules)} != {replication_factor})"
                )
            schedules = list(fault_schedules)
        else:
            schedules = [fault_schedule] + [None] * (replication_factor - 1)
        self.shard_id = shard_id
        self.x_lo = x_lo
        self.x_hi = x_hi
        self.backend = backend
        self.lock = ReadWriteLock()

        spec = ReplicaSpec(
            block_size,
            pool_capacity=pool_capacity,
            pool_policy=pool_policy,
            readahead_window=readahead_window,
            coalesce_writes=coalesce_writes,
            retry_policy=retry_policy,
            io_latency=io_latency,
            breaker_threshold=breaker_threshold,
            breaker_probe_after=breaker_probe_after,
        )
        mine = sorted(
            (float(p[0]), float(p[1])) for p in points
        )
        build, self._attach = BACKENDS[backend]
        replicas = []
        for j in range(replication_factor):
            r = Replica(
                j,
                spec,
                fault_schedule=schedules[j],
                labels={"shard": str(shard_id), "replica": str(j)},
            )
            # provision below the chaos: the bulk load runs with fault
            # injection disarmed (no schedule draws), so every replica is
            # born healthy and the hostile environment tests serving only
            if r.faulty is not None:
                r.faulty.armed = False
            r.structure = build(r.store, mine, backend_kwargs or {})
            r.flush()
            if r.faulty is not None:
                r.faulty.armed = True
            replicas.append(r)
        self.replica_set = ReplicaSet(
            shard_id, replicas, attach=self._attach, auto_rebuild=auto_rebuild
        )
        # y-ordered directory for fully-spanned 4-sided queries: kept in
        # memory like the static index's catalog (O(n) words), it turns
        # an interior shard's q4 into zero disk I/O.
        self._ylist: List[Tuple[float, float]] = sorted(
            (y, x) for (x, y) in mine
        )

    # ------------------------------------------------------------------
    # primary-replica delegation (pre-replication API surface)
    # ------------------------------------------------------------------
    @property
    def primary(self) -> Replica:
        """The replica currently serving as primary."""
        return self.replica_set.primary

    @property
    def base_store(self):
        """The primary replica's physical :class:`BlockStore`."""
        return self.primary.base_store

    @property
    def checksummed(self):
        """The primary replica's checksum layer."""
        return self.primary.checksummed

    @property
    def snapstore(self):
        """The primary replica's snapshot (COW) layer."""
        return self.primary.snapstore

    @property
    def store(self):
        """Top of the primary replica's store chain."""
        return self.primary.store

    @property
    def _pool(self):
        return self.primary.pool

    @property
    def structure(self):
        """The primary replica's 3-sided structure."""
        return self.primary.structure

    @property
    def count(self) -> int:
        """Live records in this shard."""
        return self.structure.count

    def owns(self, x: float) -> bool:
        """Whether ``x`` falls in this shard's slab ``[x_lo, x_hi)``."""
        return self.x_lo <= x < self.x_hi

    def covered_by(self, a: float, b: float) -> bool:
        """Whether the whole slab lies inside ``[a, b]`` (fully spanned)."""
        return a <= self.x_lo and self.x_hi <= b

    # ------------------------------------------------------------------
    # operations (caller holds the appropriate lock)
    # ------------------------------------------------------------------
    def insert(self, p: Point) -> bool:
        """Insert; returns False if the point is already present.

        The mutation fans out to every live replica before it is
        acknowledged (see :meth:`ReplicaSet.apply_write`); the shared
        y-directory updates only on an acknowledged apply.
        """
        x, y = float(p[0]), float(p[1])
        i = bisect.bisect_left(self._ylist, (y, x))
        if i < len(self._ylist) and self._ylist[i] == (y, x):
            return False
        self.replica_set.apply_write(lambda s: s.insert(x, y))
        self._ylist.insert(i, (y, x))
        counter("shard_ops", layer="serve", kind="ins").inc()
        return True

    def delete(self, p: Point) -> bool:
        """Delete; returns whether the point was present."""
        x, y = float(p[0]), float(p[1])
        ok = bool(self.replica_set.apply_write(lambda s: s.delete(x, y)))
        if ok:
            i = bisect.bisect_left(self._ylist, (y, x))
            if i < len(self._ylist) and self._ylist[i] == (y, x):
                self._ylist.pop(i)
        counter("shard_ops", layer="serve", kind="del").inc()
        return ok

    def query3(
        self,
        a: float,
        b: float,
        c: float,
        *,
        deadline: Optional[Deadline] = None,
    ) -> List[Point]:
        """3-sided query, served by the first replica that can answer."""
        counter("shard_ops", layer="serve", kind="q3").inc()
        return self.replica_set.read_any(
            lambda s: s.query(a, b, c), deadline=deadline
        )

    def query4(
        self,
        a: float,
        b: float,
        c: float,
        d: float,
        *,
        spanned: bool = False,
        deadline: Optional[Deadline] = None,
    ) -> List[Point]:
        """4-sided query.  ``spanned=True`` (slab inside ``[a, b]``)
        answers from the in-memory y-directory -- zero disk I/O; the
        boundary shards fall back to a 3-sided probe plus a y filter."""
        counter("shard_ops", layer="serve", kind="q4").inc()
        if spanned:
            lo = bisect.bisect_left(self._ylist, (c, float("-inf")))
            hi = bisect.bisect_right(self._ylist, (d, float("inf")))
            return [(x, y) for (y, x) in self._ylist[lo:hi]]
        return self.replica_set.read_any(
            lambda s: [p for p in s.query(a, b, c) if p[1] <= d],
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    def heal(self, *, locked: bool = False) -> int:
        """Rebuild any dead replicas from a healthy peer.

        Takes the writer lock unless the caller already holds it and
        passes ``locked=True``.  Returns the number rebuilt.
        """
        if locked:
            return self.replica_set.rebuild_dead()
        with self.lock.write_locked():
            return self.replica_set.rebuild_dead()

    # ------------------------------------------------------------------
    def snapshot(self, *, locked: bool = False) -> ShardSnapshot:
        """Open a frozen-epoch read view of this shard.

        Takes the writer lock (unless the caller already holds it and
        passes ``locked=True``) so the captured meta and the epoch's
        pre-images are mutually consistent, flushes any buffer-pool
        frames down to disk, then opens the COW epoch.
        """
        if locked:
            return self._snapshot_locked()
        with self.lock.write_locked():
            return self._snapshot_locked()

    def _snapshot_locked(self) -> ShardSnapshot:
        if self._pool is not None:
            self._pool.flush()
        meta = self.structure.snapshot_meta()
        epoch = self.snapstore.open_epoch()
        counter("snapshots_opened", layer="serve").inc()
        return ShardSnapshot(
            self.snapstore, epoch, meta, self._attach, self.x_lo, self.x_hi
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Shard health: counts, physical I/O, cache and snapshot state."""
        out = {
            "shard": self.shard_id,
            "backend": self.backend,
            "count": self.count,
            "x_lo": self.x_lo,
            "x_hi": self.x_hi,
            "reads": self.base_store.stats.reads,
            "writes": self.base_store.stats.writes,
            "open_epochs": len(self.snapstore.open_epochs),
            "replication": self.replica_set.stats(),
        }
        if self._pool is not None:
            out["pool_hits"] = self._pool.hits
            out["pool_misses"] = self._pool.misses
            out["pool_hit_rate"] = self._pool.hit_rate
            out["pool_policy"] = self._pool.policy.name
            out["pool_prefetch_hits"] = self._pool.prefetch_hits
            out["pool_prefetch_waste"] = self._pool.prefetch_waste
            out["pool_coalesced_writes"] = self._pool.coalesced_writes
        return out

    def __repr__(self) -> str:
        return (
            f"Shard({self.shard_id}, [{self.x_lo}, {self.x_hi}), "
            f"backend={self.backend}, count={self.count})"
        )


class SlabRouter:
    """Route points and x-ranges to contiguous slab shards.

    ``boundaries`` holds the interior cut points; shard ``i`` owns
    ``[boundaries[i-1], boundaries[i])`` with the outermost shards
    open-ended.  A point exactly on a boundary belongs to the shard on
    its right, matching :meth:`Shard.owns`.
    """

    def __init__(self, shards: Sequence[Shard], boundaries: Sequence[float]):
        if len(boundaries) != len(shards) - 1:
            raise ValueError("need exactly len(shards) - 1 boundaries")
        if list(boundaries) != sorted(boundaries):
            raise ValueError("boundaries must be sorted")
        self.shards = list(shards)
        self.boundaries = [float(b) for b in boundaries]

    @staticmethod
    def quantile_boundaries(
        points: Sequence[Point], n_shards: int, *, extent: float = 1000.0
    ) -> List[float]:
        """Interior cut points splitting ``points`` into equal-count
        slabs; falls back to uniform cuts of ``[0, extent]`` when there
        are too few points to estimate quantiles."""
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if n_shards == 1:
            return []
        xs = sorted(float(p[0]) for p in points)
        if len(xs) < n_shards:
            return [extent * i / n_shards for i in range(1, n_shards)]
        return [xs[(len(xs) * i) // n_shards] for i in range(1, n_shards)]

    # ------------------------------------------------------------------
    def shard_for_x(self, x: float) -> Shard:
        """The unique shard owning x-coordinate ``x``."""
        return self.shards[bisect.bisect_right(self.boundaries, x)]

    def shards_for_range(self, a: float, b: float) -> List[Shard]:
        """Every shard whose slab intersects ``[a, b]`` (in slab order)."""
        if b < a:
            return []
        lo = bisect.bisect_right(self.boundaries, a)
        hi = bisect.bisect_right(self.boundaries, b)
        return self.shards[lo:hi + 1]

    @property
    def total_count(self) -> int:
        """Live records across all shards."""
        return sum(s.count for s in self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def __repr__(self) -> str:
        return f"SlabRouter({len(self.shards)} shards, cuts={self.boundaries})"
