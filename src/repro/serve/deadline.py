"""Deadline propagation: bounded time budgets threaded through a query.

A :class:`Deadline` is an absolute point on the monotonic clock that
rides along with a batch: the engine checks it at admission, the
executor checks it when taking shard locks and between operations, and
the replica layer checks it before falling over to another copy.  When
it expires, every layer stops *cooperatively* and reports what it did
finish -- the engine returns a :class:`~repro.serve.executor.
PartialResult` marked with the x-slabs that were served rather than
hanging on the slow or dead remainder.

:class:`DeadlineExpired` is the internal control-flow signal a shard
task raises when its budget runs out mid-queue; it never escapes the
engine facade.
"""

from __future__ import annotations

import time
from typing import Optional


class DeadlineExpired(RuntimeError):
    """A deadline ran out mid-operation (internal control flow)."""


class Deadline:
    """An absolute time budget on the monotonic clock.

    Build one with :meth:`after` (relative seconds) or pass an absolute
    ``time.monotonic()`` value.  Immutable; cheap to share across
    threads.
    """

    __slots__ = ("_at",)

    def __init__(self, at: float):
        self._at = float(at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (<= 0 is already expired)."""
        return cls(time.monotonic() + seconds)

    @property
    def at(self) -> float:
        """The absolute monotonic expiry time."""
        return self._at

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return time.monotonic() >= self._at

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self._at - time.monotonic())

    def check(self) -> None:
        """Raise :class:`DeadlineExpired` if the budget ran out."""
        if self.expired:
            raise DeadlineExpired(f"deadline passed {self!r}")

    @staticmethod
    def remaining_of(deadline: "Optional[Deadline]") -> Optional[float]:
        """``deadline.remaining()`` or None -- lock/wait timeout plumbing."""
        return None if deadline is None else deadline.remaining()

    def __repr__(self) -> str:
        left = self._at - time.monotonic()
        state = f"{left * 1e3:.1f}ms left" if left > 0 else "expired"
        return f"Deadline({state})"
