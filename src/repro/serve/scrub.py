"""Background scrubbing: find silent corruption before readers do.

A :class:`Scrubber` periodically walks every replica of every shard,
re-computes each block's CRC against the checksum layer's side table
(:meth:`~repro.io.checksum.ChecksummedStore.verify` -- no I/O charged,
never raises) and repairs any rotten block from a peer replica whose
copy still verifies.  Repairs are honest I/O: the fresh payload is
written through the replica's :class:`~repro.serve.snapshots.
SnapshotStore` (so copy-on-write pre-images are preserved and the
write lands *below* the fault-injection layer -- a repair never draws
from the fault schedule), latched fault state for the block is healed,
and any stale buffer-pool frame is invalidated.

Scrubbing a shard takes its writer lock (with a bounded wait, so a
busy shard is skipped rather than stalled) and flushes buffer pools
first -- a dirty frame means the disk block is *legitimately* stale,
and flushing reconciles disk with the CRC table before verification.

Counters (``scrub_cycles``, ``scrub_blocks``, ``scrub_repairs``,
``scrub_unrepaired`` under ``layer=serve``) ride the metrics registry
into the repro-bench export.  :meth:`Scrubber.scrub_once` is fully
deterministic; :meth:`Scrubber.start` runs it on a daemon thread for
live deployments.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.io.blockstore import StorageError
from repro.obs.metrics import counter
from repro.resilience.errors import FaultInjectionError


class Scrubber:
    """Walk replica blocks, cross-check CRCs, repair from healthy peers."""

    def __init__(self, shards, *, lock_timeout: Optional[float] = None):
        self._shards = list(shards)
        self.lock_timeout = lock_timeout
        self.cycles = 0
        self.blocks_checked = 0
        self.repairs = 0
        self.unrepaired = 0
        self.shards_skipped = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def scrub_once(self, *, lock_timeout: Optional[float] = None) -> dict:
        """One full deterministic pass over every shard's replicas.

        ``lock_timeout`` bounds the wait for each shard's writer lock
        (falling back to the constructor's value; ``None`` waits
        forever).  Returns a summary dict; cumulative totals live on
        the scrubber and in the metrics registry.
        """
        if lock_timeout is None:
            lock_timeout = self.lock_timeout
        checked = repaired = unrepaired = skipped = 0
        for shard in self._shards:
            if not shard.lock.acquire_write(timeout=lock_timeout):
                skipped += 1
                continue
            try:
                c, r, u = self._scrub_shard(shard)
            finally:
                shard.lock.release_write()
            checked += c
            repaired += r
            unrepaired += u
        self.cycles += 1
        self.blocks_checked += checked
        self.repairs += repaired
        self.unrepaired += unrepaired
        self.shards_skipped += skipped
        counter("scrub_cycles", layer="serve").inc()
        counter("scrub_blocks", layer="serve").inc(checked)
        return {
            "blocks_checked": checked,
            "repairs": repaired,
            "unrepaired": unrepaired,
            "shards_skipped": skipped,
        }

    def _scrub_shard(self, shard) -> tuple:
        """Scrub one shard (writer lock held).  Dead replicas are healed
        first so the freshly rebuilt copies get scrubbed too."""
        rs = shard.replica_set
        rs.rebuild_dead()
        replicas = [r for r in rs.replicas if r.alive]
        for r in replicas:
            # reconcile disk with the CRC table: a dirty pooled frame is
            # newer than its disk block, which would otherwise read as rot
            try:
                r.flush()
            except (FaultInjectionError, StorageError):
                # a flush fault surfaces through the normal serving path
                # soon enough; scrub what the disk does hold
                pass
        checked = repaired = unrepaired = 0
        for r in replicas:
            # permanent faults latch a block broken until rewritten from a
            # verified copy; the scrubber is that rewrite channel
            try:
                rs.heal_latched(r)
            except (FaultInjectionError, StorageError):
                pass
            for bid in sorted(r.checksummed.block_ids()):
                checked += 1
                if r.checksummed.verify(bid):
                    continue
                if rs.repair_block(r, bid):
                    repaired += 1
                    counter("scrub_repairs", layer="serve").inc()
                else:
                    unrepaired += 1
                    counter("scrub_unrepaired", layer="serve").inc()
        return checked, repaired, unrepaired

    # ------------------------------------------------------------------
    # background operation
    # ------------------------------------------------------------------
    def start(self, interval: float, *, lock_timeout: float = 0.05) -> None:
        """Run :meth:`scrub_once` every ``interval`` seconds on a daemon
        thread.  The bounded lock wait keeps the scrubber from stalling
        a busy shard; skipped shards are retried next cycle."""
        if self._thread is not None:
            raise RuntimeError("scrubber already running")
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval):
                self.scrub_once(lock_timeout=lock_timeout)

        self._thread = threading.Thread(
            target=_loop, name="scrubber", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (idempotent, joins it)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    @property
    def running(self) -> bool:
        """Whether the background thread is live."""
        return self._thread is not None

    def summary(self) -> dict:
        """Cumulative totals for ``stats()`` and bench export."""
        return {
            "cycles": self.cycles,
            "blocks_checked": self.blocks_checked,
            "repairs": self.repairs,
            "unrepaired": self.unrepaired,
            "shards_skipped": self.shards_skipped,
        }

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return (
            f"Scrubber({len(self._shards)} shards, {state}, "
            f"cycles={self.cycles}, repairs={self.repairs})"
        )
