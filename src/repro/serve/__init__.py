"""Sharded concurrent query-serving engine over the paper's indexes.

The serving tier turns the single-structure, single-threaded indexes
of :mod:`repro.core` into something a system could put behind an RPC
endpoint: contiguous x-slab shards each owning a replica set of
private store chains and 3-sided structures (:mod:`~repro.serve.
shards`, :mod:`~repro.serve.replication`), a batch executor that fans
operation batches across shards under single-writer / multi-reader
locks and merges results deterministically
(:mod:`~repro.serve.executor`), copy-on-write snapshot epochs for
stable long reads (:mod:`~repro.serve.snapshots`), admission control
with load shedding and backpressure (:mod:`~repro.serve.admission`),
deadline-bounded degraded reads (:mod:`~repro.serve.deadline`), and a
background scrubber that repairs silent corruption from healthy
replicas (:mod:`~repro.serve.scrub`).  :class:`ServingEngine` is the
facade wiring them together.

See ``docs/SERVING.md`` for the architecture walk-through and
``docs/RESILIENCE.md`` for the replication / self-healing story.
"""

from repro.serve.admission import AdmissionController, EngineOverloaded
from repro.serve.deadline import Deadline, DeadlineExpired
from repro.serve.engine import EngineSnapshot, ServingEngine
from repro.serve.executor import (
    BatchExecutor,
    BatchResult,
    PartialResult,
    ShardTaskError,
)
from repro.serve.locks import ReadWriteLock
from repro.serve.replication import (
    CircuitBreaker,
    Replica,
    ReplicaSet,
    ReplicaSetExhausted,
    ReplicaSpec,
)
from repro.serve.scrub import Scrubber
from repro.serve.shards import BACKENDS, Shard, SlabRouter
from repro.serve.snapshots import ShardSnapshot, SnapshotReader, SnapshotStore

__all__ = [
    "AdmissionController",
    "BACKENDS",
    "BatchExecutor",
    "BatchResult",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExpired",
    "EngineOverloaded",
    "EngineSnapshot",
    "PartialResult",
    "ReadWriteLock",
    "Replica",
    "ReplicaSet",
    "ReplicaSetExhausted",
    "ReplicaSpec",
    "Scrubber",
    "ServingEngine",
    "Shard",
    "ShardSnapshot",
    "ShardTaskError",
    "SlabRouter",
    "SnapshotReader",
    "SnapshotStore",
]
