"""Sharded concurrent query-serving engine over the paper's indexes.

The serving tier turns the single-structure, single-threaded indexes
of :mod:`repro.core` into something a system could put behind an RPC
endpoint: contiguous x-slab shards each owning a private store chain
and 3-sided structure (:mod:`~repro.serve.shards`), a batch executor
that fans operation batches across shards under single-writer /
multi-reader locks and merges results deterministically
(:mod:`~repro.serve.executor`), copy-on-write snapshot epochs for
stable long reads (:mod:`~repro.serve.snapshots`), and admission
control with load shedding and backpressure
(:mod:`~repro.serve.admission`).  :class:`ServingEngine` is the facade
wiring the four together.

See ``docs/SERVING.md`` for the architecture walk-through.
"""

from repro.serve.admission import AdmissionController, EngineOverloaded
from repro.serve.engine import EngineSnapshot, ServingEngine
from repro.serve.executor import BatchExecutor, BatchResult, ShardTaskError
from repro.serve.locks import ReadWriteLock
from repro.serve.shards import BACKENDS, Shard, SlabRouter
from repro.serve.snapshots import ShardSnapshot, SnapshotReader, SnapshotStore

__all__ = [
    "AdmissionController",
    "BACKENDS",
    "BatchExecutor",
    "BatchResult",
    "EngineOverloaded",
    "EngineSnapshot",
    "ReadWriteLock",
    "ServingEngine",
    "Shard",
    "ShardSnapshot",
    "ShardTaskError",
    "SlabRouter",
    "SnapshotReader",
    "SnapshotStore",
]
