"""Batch executor: route, fan out, merge deterministically.

A *batch* is a list of trace-format operations (``("ins", p)``,
``("del", p)``, ``("q3", (a, b, c))``, ``("q4", (a, b, c, d))`` -- the
same vocabulary :mod:`repro.workloads.traces` generates).  Execution:

1. **Route.**  Each op is appended to the queue of every shard it
   touches, tagged with its batch index.  Point ops hit exactly one
   shard; range queries hit every shard their x-range intersects, and
   4-sided ops are tagged *spanned* on interior shards so those answer
   from the y-directory.
2. **Fan out.**  One thread-pool task per non-empty shard queue.  A
   task takes its shard's writer lock iff its queue contains a
   mutation, else the reader lock -- so disjoint shards always run
   concurrently, and a read-only batch runs concurrently even against
   one shard.
3. **Merge.**  Per-shard partial results are recombined by batch
   index.  Query partials concatenate in shard order and are sorted;
   since slabs are disjoint, the merged answer is exactly what a
   single structure would return, independent of thread scheduling.

Determinism argument: within one shard the queue preserves batch
order, and across shards the ops in one batch touching different
shards commute (a point op lives in exactly one slab; a query's
per-slab answer depends only on that slab's points).  The executor
therefore equals the serial oracle *per batch*; callers who need
cross-batch ordering submit dependent ops in the same batch or in
separate batches.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import counter
from repro.serve.deadline import Deadline, DeadlineExpired
from repro.serve.shards import Shard, SlabRouter

Op = Tuple[str, object]

_WRITES = ("ins", "del")


class ShardTaskError(RuntimeError):
    """An operation failed inside a shard task (original attached)."""

    def __init__(self, shard_id: int, cause: BaseException):
        super().__init__(f"shard {shard_id}: {cause!r}")
        self.shard_id = shard_id
        self.cause = cause


@dataclass
class BatchResult:
    """Merged results of one batch, plus execution metadata.

    ``results[i]`` corresponds to ``ops[i]``: ``None`` for inserts, a
    bool for deletes (was the point present), a sorted point list for
    queries.
    """

    results: List[object]
    wall_s: float
    n_ops: int
    shards_touched: int
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ops_per_s(self) -> float:
        """Throughput of this batch."""
        return self.n_ops / self.wall_s if self.wall_s > 0 else 0.0


@dataclass
class PartialResult(BatchResult):
    """A batch answer that may be degraded by an expired deadline.

    Returned whenever a batch runs with a deadline.  ``complete`` is
    True when every routed shard finished its queue in budget -- then
    the payload is identical to a plain :class:`BatchResult`.  When the
    deadline expired first, ``served_slabs`` / ``missing_slabs`` name
    the shard ids (x-slabs) that did / did not finish: query results
    contain only the contributions of served slabs, and mutations
    queued on a missing slab were **not** applied (their ``results``
    entries are None, i.e. unacknowledged).
    """

    complete: bool = True
    served_slabs: List[int] = field(default_factory=list)
    missing_slabs: List[int] = field(default_factory=list)
    deadline_expired: bool = False


class BatchExecutor:
    """Fan a batch of ops out across slab shards and merge the answers."""

    def __init__(self, router: SlabRouter, *, max_workers: Optional[int] = None):
        self._router = router
        self._n = max_workers if max_workers is not None else len(router)
        if self._n < 1:
            raise ValueError("need at least one worker")
        self._pool = ThreadPoolExecutor(
            max_workers=self._n, thread_name_prefix="serve"
        )

    @property
    def max_workers(self) -> int:
        """Size of the shard-task thread pool."""
        return self._n

    # ------------------------------------------------------------------
    def route(
        self, ops: Sequence[Op]
    ) -> Dict[int, List[Tuple[int, str, tuple, bool]]]:
        """Build per-shard op queues: ``shard_id -> [(batch index, kind,
        args, spanned)]``.  Exposed for tests and the serial oracle."""
        queues: Dict[int, List[Tuple[int, str, tuple, bool]]] = {}
        for idx, (kind, arg) in enumerate(ops):
            if kind in _WRITES:
                sh = self._router.shard_for_x(float(arg[0]))
                queues.setdefault(sh.shard_id, []).append(
                    (idx, kind, tuple(arg), False)
                )
            elif kind == "q3":
                a, b, _c = arg
                for sh in self._router.shards_for_range(a, b):
                    queues.setdefault(sh.shard_id, []).append(
                        (idx, kind, tuple(arg), False)
                    )
            elif kind == "q4":
                a, b, _c, _d = arg
                for sh in self._router.shards_for_range(a, b):
                    queues.setdefault(sh.shard_id, []).append(
                        (idx, kind, tuple(arg), sh.covered_by(a, b))
                    )
            else:
                raise ValueError(f"unknown op kind {kind!r}")
        return queues

    @staticmethod
    def _run_queue(
        shard: Shard, queue: List[Tuple[int, str, tuple, bool]]
    ) -> Dict[int, object]:
        has_write = any(kind in _WRITES for _idx, kind, _a, _s in queue)
        lock_ctx = (
            shard.lock.write_locked() if has_write else shard.lock.read_locked()
        )
        partial: Dict[int, object] = {}
        with lock_ctx:
            for idx, kind, arg, spanned in queue:
                if kind == "ins":
                    shard.insert(arg)
                    partial[idx] = None
                elif kind == "del":
                    partial[idx] = shard.delete(arg)
                elif kind == "q3":
                    partial[idx] = shard.query3(*arg)
                else:
                    partial[idx] = shard.query4(*arg, spanned=spanned)
        return partial

    @staticmethod
    def _run_queue_deadline(
        shard: Shard,
        queue: List[Tuple[int, str, tuple, bool]],
        deadline: Deadline,
    ) -> Tuple[Dict[int, object], bool]:
        """Deadline-aware shard task: ``(partial, finished)``.

        The lock acquisition is bounded by the remaining budget and the
        deadline is checked between ops; on expiry the task stops where
        it is and reports unfinished instead of hanging.  Reads also
        thread the deadline into the replica layer so a fallback-chain
        walk cannot overrun it.
        """
        has_write = any(kind in _WRITES for _idx, kind, _a, _s in queue)
        if has_write:
            acquired = shard.lock.acquire_write(timeout=deadline.remaining())
            release = shard.lock.release_write
        else:
            acquired = shard.lock.acquire_read(timeout=deadline.remaining())
            release = shard.lock.release_read
        if not acquired:
            return {}, False
        partial: Dict[int, object] = {}
        try:
            for idx, kind, arg, spanned in queue:
                if deadline.expired:
                    return partial, False
                try:
                    if kind == "ins":
                        shard.insert(arg)
                        partial[idx] = None
                    elif kind == "del":
                        partial[idx] = shard.delete(arg)
                    elif kind == "q3":
                        partial[idx] = shard.query3(*arg, deadline=deadline)
                    else:
                        partial[idx] = shard.query4(
                            *arg, spanned=spanned, deadline=deadline
                        )
                except DeadlineExpired:
                    return partial, False
        finally:
            release()
        return partial, True

    # ------------------------------------------------------------------
    def execute(
        self, ops: Sequence[Op], *, deadline: Optional[Deadline] = None
    ) -> BatchResult:
        """Run one batch concurrently; results merge deterministically.

        With a ``deadline`` the batch never hangs: shards that cannot
        finish in budget are abandoned and the answer comes back as a
        :class:`PartialResult` naming the served and missing x-slabs.
        Without one the behaviour (and every I/O count) is unchanged.
        """
        if deadline is not None:
            return self._execute_deadline(ops, deadline)
        t0 = time.perf_counter()
        queues = self.route(ops)
        shards_by_id = {sh.shard_id: sh for sh in self._router}
        futures = []
        for shard_id in sorted(queues):
            futures.append(
                (
                    shard_id,
                    self._pool.submit(
                        self._run_queue, shards_by_id[shard_id], queues[shard_id]
                    ),
                )
            )
        partials: List[Tuple[int, Dict[int, object]]] = []
        error: Optional[ShardTaskError] = None
        for shard_id, fut in futures:
            try:
                partials.append((shard_id, fut.result()))
            except BaseException as exc:  # noqa: BLE001 - annotate and rethrow
                if error is None:
                    error = ShardTaskError(shard_id, exc)
        if error is not None:
            raise error

        results: List[object] = [None] * len(ops)
        query_parts: Dict[int, List[list]] = {}
        for shard_id, partial in sorted(partials):
            for idx, value in partial.items():
                kind = ops[idx][0]
                if kind in ("q3", "q4"):
                    query_parts.setdefault(idx, []).append(value)
                else:
                    results[idx] = value
        for idx, parts in query_parts.items():
            merged: List[tuple] = []
            for part in parts:
                merged.extend(part)
            results[idx] = sorted(merged)

        wall = time.perf_counter() - t0
        stats: Dict[str, int] = {}
        for kind, _arg in ops:
            stats[kind] = stats.get(kind, 0) + 1
        counter("batches", layer="serve").inc()
        for kind, n in stats.items():
            counter("batch_ops", layer="serve", kind=kind).inc(n)
        return BatchResult(
            results=results,
            wall_s=wall,
            n_ops=len(ops),
            shards_touched=len(queues),
            counts=stats,
        )

    def _execute_deadline(
        self, ops: Sequence[Op], deadline: Deadline
    ) -> PartialResult:
        """The deadline-bearing twin of :meth:`execute`."""
        t0 = time.perf_counter()
        queues = self.route(ops)
        kind_counts: Dict[str, int] = {}
        for kind, _arg in ops:
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
        counter("batches", layer="serve").inc()
        for kind, n in kind_counts.items():
            counter("batch_ops", layer="serve", kind=kind).inc(n)

        if deadline.expired:
            # budget was gone before fan-out: nothing is served
            counter("deadline_expired", layer="serve").inc()
            return PartialResult(
                results=[None] * len(ops),
                wall_s=time.perf_counter() - t0,
                n_ops=len(ops),
                shards_touched=0,
                counts=kind_counts,
                complete=False,
                served_slabs=[],
                missing_slabs=sorted(queues),
                deadline_expired=True,
            )

        shards_by_id = {sh.shard_id: sh for sh in self._router}
        futures = []
        for shard_id in sorted(queues):
            futures.append(
                (
                    shard_id,
                    self._pool.submit(
                        self._run_queue_deadline,
                        shards_by_id[shard_id],
                        queues[shard_id],
                        deadline,
                    ),
                )
            )
        partials: List[Tuple[int, Dict[int, object]]] = []
        served: List[int] = []
        missing: List[int] = []
        error: Optional[ShardTaskError] = None
        for shard_id, fut in futures:
            try:
                partial, finished = fut.result()
            except BaseException as exc:  # noqa: BLE001 - annotate and rethrow
                if error is None:
                    error = ShardTaskError(shard_id, exc)
                continue
            partials.append((shard_id, partial))
            (served if finished else missing).append(shard_id)
        if error is not None:
            raise error

        results: List[object] = [None] * len(ops)
        query_parts: Dict[int, List[list]] = {}
        for shard_id, partial in sorted(partials):
            for idx, value in partial.items():
                kind = ops[idx][0]
                if kind in ("q3", "q4"):
                    query_parts.setdefault(idx, []).append(value)
                else:
                    results[idx] = value
        for idx, parts in query_parts.items():
            merged: List[tuple] = []
            for part in parts:
                merged.extend(part)
            results[idx] = sorted(merged)

        if missing:
            counter("deadline_expired", layer="serve").inc()
        return PartialResult(
            results=results,
            wall_s=time.perf_counter() - t0,
            n_ops=len(ops),
            shards_touched=len(queues),
            counts=kind_counts,
            complete=not missing,
            served_slabs=served,
            missing_slabs=missing,
            deadline_expired=bool(missing),
        )

    def execute_serial(self, ops: Sequence[Op]) -> BatchResult:
        """One-op-at-a-time oracle loop over the same shards.

        Identical routing and locking semantics, zero concurrency --
        the baseline the batch executor's throughput is measured
        against, and the reference answer for correctness tests.
        """
        t0 = time.perf_counter()
        results: List[object] = [None] * len(ops)
        touched = set()
        for idx, (kind, arg) in enumerate(ops):
            if kind in _WRITES:
                sh = self._router.shard_for_x(float(arg[0]))
                touched.add(sh.shard_id)
                with sh.lock.write_locked():
                    if kind == "ins":
                        sh.insert(arg)
                        results[idx] = None
                    else:
                        results[idx] = sh.delete(arg)
            elif kind == "q3":
                a, b, _c = arg
                merged: List[tuple] = []
                for sh in self._router.shards_for_range(a, b):
                    touched.add(sh.shard_id)
                    with sh.lock.read_locked():
                        merged.extend(sh.query3(*arg))
                results[idx] = sorted(merged)
            elif kind == "q4":
                a, b, _c, _d = arg
                merged = []
                for sh in self._router.shards_for_range(a, b):
                    touched.add(sh.shard_id)
                    with sh.lock.read_locked():
                        merged.extend(
                            sh.query4(*arg, spanned=sh.covered_by(a, b))
                        )
                results[idx] = sorted(merged)
            else:
                raise ValueError(f"unknown op kind {kind!r}")
        wall = time.perf_counter() - t0
        stats: Dict[str, int] = {}
        for kind, _arg in ops:
            stats[kind] = stats.get(kind, 0) + 1
        return BatchResult(
            results=results,
            wall_s=wall,
            n_ops=len(ops),
            shards_touched=len(touched),
            counts=stats,
        )

    def close(self) -> None:
        """Shut the thread pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return f"BatchExecutor(workers={self._n}, shards={len(self._router)})"
