"""Snapshot-consistent reads: frozen epochs under advancing writers.

Long-running analytical queries must not block the write path, and the
write path must not shear the data out from under them.  The serving
tier solves this with block-level copy-on-write epochs layered on the
persistence machinery from the resilience layer:

- :class:`SnapshotStore` sits directly above a shard's physical
  :class:`~repro.io.BlockStore`.  While at least one epoch is open,
  the first write or free touching a block *preserves its pre-image*
  (one honest read I/O -- the classic read-before-write price of COW)
  before letting the operation through.
- Opening an epoch captures the structure's ``snapshot_meta()`` -- the
  same re-attachment state a :class:`~repro.resilience.JournaledStore`
  anchors in its superblock -- so the pair ``(epoch, meta)`` is a
  *snapshot anchor*: everything needed to mount a read-only view of
  the shard exactly as it was.
- :class:`SnapshotReader` presents the storage protocol over that
  anchor: preserved blocks are served from the undo map, untouched
  blocks read through to the live disk (charging physical I/O), and
  any mutation raises.  A structure ``attach()``-ed to a reader
  answers queries against the frozen state while writers advance the
  live blocks.

Epochs are cheap to hold (the undo map grows only with blocks the
writers actually touch) but not free; close them promptly.  All
activity is visible in the metrics registry: ``snapshot_blocks_kept``
counts pre-images preserved, ``snapshot_reads{source=undo|live}``
splits reader traffic by where it was served.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Set

from repro.io.blockstore import Block, StorageError
from repro.obs.metrics import counter, gauge


class _Epoch:
    """Bookkeeping for one open snapshot epoch."""

    __slots__ = ("epoch_id", "undo", "new", "next_bid")

    def __init__(self, epoch_id: int, next_bid: int = 0):
        self.epoch_id = epoch_id
        self.undo: Dict[int, List[Any]] = {}   # bid -> pre-image records
        self.new: Set[int] = set()             # bids born after the epoch
        self.next_bid = next_bid               # allocator watermark at open


class SnapshotStore:
    """Copy-on-write storage wrapper tracking open snapshot epochs.

    Standard storage protocol; with no epoch open every operation is a
    straight pass-through adding zero physical I/O.  Thread-safe for
    the serving tier's discipline (one writer per shard, any number of
    snapshot readers).
    """

    def __init__(self, store):
        self._store = store
        self._epochs: Dict[int, _Epoch] = {}
        self._next_epoch = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # protocol delegation
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the wrapped store's ``B``)."""
        return self._store.block_size

    @property
    def stats(self):
        """Physical I/O counters of the wrapped store."""
        return self._store.stats

    @property
    def physical_store(self):
        """The wrapped store whose counters are the physical truth."""
        return getattr(self._store, "physical_store", self._store)

    @property
    def crash_hook(self):
        """Forward named crash points to the wrapped store (or None)."""
        return getattr(self._store, "crash_hook", None)

    def add_observer(self, callback) -> None:
        """Delegate observer registration to the wrapped store."""
        self._store.add_observer(callback)

    def remove_observer(self, callback) -> None:
        """Delegate observer removal to the wrapped store."""
        self._store.remove_observer(callback)

    def peek(self, bid: int):
        """Pass-through inspection (no I/O charged)."""
        return self._store.peek(bid)

    @property
    def blocks_in_use(self) -> int:
        """Blocks allocated on the wrapped store."""
        return self._store.blocks_in_use

    def flush(self) -> None:
        """Pass-through flush."""
        self._store.flush()

    # ------------------------------------------------------------------
    # mutations (pre-image capture)
    # ------------------------------------------------------------------
    def _preserve(self, bid: int) -> None:
        with self._lock:
            needy = [
                ep for ep in self._epochs.values()
                if bid not in ep.undo and bid not in ep.new
            ]
        if not needy:
            return
        try:
            records = self._store.read(bid).records
        except StorageError:
            return  # unallocated: let the mutation raise its own error
        counter("snapshot_blocks_kept", layer="serve").inc()
        with self._lock:
            for ep in needy:
                if bid not in ep.undo and bid not in ep.new:
                    ep.undo[bid] = list(records)

    def alloc(self) -> int:
        """Allocate; blocks born after an epoch are invisible to it."""
        bid = self._store.alloc()
        if self._epochs:
            with self._lock:
                for ep in self._epochs.values():
                    ep.new.add(bid)
        return bid

    def read(self, bid: int) -> Block:
        """Live read: pass-through."""
        return self._store.read(bid)

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Write through, preserving the pre-image for open epochs."""
        if self._epochs:
            self._preserve(bid)
        self._store.write(bid, records)

    def free(self, bid: int) -> None:
        """Free through, preserving the pre-image for open epochs."""
        if self._epochs:
            self._preserve(bid)
        self._store.free(bid)

    # ------------------------------------------------------------------
    # epoch lifecycle
    # ------------------------------------------------------------------
    def open_epoch(self) -> int:
        """Start tracking pre-images; returns the epoch id."""
        next_bid = getattr(self.physical_store, "next_bid", 0)
        with self._lock:
            eid = self._next_epoch
            self._next_epoch += 1
            self._epochs[eid] = _Epoch(eid, next_bid)
            gauge("snapshot_epochs_open", layer="serve").set(len(self._epochs))
            return eid

    def close_epoch(self, epoch_id: int) -> None:
        """Drop an epoch and its undo map (idempotent)."""
        with self._lock:
            self._epochs.pop(epoch_id, None)
            gauge("snapshot_epochs_open", layer="serve").set(len(self._epochs))

    def rollback_epoch(self, epoch_id: int) -> int:
        """Restore every block the epoch preserved and drop the epoch.

        The undo map *is* a per-epoch undo log: writing the pre-images
        back, freeing blocks born inside the epoch and rewinding the
        allocator watermark returns the disk to its state at
        :meth:`open_epoch` -- the primitive the replica layer uses to
        abort a half-applied operation instead of retiring the whole
        replica.  The allocator rewind matters for replication: a
        rolled-back-and-retried op re-allocates the *same* block ids,
        keeping healthy replicas block-for-block mirrors (the property
        same-bid peer repair rests on).  Restores charge honest write
        I/O.  Returns the number of blocks restored.  Caller must hold
        the shard's writer lock (concurrent readers would see the
        rewind).
        """
        with self._lock:
            ep = self._epochs.pop(epoch_id, None)
            gauge("snapshot_epochs_open", layer="serve").set(len(self._epochs))
        if ep is None:
            raise StorageError(f"epoch {epoch_id} is not open")
        for bid in sorted(ep.new):
            try:
                self._store.free(bid)
            except StorageError:
                pass  # already freed during the epoch
        restored = 0
        for bid, records in sorted(ep.undo.items()):
            try:
                self._store.write(bid, records)
            except StorageError:
                # freed during the epoch: re-install at the same id
                self._store.place(bid, records)
            restored += 1
        phys = self.physical_store
        if hasattr(phys, "rewind_ids"):
            phys.rewind_ids(ep.next_bid)
        counter("snapshot_rollbacks", layer="serve").inc()
        return restored

    @property
    def open_epochs(self) -> List[int]:
        """Ids of the currently open epochs."""
        with self._lock:
            return sorted(self._epochs)

    def epoch_writes(self, epoch_id: int) -> List[int]:
        """Bids written during an open epoch (pre-imaged or epoch-born).

        The pre-ack verification target: corrupt faults scribble only
        blocks being *written*, so sweeping these CRCs (no I/O) before
        acknowledging an op catches silent write-rot while the epoch's
        undo log can still cure it.
        """
        with self._lock:
            ep = self._epochs.get(epoch_id)
            if ep is None:
                raise StorageError(f"epoch {epoch_id} is not open")
            return sorted(set(ep.undo) | set(ep.new))

    def undo_blocks(self, epoch_id: int) -> int:
        """Pre-images held for an epoch (space accounting)."""
        with self._lock:
            ep = self._epochs.get(epoch_id)
            return len(ep.undo) if ep is not None else 0

    def reader(self, epoch_id: int) -> "SnapshotReader":
        """A read-only storage view pinned to ``epoch_id``."""
        with self._lock:
            if epoch_id not in self._epochs:
                raise StorageError(f"epoch {epoch_id} is not open")
        return SnapshotReader(self, epoch_id)

    def __repr__(self) -> str:
        return f"SnapshotStore(epochs={self.open_epochs})"


class SnapshotReader:
    """Read-only storage protocol over one frozen epoch.

    Preserved blocks come from the undo map (counted as
    ``snapshot_reads{source=undo}`` -- in a real system these reads hit
    the snapshot area, not the live disk, so they are kept out of the
    live I/O counters); untouched blocks read through and cost physical
    I/O like any other read.  Mutations raise :class:`StorageError`.
    """

    def __init__(self, snapstore: SnapshotStore, epoch_id: int):
        self._snap = snapstore
        self.epoch_id = epoch_id

    @property
    def block_size(self) -> int:
        """Records per block (the snapshotted store's ``B``)."""
        return self._snap.block_size

    @property
    def stats(self):
        """Physical I/O counters of the live store (shared)."""
        return self._snap.stats

    @property
    def physical_store(self):
        """The live physical store (for observer co-residency)."""
        return self._snap.physical_store

    def read(self, bid: int) -> Block:
        """Read the block as it was when the epoch opened."""
        with self._snap._lock:
            ep = self._snap._epochs.get(self.epoch_id)
            if ep is None:
                raise StorageError(f"epoch {self.epoch_id} was closed")
            pre = ep.undo.get(bid)
            if pre is None and bid in ep.new:
                raise StorageError(
                    f"block {bid} was born after epoch {self.epoch_id}"
                )
        if pre is not None:
            counter("snapshot_reads", layer="serve", source="undo").inc()
            return Block(bid, list(pre))
        counter("snapshot_reads", layer="serve", source="live").inc()
        return self._snap.read(bid)

    def peek(self, bid: int):
        """Inspect the frozen block without charging I/O."""
        with self._snap._lock:
            ep = self._snap._epochs.get(self.epoch_id)
            if ep is None:
                raise StorageError(f"epoch {self.epoch_id} was closed")
            pre = ep.undo.get(bid)
            if pre is None and bid in ep.new:
                raise StorageError(
                    f"block {bid} was born after epoch {self.epoch_id}"
                )
        if pre is not None:
            return list(pre)
        return self._snap.peek(bid)

    def write(self, bid: int, records) -> None:
        raise StorageError("snapshot readers are immutable")

    def alloc(self) -> int:
        raise StorageError("snapshot readers are immutable")

    def free(self, bid: int) -> None:
        raise StorageError("snapshot readers are immutable")

    def flush(self) -> None:
        """No-op (nothing a reader could have buffered)."""

    def __repr__(self) -> str:
        return f"SnapshotReader(epoch={self.epoch_id})"


class ShardSnapshot:
    """A mounted frozen view of one shard: anchor + attached structure.

    Created by ``Shard.snapshot()`` under the shard's writer lock, so
    the captured ``meta`` and the epoch's first pre-images are mutually
    consistent (no write can interleave).  Queries afterwards take no
    shard lock at all -- that is the point: the snapshot *is* the
    isolation.
    """

    def __init__(
        self,
        snapstore: SnapshotStore,
        epoch_id: int,
        meta: dict,
        attach: Callable[[Any, dict], Any],
        x_lo: float,
        x_hi: float,
    ):
        self._snap = snapstore
        self.epoch_id = epoch_id
        self.meta = meta
        self.x_lo = x_lo
        self.x_hi = x_hi
        self._reader = snapstore.reader(epoch_id)
        self._structure = attach(self._reader, meta)
        self._closed = False

    @property
    def anchor(self) -> dict:
        """The snapshot anchor: epoch id plus re-attachment meta."""
        return {"epoch": self.epoch_id, "meta": self.meta}

    def query3(self, a: float, b: float, c: float) -> List[tuple]:
        """3-sided query against the frozen epoch."""
        if self._closed:
            raise StorageError("snapshot is closed")
        return self._structure.query(a, b, c)

    def query4(self, a: float, b: float, c: float, d: float) -> List[tuple]:
        """4-sided query against the frozen epoch (3-sided + y filter)."""
        return [p for p in self.query3(a, b, c) if p[1] <= d]

    @property
    def count(self) -> int:
        """Live records in the frozen state."""
        return self._structure.count

    def all_points(self) -> List[tuple]:
        """Every point in the frozen state (reads the whole snapshot)."""
        if self._closed:
            raise StorageError("snapshot is closed")
        return self._structure.all_points()

    def close(self) -> None:
        """Release the epoch and its pre-images (idempotent)."""
        if not self._closed:
            self._closed = True
            self._snap.close_epoch(self.epoch_id)

    def __enter__(self) -> "ShardSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ShardSnapshot(epoch={self.epoch_id}, {state})"
