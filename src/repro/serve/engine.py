"""The serving facade: shards + router + executor + admission.

:class:`ServingEngine` is the one object a client holds.  Construction
partitions the initial point set into equal-count x-slabs (quantile
cuts), builds one :class:`~repro.serve.shards.Shard` per slab -- each
with its own store chain, optionally faulty/retrying/cached, each
running the selected 3-sided backend -- and wires the
:class:`~repro.serve.executor.BatchExecutor` and
:class:`~repro.serve.admission.AdmissionController` over them.

The public surface is deliberately small:

- :meth:`execute` -- admission-gated concurrent batch execution;
- :meth:`execute_serial` -- the one-op-at-a-time oracle loop;
- :meth:`insert` / :meth:`delete` / :meth:`query3` / :meth:`query4` --
  single-op conveniences with correct locking;
- :meth:`snapshot` -- an engine-wide frozen view (all shard writer
  locks taken in shard order, so the cut is consistent and
  deadlock-free);
- :meth:`stats` -- per-shard I/O, cache, admission and snapshot state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.faults import FaultSchedule
from repro.resilience.retry import RetryPolicy
from repro.serve.admission import AdmissionController, EngineOverloaded
from repro.serve.executor import BatchExecutor, BatchResult, Op
from repro.serve.shards import Shard, SlabRouter
from repro.serve.snapshots import ShardSnapshot

Point = Tuple[float, float]


class EngineSnapshot:
    """A consistent frozen view across every shard.

    Holds one :class:`~repro.serve.snapshots.ShardSnapshot` per shard,
    all cut at the same instant (no writer could run between the first
    and last capture because the engine held every writer lock).
    Queries scatter to the frozen shards and merge sorted, mirroring
    live execution.
    """

    def __init__(self, router: SlabRouter, snaps: List[ShardSnapshot]):
        self._router = router
        self._snaps = snaps

    def query3(self, a: float, b: float, c: float) -> List[Point]:
        """3-sided query against the frozen cut."""
        merged: List[Point] = []
        for sh, snap in zip(self._router.shards, self._snaps):
            if sh.x_lo <= b and a < sh.x_hi:
                merged.extend(snap.query3(a, b, c))
        return sorted(merged)

    def query4(self, a: float, b: float, c: float, d: float) -> List[Point]:
        """4-sided query against the frozen cut."""
        merged: List[Point] = []
        for sh, snap in zip(self._router.shards, self._snaps):
            if sh.x_lo <= b and a < sh.x_hi:
                merged.extend(snap.query4(a, b, c, d))
        return sorted(merged)

    @property
    def count(self) -> int:
        """Live records in the frozen cut."""
        return sum(snap.count for snap in self._snaps)

    def all_points(self) -> List[Point]:
        """Every point in the frozen cut, sorted."""
        out: List[Point] = []
        for snap in self._snaps:
            out.extend(snap.all_points())
        return sorted(out)

    def close(self) -> None:
        """Release every shard epoch (idempotent)."""
        for snap in self._snaps:
            snap.close()

    def __enter__(self) -> "EngineSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"EngineSnapshot({len(self._snaps)} shards)"


class ServingEngine:
    """Sharded concurrent query-serving engine over the paper's indexes."""

    def __init__(
        self,
        points: Sequence[Point] = (),
        *,
        n_shards: int = 4,
        block_size: int = 32,
        backend: str = "pst",
        pool_capacity: int = 0,
        pool_policy: str = "lru",
        readahead_window: int = 0,
        coalesce_writes: bool = False,
        max_workers: Optional[int] = None,
        io_latency: float = 0.0,
        max_inflight: Optional[int] = None,
        max_queue: int = 16,
        admission_policy: str = "block",
        fault_seed: Optional[int] = None,
        fault_rates: Optional[dict] = None,
        retry_policy: Optional[RetryPolicy] = None,
        extent: float = 1000.0,
        backend_kwargs: Optional[dict] = None,
    ):
        pts = [(float(p[0]), float(p[1])) for p in points]
        if len(set(pts)) != len(pts):
            raise ValueError("points must be distinct")
        boundaries = SlabRouter.quantile_boundaries(
            pts, n_shards, extent=extent
        )
        edges = [float("-inf")] + boundaries + [float("inf")]
        if retry_policy is None and fault_seed is not None:
            # injected faults without a retry layer would surface every
            # transient as a caller-visible error; pair them by default
            retry_policy = RetryPolicy(max_attempts=4)
        shards: List[Shard] = []
        for i in range(n_shards):
            lo, hi = edges[i], edges[i + 1]
            mine = [p for p in pts if lo <= p[0] < hi]
            schedule = None
            if fault_seed is not None:
                schedule = FaultSchedule(
                    seed=fault_seed + i, **(fault_rates or {})
                )
            shards.append(
                Shard(
                    i,
                    lo,
                    hi,
                    block_size=block_size,
                    backend=backend,
                    points=mine,
                    pool_capacity=pool_capacity,
                    pool_policy=pool_policy,
                    readahead_window=readahead_window,
                    coalesce_writes=coalesce_writes,
                    fault_schedule=schedule,
                    retry_policy=retry_policy,
                    io_latency=io_latency,
                    backend_kwargs=backend_kwargs,
                )
            )
        self.router = SlabRouter(shards, boundaries)
        self.executor = BatchExecutor(self.router, max_workers=max_workers)
        self.admission = AdmissionController(
            max_inflight=(
                max_inflight
                if max_inflight is not None
                else self.executor.max_workers
            ),
            max_queue=max_queue,
            policy=admission_policy,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def execute(self, ops: Sequence[Op]) -> BatchResult:
        """Run one batch through admission control and the executor.

        Raises :class:`EngineOverloaded` when the controller sheds the
        batch -- callers decide whether to retry, back off, or drop.
        """
        if not self.admission.acquire():
            raise EngineOverloaded(
                f"batch of {len(ops)} ops shed "
                f"(policy={self.admission.policy!r})"
            )
        try:
            return self.executor.execute(ops)
        finally:
            self.admission.release()

    def execute_serial(self, ops: Sequence[Op]) -> BatchResult:
        """The one-op-at-a-time oracle loop (no admission, no pool)."""
        return self.executor.execute_serial(ops)

    # ------------------------------------------------------------------
    # single-op conveniences
    # ------------------------------------------------------------------
    def insert(self, x: float, y: float) -> bool:
        """Insert one point; False if it was already present."""
        sh = self.router.shard_for_x(float(x))
        with sh.lock.write_locked():
            return sh.insert((x, y))

    def delete(self, x: float, y: float) -> bool:
        """Delete one point; False if it was absent."""
        sh = self.router.shard_for_x(float(x))
        with sh.lock.write_locked():
            return sh.delete((x, y))

    def query3(self, a: float, b: float, c: float) -> List[Point]:
        """3-sided query ``a <= x <= b, y >= c`` across shards."""
        merged: List[Point] = []
        for sh in self.router.shards_for_range(a, b):
            with sh.lock.read_locked():
                merged.extend(sh.query3(a, b, c))
        return sorted(merged)

    def query4(self, a: float, b: float, c: float, d: float) -> List[Point]:
        """4-sided query ``a <= x <= b, c <= y <= d`` across shards."""
        merged: List[Point] = []
        for sh in self.router.shards_for_range(a, b):
            with sh.lock.read_locked():
                merged.extend(sh.query4(a, b, c, d, spanned=sh.covered_by(a, b)))
        return sorted(merged)

    # ------------------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Open a consistent frozen view across every shard.

        Writer locks are taken in shard order (total order, so
        concurrent snapshots cannot deadlock; shard tasks only ever
        hold one lock) and released once every epoch is open.
        """
        for sh in self.router.shards:
            sh.lock.acquire_write()
        try:
            snaps = [sh.snapshot(locked=True) for sh in self.router.shards]
        finally:
            for sh in self.router.shards:
                sh.lock.release_write()
        return EngineSnapshot(self.router, snaps)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Live records across all shards."""
        return self.router.total_count

    def all_points(self) -> List[Point]:
        """Every live point across all shards, sorted."""
        out: List[Point] = []
        for sh in self.router.shards:
            with sh.lock.read_locked():
                out.extend(sh.structure.all_points())
        return sorted(out)

    def stats(self) -> Dict[str, object]:
        """Engine health: per-shard I/O and cache, admission, totals."""
        return {
            "count": self.count,
            "n_shards": len(self.router),
            "boundaries": list(self.router.boundaries),
            "shards": [sh.stats() for sh in self.router.shards],
            "admission": self.admission.snapshot(),
            "total_reads": sum(
                sh.base_store.stats.reads for sh in self.router.shards
            ),
            "total_writes": sum(
                sh.base_store.stats.writes for sh in self.router.shards
            ),
        }

    def close(self) -> None:
        """Shut the executor's thread pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self.executor.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingEngine(shards={len(self.router)}, count={self.count}, "
            f"workers={self.executor.max_workers})"
        )
