"""The serving facade: shards + router + executor + admission.

:class:`ServingEngine` is the one object a client holds.  Construction
partitions the initial point set into equal-count x-slabs (quantile
cuts), builds one :class:`~repro.serve.shards.Shard` per slab -- each
with its own store chain, optionally faulty/retrying/cached, each
running the selected 3-sided backend -- and wires the
:class:`~repro.serve.executor.BatchExecutor` and
:class:`~repro.serve.admission.AdmissionController` over them.

The public surface is deliberately small:

- :meth:`execute` -- admission-gated concurrent batch execution;
- :meth:`execute_serial` -- the one-op-at-a-time oracle loop;
- :meth:`insert` / :meth:`delete` / :meth:`query3` / :meth:`query4` --
  single-op conveniences with correct locking;
- :meth:`snapshot` -- an engine-wide frozen view (all shard writer
  locks taken in shard order, so the cut is consistent and
  deadlock-free);
- :meth:`stats` -- per-shard I/O, cache, admission, replication and
  snapshot state.

With ``replication_factor > 1`` every shard keeps that many full
replica chains (checksummed, snapshot-capable, independently faulty):
writes fan out before acknowledging, reads fail over on corruption or
I/O faults, dead replicas rebuild online from a healthy peer, and
:meth:`scrub` repairs silently rotten blocks in place.  ``deadline=``
on :meth:`execute` bounds a batch end to end -- admission wait, lock
waits, per-op progress, replica fallback -- and returns a
:class:`~repro.serve.executor.PartialResult` naming the served and
missing x-slabs instead of hanging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.faults import FaultSchedule
from repro.resilience.retry import RetryPolicy
from repro.serve.admission import AdmissionController, EngineOverloaded
from repro.serve.deadline import Deadline
from repro.serve.executor import BatchExecutor, BatchResult, Op, PartialResult
from repro.serve.scrub import Scrubber
from repro.serve.shards import Shard, SlabRouter
from repro.serve.snapshots import ShardSnapshot

Point = Tuple[float, float]


class EngineSnapshot:
    """A consistent frozen view across every shard.

    Holds one :class:`~repro.serve.snapshots.ShardSnapshot` per shard,
    all cut at the same instant (no writer could run between the first
    and last capture because the engine held every writer lock).
    Queries scatter to the frozen shards and merge sorted, mirroring
    live execution.
    """

    def __init__(self, router: SlabRouter, snaps: List[ShardSnapshot]):
        self._router = router
        self._snaps = snaps

    def query3(self, a: float, b: float, c: float) -> List[Point]:
        """3-sided query against the frozen cut."""
        merged: List[Point] = []
        for sh, snap in zip(self._router.shards, self._snaps):
            if sh.x_lo <= b and a < sh.x_hi:
                merged.extend(snap.query3(a, b, c))
        return sorted(merged)

    def query4(self, a: float, b: float, c: float, d: float) -> List[Point]:
        """4-sided query against the frozen cut."""
        merged: List[Point] = []
        for sh, snap in zip(self._router.shards, self._snaps):
            if sh.x_lo <= b and a < sh.x_hi:
                merged.extend(snap.query4(a, b, c, d))
        return sorted(merged)

    @property
    def count(self) -> int:
        """Live records in the frozen cut."""
        return sum(snap.count for snap in self._snaps)

    def all_points(self) -> List[Point]:
        """Every point in the frozen cut, sorted."""
        out: List[Point] = []
        for snap in self._snaps:
            out.extend(snap.all_points())
        return sorted(out)

    def close(self) -> None:
        """Release every shard epoch (idempotent)."""
        for snap in self._snaps:
            snap.close()

    def __enter__(self) -> "EngineSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"EngineSnapshot({len(self._snaps)} shards)"


class ServingEngine:
    """Sharded concurrent query-serving engine over the paper's indexes."""

    def __init__(
        self,
        points: Sequence[Point] = (),
        *,
        n_shards: int = 4,
        block_size: int = 32,
        backend: str = "pst",
        pool_capacity: int = 0,
        pool_policy: str = "lru",
        readahead_window: int = 0,
        coalesce_writes: bool = False,
        max_workers: Optional[int] = None,
        io_latency: float = 0.0,
        max_inflight: Optional[int] = None,
        max_queue: int = 16,
        admission_policy: str = "block",
        admission_max_wait: Optional[float] = None,
        fault_seed: Optional[int] = None,
        fault_rates: Optional[dict] = None,
        retry_policy: Optional[RetryPolicy] = None,
        extent: float = 1000.0,
        backend_kwargs: Optional[dict] = None,
        replication_factor: int = 1,
        breaker_threshold: int = 3,
        breaker_probe_after: int = 8,
    ):
        pts = [(float(p[0]), float(p[1])) for p in points]
        if len(set(pts)) != len(pts):
            raise ValueError("points must be distinct")
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        boundaries = SlabRouter.quantile_boundaries(
            pts, n_shards, extent=extent
        )
        edges = [float("-inf")] + boundaries + [float("inf")]
        if retry_policy is None and fault_seed is not None:
            # injected faults without a retry layer would surface every
            # transient as a caller-visible error; pair them by default
            retry_policy = RetryPolicy(max_attempts=4)
        shards: List[Shard] = []
        for i in range(n_shards):
            lo, hi = edges[i], edges[i + 1]
            mine = [p for p in pts if lo <= p[0] < hi]
            schedules = None
            if fault_seed is not None:
                # shard keeps its historical seed; each replica draws
                # from its own stream of it, so replica 0 with factor 1
                # reproduces the pre-replication fault log byte for byte
                schedules = [
                    FaultSchedule(
                        seed=fault_seed + i, stream=j, **(fault_rates or {})
                    )
                    for j in range(replication_factor)
                ]
            shards.append(
                Shard(
                    i,
                    lo,
                    hi,
                    block_size=block_size,
                    backend=backend,
                    points=mine,
                    pool_capacity=pool_capacity,
                    pool_policy=pool_policy,
                    readahead_window=readahead_window,
                    coalesce_writes=coalesce_writes,
                    fault_schedules=schedules,
                    retry_policy=retry_policy,
                    io_latency=io_latency,
                    backend_kwargs=backend_kwargs,
                    replication_factor=replication_factor,
                    breaker_threshold=breaker_threshold,
                    breaker_probe_after=breaker_probe_after,
                )
            )
        self.router = SlabRouter(shards, boundaries)
        self.executor = BatchExecutor(self.router, max_workers=max_workers)
        self.admission = AdmissionController(
            max_inflight=(
                max_inflight
                if max_inflight is not None
                else self.executor.max_workers
            ),
            max_queue=max_queue,
            policy=admission_policy,
            max_wait=admission_max_wait,
        )
        self.scrubber = Scrubber(shards)
        self._closed = False

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def execute(
        self, ops: Sequence[Op], *, deadline: Optional[Deadline] = None
    ) -> BatchResult:
        """Run one batch through admission control and the executor.

        Without a deadline this raises :class:`EngineOverloaded` when
        the controller sheds the batch -- callers decide whether to
        retry, back off, or drop.  With one, the whole batch is bounded
        end to end: the admission wait is capped by the remaining
        budget, and a batch that runs out of time (in the queue or
        mid-execution) comes back as a
        :class:`~repro.serve.executor.PartialResult` naming the served
        and missing x-slabs -- it never hangs and never raises for
        lateness.
        """
        if deadline is None:
            if not self.admission.acquire():
                raise EngineOverloaded(
                    f"batch of {len(ops)} ops shed "
                    f"(policy={self.admission.policy!r})"
                )
            try:
                return self.executor.execute(ops)
            finally:
                self.admission.release()
        bound = deadline.remaining()
        if self.admission.max_wait is not None:
            bound = min(bound, self.admission.max_wait)
        if not self.admission.acquire(max_wait=bound):
            # shed while waiting: nothing was served, report it as a
            # degraded (empty) result rather than an exception
            queues = self.executor.route(ops)
            kind_counts: Dict[str, int] = {}
            for kind, _arg in ops:
                kind_counts[kind] = kind_counts.get(kind, 0) + 1
            return PartialResult(
                results=[None] * len(ops),
                wall_s=0.0,
                n_ops=len(ops),
                shards_touched=0,
                counts=kind_counts,
                complete=False,
                served_slabs=[],
                missing_slabs=sorted(queues),
                deadline_expired=deadline.expired,
            )
        try:
            return self.executor.execute(ops, deadline=deadline)
        finally:
            self.admission.release()

    def execute_serial(self, ops: Sequence[Op]) -> BatchResult:
        """The one-op-at-a-time oracle loop (no admission, no pool)."""
        return self.executor.execute_serial(ops)

    # ------------------------------------------------------------------
    # single-op conveniences
    # ------------------------------------------------------------------
    def insert(self, x: float, y: float) -> bool:
        """Insert one point; False if it was already present."""
        sh = self.router.shard_for_x(float(x))
        with sh.lock.write_locked():
            return sh.insert((x, y))

    def delete(self, x: float, y: float) -> bool:
        """Delete one point; False if it was absent."""
        sh = self.router.shard_for_x(float(x))
        with sh.lock.write_locked():
            return sh.delete((x, y))

    def query3(self, a: float, b: float, c: float) -> List[Point]:
        """3-sided query ``a <= x <= b, y >= c`` across shards."""
        merged: List[Point] = []
        for sh in self.router.shards_for_range(a, b):
            with sh.lock.read_locked():
                merged.extend(sh.query3(a, b, c))
        return sorted(merged)

    def query4(self, a: float, b: float, c: float, d: float) -> List[Point]:
        """4-sided query ``a <= x <= b, c <= y <= d`` across shards."""
        merged: List[Point] = []
        for sh in self.router.shards_for_range(a, b):
            with sh.lock.read_locked():
                merged.extend(sh.query4(a, b, c, d, spanned=sh.covered_by(a, b)))
        return sorted(merged)

    # ------------------------------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Open a consistent frozen view across every shard.

        Writer locks are taken in shard order (total order, so
        concurrent snapshots cannot deadlock; shard tasks only ever
        hold one lock) and released once every epoch is open.
        """
        for sh in self.router.shards:
            sh.lock.acquire_write()
        try:
            snaps = [sh.snapshot(locked=True) for sh in self.router.shards]
        finally:
            for sh in self.router.shards:
                sh.lock.release_write()
        return EngineSnapshot(self.router, snaps)

    # ------------------------------------------------------------------
    # self-healing surface
    # ------------------------------------------------------------------
    def scrub(self, *, lock_timeout: Optional[float] = None) -> dict:
        """One scrub pass: verify every replica block, repair rot from
        healthy peers, rebuild dead replicas.  Returns the pass
        summary; cumulative totals live on :attr:`scrubber`."""
        return self.scrubber.scrub_once(lock_timeout=lock_timeout)

    def heal(self) -> int:
        """Rebuild every dead replica across all shards; returns how
        many were rebuilt."""
        return sum(sh.heal() for sh in self.router.shards)

    def kill_replica(
        self, shard_id: int, replica_index: int, reason: str = "injected kill"
    ) -> None:
        """Force-fail one replica (chaos testing).  The next write,
        :meth:`heal` or :meth:`scrub` rebuilds it from a live peer."""
        sh = self.router.shards[shard_id]
        with sh.lock.write_locked():
            sh.replica_set.kill(replica_index, reason)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Live records across all shards."""
        return self.router.total_count

    def all_points(self) -> List[Point]:
        """Every live point across all shards, sorted."""
        out: List[Point] = []
        for sh in self.router.shards:
            with sh.lock.read_locked():
                out.extend(sh.structure.all_points())
        return sorted(out)

    def stats(self) -> Dict[str, object]:
        """Engine health: per-shard I/O and cache, admission,
        replication, scrub and shed-rate totals.

        ``total_reads`` / ``total_writes`` count the *primary* replica
        chains only (the served I/O the benchmarks gate);
        ``total_replica_reads`` / ``total_replica_writes`` count every
        copy, so the redundancy overhead is visible as their ratio.
        """
        admission = self.admission.snapshot()
        shards = self.router.shards
        replication = {
            "factor": max(sh.replica_set.factor for sh in shards),
            "live_replicas": sum(len(sh.replica_set.live) for sh in shards),
            "failovers": sum(sh.replica_set.failovers for sh in shards),
            "rebuilds": sum(sh.replica_set.rebuilds for sh in shards),
            "rebuild_failures": sum(
                sh.replica_set.rebuild_failures for sh in shards
            ),
            "read_fallbacks": sum(
                sh.replica_set.read_fallbacks for sh in shards
            ),
            "breaker_opened": sum(
                r.breaker.times_opened
                for sh in shards
                for r in sh.replica_set.replicas
            ),
            "crc_mismatches": sum(
                r.checksummed.mismatches
                for sh in shards
                for r in sh.replica_set.replicas
            ),
        }
        return {
            "count": self.count,
            "n_shards": len(self.router),
            "boundaries": list(self.router.boundaries),
            "shards": [sh.stats() for sh in shards],
            "admission": admission,
            "shed_rate": admission["shed_rate"],
            "replication": replication,
            "scrub": self.scrubber.summary(),
            "total_reads": sum(
                sh.base_store.stats.reads for sh in shards
            ),
            "total_writes": sum(
                sh.base_store.stats.writes for sh in shards
            ),
            "total_replica_reads": sum(
                r.base_store.stats.reads
                for sh in shards
                for r in sh.replica_set.replicas
            ),
            "total_replica_writes": sum(
                r.base_store.stats.writes
                for sh in shards
                for r in sh.replica_set.replicas
            ),
        }

    def close(self) -> None:
        """Shut the scrubber and executor pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self.scrubber.stop()
            self.executor.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingEngine(shards={len(self.router)}, count={self.count}, "
            f"workers={self.executor.max_workers})"
        )
