"""Admission control: bounded queue, load shedding, backpressure.

The serving tier refuses to melt down: at most ``max_inflight``
batches execute at once, and past that the controller applies its
policy --

- ``"block"``: up to ``max_queue`` submitting threads wait their turn
  (classic bounded queue; work is preserved, latency absorbs the
  overload), and overflow beyond the bound is shed;
- ``"shed"``: a submission that cannot start immediately is rejected
  (latency is preserved, work is shed) -- the engine surfaces the
  rejection as :class:`EngineOverloaded`.

Either way :meth:`backpressure` exposes a boolean high-watermark
signal so cooperative clients can slow down *before* the hard edge.
Every decision is visible in the metrics registry --
``admitted`` / ``shed`` counters and the ``admission_queue_depth`` /
``admission_inflight`` gauges -- and in the structured summary
:meth:`snapshot` returns for bench export.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.obs.metrics import counter, gauge

_UNSET = object()


class EngineOverloaded(RuntimeError):
    """The admission controller shed this request (queue full)."""


class AdmissionController:
    """Counting semaphore with a bounded wait queue and a shed policy.

    ``max_wait`` bounds how long a ``"block"``-policy submitter may sit
    in the queue: past it the request is shed (counted in the same
    ``shed`` counter as queue overflow), so a stalled engine converts
    waiting work into visible rejections instead of an unbounded
    latency tail.  ``None`` (default) preserves the wait-forever
    behaviour; :meth:`acquire` accepts a per-call override, which is
    how the engine threads a query deadline into admission.
    """

    def __init__(
        self,
        *,
        max_inflight: int = 4,
        max_queue: int = 16,
        policy: str = "block",
        high_watermark: float = 0.5,
        max_wait: Optional[float] = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if policy not in ("block", "shed"):
            raise ValueError("policy must be 'block' or 'shed'")
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1]")
        if max_wait is not None and max_wait < 0:
            raise ValueError("max_wait must be >= 0 (or None)")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.policy = policy
        self.max_wait = max_wait
        self._hwm = max(1, int(max_queue * high_watermark)) if max_queue else 1
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self.admitted = 0
        self.sheds = 0
        self.timed_out = 0

    # ------------------------------------------------------------------
    def acquire(self, max_wait=_UNSET) -> bool:
        """Admit or shed one request; True means the caller may proceed
        (and must :meth:`release` when done).

        ``max_wait`` overrides the controller-wide bound for this call
        (``None`` = wait forever); it only matters under the ``block``
        policy, where a wait past the bound sheds the request.
        """
        wait_bound = self.max_wait if max_wait is _UNSET else max_wait
        with self._cond:
            if self._inflight < self.max_inflight:
                self._admit_locked()
                return True
            if self.policy == "shed" or self._waiting >= self.max_queue:
                # "shed" never waits; "block" waits while the bounded
                # queue has room and sheds beyond it -- an unbounded
                # wait line would defeat the point of a bounded queue.
                self._shed_locked()
                return False
            deadline = (
                None if wait_bound is None else time.monotonic() + wait_bound
            )
            self._waiting += 1
            gauge("admission_queue_depth", layer="serve").set(self._waiting)
            try:
                while self._inflight >= self.max_inflight:
                    if deadline is None:
                        self._cond.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # waited past the bound: shed from the queue
                        self.timed_out += 1
                        self._shed_locked()
                        return False
                    self._cond.wait(remaining)
            finally:
                self._waiting -= 1
                gauge("admission_queue_depth", layer="serve").set(self._waiting)
            self._admit_locked()
            return True

    def _shed_locked(self) -> None:
        self.sheds += 1
        counter("shed", layer="serve").inc()

    def _admit_locked(self) -> None:
        self._inflight += 1
        self.admitted += 1
        counter("admitted", layer="serve").inc()
        gauge("admission_inflight", layer="serve").set(self._inflight)

    def release(self) -> None:
        """Return one admission slot and wake a waiter."""
        with self._cond:
            self._inflight -= 1
            gauge("admission_inflight", layer="serve").set(self._inflight)
            self._cond.notify()

    # ------------------------------------------------------------------
    def backpressure(self) -> bool:
        """High-watermark signal: the queue is filling, slow down."""
        with self._cond:
            return (
                self._inflight >= self.max_inflight
                and self._waiting >= self._hwm
            )

    @property
    def inflight(self) -> int:
        """Requests currently admitted and executing."""
        with self._cond:
            return self._inflight

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for admission."""
        with self._cond:
            return self._waiting

    def snapshot(self) -> Dict[str, object]:
        """Structured summary for ``stats()`` and bench export."""
        with self._cond:
            decided = self.admitted + self.sheds
            return {
                "policy": self.policy,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "max_wait": self.max_wait,
                "inflight": self._inflight,
                "queue_depth": self._waiting,
                "admitted": self.admitted,
                "shed": self.sheds,
                "shed_timed_out": self.timed_out,
                "shed_rate": (self.sheds / decided) if decided else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(policy={self.policy!r}, "
            f"inflight={self._inflight}/{self.max_inflight}, "
            f"queued={self._waiting}/{self.max_queue}, shed={self.sheds})"
        )
