"""A writer-preferring read-write lock for per-shard concurrency.

Each shard serializes mutation behind one writer while admitting any
number of concurrent readers -- the classic single-writer /
multi-reader discipline the serving tier's batch executor relies on.
Writer preference (readers queue behind a waiting writer) keeps a
steady query stream from starving updates, which matters under the
sustained mixed read/write regime of Yi's *Dynamic Indexability*.

The implementation is a plain condition variable; it never spins and
holds no references to the protected state, so a shard can expose it
directly.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Single-writer / multi-reader lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Block until no writer holds or is waiting for the lock."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release one reader hold."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock is exclusively free, then take it."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` -- shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` -- exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"ReadWriteLock(readers={self._readers}, writer={self._writer}, "
            f"waiting={self._writers_waiting})"
        )
