"""A writer-preferring read-write lock for per-shard concurrency.

Each shard serializes mutation behind one writer while admitting any
number of concurrent readers -- the classic single-writer /
multi-reader discipline the serving tier's batch executor relies on.
Writer preference (readers queue behind a waiting writer) keeps a
steady query stream from starving updates, which matters under the
sustained mixed read/write regime of Yi's *Dynamic Indexability*.

Both acquire methods take an optional ``timeout``: ``None`` (default)
blocks forever and returns True, a number bounds the wait and returns
False on expiry without taking the lock -- the primitive the serving
tier's deadline propagation stands on (a shard task whose deadline ran
out must report its slab unserved, not hang on a busy writer).

The implementation is a plain condition variable; it never spins and
holds no references to the protected state, so a shard can expose it
directly.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional


class ReadWriteLock:
    """Single-writer / multi-reader lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        """Take a shared hold; False if ``timeout`` expired first.

        ``timeout=None`` blocks until acquired (always True);
        ``timeout=0`` is a non-blocking try.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer or self._writers_waiting:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()
            self._readers += 1
            return True

    def release_read(self) -> None:
        """Release one reader hold."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        """Take the exclusive hold; False if ``timeout`` expired first.

        A timed-out writer withdraws its preference claim and wakes any
        readers it was holding back, so a failed acquisition leaves the
        lock exactly as it found it.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                        self._cond.wait(remaining)
                    else:
                        self._cond.wait()
            finally:
                self._writers_waiting -= 1
                if self._writers_waiting == 0:
                    # a timed-out writer must wake readers it blocked
                    self._cond.notify_all()
            self._writer = True
            return True

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` -- shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` -- exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"ReadWriteLock(readers={self._readers}, writer={self._writer}, "
            f"waiting={self._writers_waiting})"
        )
