"""Self-healing replication: replica chains, circuit breakers, failover.

The paper's Theorems 4-5 price indexability in *redundancy* -- how many
times a record may be stored -- against access overhead.  This module
spends that budget operationally: each logical shard runs as a
:class:`ReplicaSet` of ``replication_factor`` full store chains

    ``BlockStore -> Checksummed -> Snapshot -> [Faulty -> Retrying]
    -> [BufferPool]``

each with its own 3-sided structure.  Writes fan out to every live
replica before they are acknowledged (so an acknowledged write survives
any single replica loss); reads go to the primary and *fall over* to a
peer when a read surfaces a latched permanent fault, an exhausted retry
budget, or a checksum mismatch.  A per-replica :class:`CircuitBreaker`
(closed -> open on consecutive faults -> half-open probe) keeps the
read path from hammering a replica that keeps failing.

Replicas are deterministic state machines: they apply the same
operations in the same order, so healthy replicas are block-for-block
mirrors (same block ids, same payloads).  That mirror property is what
makes the two repair paths cheap:

- the scrubber (:mod:`repro.serve.scrub`) copies a single rotten block
  from a peer that still passes its checksum;
- :meth:`ReplicaSet.rebuild_dead` clones a whole dead replica from a
  healthy peer's frozen snapshot -- block-level copy through a
  :class:`~repro.serve.snapshots.SnapshotStore` epoch, then the
  backend's ``snapshot_meta``/``attach`` remounts the structure over
  the clone.

Fault determinism is preserved per replica: each replica's
:class:`~repro.resilience.faults.FaultSchedule` shares the shard seed
but draws from its own ``stream``, so the whole chaos run -- faults,
failovers, rebuilds, repairs -- is a pure function of the seed.

Everything is observable: ``failovers``, ``read_fallbacks``,
``replica_rebuilds`` counters and ``breaker_state`` gauges land in the
metrics registry and ride the repro-bench export.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional

from repro.io.blockstore import BlockStore, StorageError
from repro.io.bufferpool import BufferPool
from repro.io.checksum import ChecksummedStore, CorruptBlockError, record_crc
from repro.obs.metrics import counter, gauge
from repro.resilience.errors import FaultInjectionError
from repro.resilience.faulty_store import FaultyStore
from repro.resilience.retry import RetryingStore, RetryPolicy
from repro.serve.deadline import Deadline, DeadlineExpired
from repro.serve.snapshots import SnapshotStore

#: Exceptions that retire the current replica attempt and move on to a
#: peer: injected I/O errors (transient without a retry layer, latched
#: permanents, exhausted budgets) and checksum mismatches.
#: ``SimulatedCrash`` is a BaseException and always propagates.
FAILOVER_ERRORS = (FaultInjectionError, CorruptBlockError)


class ReplicaSetExhausted(RuntimeError):
    """Every replica of a shard failed the operation."""


class CircuitBreaker:
    """Closed / open / half-open breaker driven by consecutive faults.

    - **closed**: operations flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    - **open**: operations are refused (:meth:`allow` is False); after
      ``probe_after`` refusals the breaker moves to half-open.
    - **half-open**: one probe flows; success closes the breaker,
      failure re-opens it (and the refusal count restarts).

    Everything is count-driven, not clock-driven, so breaker behaviour
    is deterministic under the seeded chaos benchmarks.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    _STATE_INT = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def __init__(
        self,
        failure_threshold: int = 3,
        probe_after: int = 8,
        labels: Optional[dict] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_after < 1:
            raise ValueError("probe_after must be >= 1")
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self._labels = dict(labels or {})
        self._lock = threading.Lock()
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.times_opened = 0
        self._refused = 0

    def _transition(self, state: str) -> None:
        self.state = state
        if self._labels:
            gauge("breaker_state", layer="serve", **self._labels).set(
                self._STATE_INT[state]
            )

    @property
    def as_int(self) -> int:
        """0 = closed, 1 = half-open, 2 = open (gauge encoding)."""
        return self._STATE_INT[self.state]

    def allow(self) -> bool:
        """May an operation flow through right now?"""
        with self._lock:
            if self.state == self.OPEN:
                self._refused += 1
                if self._refused >= self.probe_after:
                    self._transition(self.HALF_OPEN)
                    return True
                return False
            return True

    def record_success(self) -> None:
        """An operation through this replica succeeded."""
        with self._lock:
            self.consecutive_failures = 0
            if self.state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """An operation through this replica failed."""
        with self._lock:
            self.consecutive_failures += 1
            tripped = (
                self.state == self.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold
            )
            if tripped and self.state != self.OPEN:
                self._refused = 0
                self.times_opened += 1
                counter(
                    "breaker_opened", layer="serve", **self._labels
                ).inc()
                self._transition(self.OPEN)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self.consecutive_failures}, "
            f"opened={self.times_opened})"
        )


class ReplicaSpec:
    """The chain recipe shared by every replica of one shard."""

    __slots__ = (
        "block_size", "pool_capacity", "pool_policy", "readahead_window",
        "coalesce_writes", "retry_policy", "io_latency",
        "breaker_threshold", "breaker_probe_after",
    )

    def __init__(
        self,
        block_size: int,
        *,
        pool_capacity: int = 0,
        pool_policy: str = "lru",
        readahead_window: int = 0,
        coalesce_writes: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        io_latency: float = 0.0,
        breaker_threshold: int = 3,
        breaker_probe_after: int = 8,
    ):
        self.block_size = block_size
        self.pool_capacity = pool_capacity
        self.pool_policy = pool_policy
        self.readahead_window = readahead_window
        self.coalesce_writes = coalesce_writes
        self.retry_policy = retry_policy
        self.io_latency = io_latency
        self.breaker_threshold = breaker_threshold
        self.breaker_probe_after = breaker_probe_after


class Replica:
    """One full store chain + attached structure for a logical shard.

    The chain is ``BlockStore -> ChecksummedStore -> SnapshotStore
    [-> FaultyStore -> RetryingStore] [-> BufferPool]``; the structure
    (built or attached by the owning :class:`ReplicaSet`) lives on top.
    """

    def __init__(
        self,
        replica_id: int,
        spec: ReplicaSpec,
        fault_schedule=None,
        *,
        labels: Optional[dict] = None,
    ):
        self.replica_id = replica_id
        self.spec = spec
        self.schedule = fault_schedule
        base = BlockStore(spec.block_size)
        self.base_store = base
        if spec.io_latency > 0:
            # simulated device time; the sleep releases the GIL so
            # threaded shard execution genuinely overlaps I/O waits
            def _latency(op: str, _bid: int, _delay: float = spec.io_latency):
                if op in ("read", "write"):
                    time.sleep(_delay)

            base.add_observer(_latency)
        self.checksummed = ChecksummedStore(base)
        self.snapstore = SnapshotStore(self.checksummed)
        store: Any = self.snapstore
        self.faulty: Optional[FaultyStore] = None
        if fault_schedule is not None:
            store = self.faulty = FaultyStore(store, fault_schedule)
        if spec.retry_policy is not None:
            store = RetryingStore(store, spec.retry_policy)
        self.pool: Optional[BufferPool] = None
        if spec.pool_capacity > 0:
            store = self.pool = BufferPool(
                store,
                spec.pool_capacity,
                policy=spec.pool_policy,
                readahead_window=spec.readahead_window,
                coalesce_writes=spec.coalesce_writes,
            )
        self.store = store
        self.structure: Any = None
        self.breaker = CircuitBreaker(
            spec.breaker_threshold, spec.breaker_probe_after, labels=labels
        )
        self.alive = True
        self.failed_reason: Optional[str] = None

    def fail(self, reason: str) -> None:
        """Retire this replica (half-applied write, injected kill)."""
        self.alive = False
        self.failed_reason = reason

    def flush(self) -> None:
        """Flush any pooled dirty frames down the chain."""
        if self.pool is not None:
            self.pool.flush()

    def write_mark(self) -> int:
        """Monotone count of logical writes into this chain.

        An operation that raised with the mark unchanged performed no
        mutation (pooled or physical), so it is safe to retry on this
        replica after repairing whatever block its read tripped on.
        """
        mark = self.base_store.stats.writes
        if self.pool is not None:
            mark += self.pool.logical_writes
        return mark

    def __repr__(self) -> str:
        state = "live" if self.alive else f"dead({self.failed_reason})"
        return f"Replica({self.replica_id}, {state}, {self.breaker.state})"


class ReplicaSet:
    """Primary + peers for one shard: fan-out writes, fallback reads.

    The caller (the shard, under its executor-managed lock) is the
    concurrency discipline; the replica set only decides *which copies*
    an operation touches and what happens when one fails.
    """

    def __init__(
        self,
        shard_id: int,
        replicas: List[Replica],
        *,
        attach: Callable[[Any, Any], Any],
        auto_rebuild: bool = True,
        op_retry_bound: int = 64,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        if op_retry_bound < 1:
            raise ValueError("op_retry_bound must be >= 1")
        self.shard_id = shard_id
        self.replicas = list(replicas)
        self._attach = attach
        self.auto_rebuild = auto_rebuild
        #: abort/heal/retry attempts per replica per op.  An op writing W
        #: blocks survives an attempt with probability ~(1 - corrupt_rate)**W,
        #: so the bound is a fixed budget, not a function of store size;
        #: exhausting it rejects the op cleanly (all replicas rolled back).
        self.op_retry_bound = op_retry_bound
        self.failovers = 0
        self.rebuilds = 0
        self.rebuild_failures = 0
        self.read_fallbacks = 0

    # ------------------------------------------------------------------
    @property
    def factor(self) -> int:
        """Configured replication factor (live or not)."""
        return len(self.replicas)

    @property
    def live(self) -> List[Replica]:
        """Replicas currently serving."""
        return [r for r in self.replicas if r.alive]

    @property
    def primary(self) -> Replica:
        """First live replica (or replica 0 when none are live)."""
        for r in self.replicas:
            if r.alive:
                return r
        return self.replicas[0]

    # ------------------------------------------------------------------
    # write fan-out
    # ------------------------------------------------------------------
    def apply_write(self, fn: Callable[[Any], Any]):
        """Apply a mutation to every live replica; ack on >= 1 success.

        Caller holds the shard's writer lock.  Each replica applies the
        mutation as an *abortable transaction* (:meth:`_apply_one`): a
        replica that faults mid-mutation is rolled back to its pre-op
        state via the snapshot layer's undo log, so a failed apply
        never leaves a half-applied copy.  The first successful
        replica's return value is the acknowledged result; replicas
        that failed while a peer acked have diverged (they are one op
        behind) and are retired for rebuild.  When *every* replica
        fails, all of them were rolled back -- the op is rejected with
        :class:`ReplicaSetExhausted` but the set stays consistent and
        keeps serving.
        """
        if len(self.replicas) == 1:
            # unreplicated fast path: bit-identical to the pre-replica
            # serving tier, faults propagate to the caller unchanged
            return fn(self.replicas[0].structure)
        result: Any = None
        acked = False
        failed: List[Replica] = []
        last_exc: Optional[Exception] = None
        for r in self.replicas:
            if not r.alive or r.structure is None:
                continue
            try:
                out = self._apply_one(r, fn)
            except FAILOVER_ERRORS as exc:
                last_exc = exc
                r.breaker.record_failure()
                failed.append(r)
                continue
            r.breaker.record_success()
            if not acked:
                result = out
                acked = True
        if not acked:
            counter("writes_rejected", layer="serve").inc()
            raise ReplicaSetExhausted(
                f"shard {self.shard_id}: all {self.factor} replicas "
                f"failed the write (all rolled back, none applied)"
            ) from last_exc
        for r in failed:
            if r.alive:
                r.fail(f"diverged: peer acked an op this replica failed")
            self.failovers += 1
            counter("failovers", layer="serve").inc()
        if self.auto_rebuild:
            self.rebuild_dead()
        return result

    def _apply_one(self, r: Replica, fn: Callable[[Any], Any]):
        """Apply ``fn`` to one replica as an abortable transaction.

        A COW epoch opened before the op is a per-op undo log: on any
        injected fault or checksum mismatch the pool is discarded, the
        epoch rolled back and the structure re-attached from its pre-op
        meta, leaving the replica exactly where it started.  Before the
        op is acked, every block the epoch wrote is CRC-swept (no I/O):
        corrupt faults scribble only written blocks, so this catches
        silent write-rot while the undo log can still cure it -- an
        acked op never leaves latent rot behind.  After a rollback,
        rot is repaired (the rollback itself cures write-rot; a peer
        copy covers the rest), latched broken sectors are re-armed,
        and the op retried -- faults on this replica alone should not
        force a failover, let alone lose the write.  Flushing before
        the op makes disk state complete (so the rollback target is
        well defined); flushing after makes the op durable before it
        is acked.
        """
        last_exc: Optional[Exception] = None
        for _ in range(self.op_retry_bound):
            r.flush()
            meta = r.structure.snapshot_meta()
            epoch = r.snapstore.open_epoch()
            try:
                out = fn(r.structure)
                r.flush()
                self._verify_epoch(r, epoch)
            except FAILOVER_ERRORS as exc:
                last_exc = exc
                self._abort(r, epoch, meta)
                cured = True
                if isinstance(exc, CorruptBlockError):
                    # rollback restores pre-images, which cures write-rot;
                    # anything still rotten needs a peer copy
                    cured = r.checksummed.verify(exc.bid) or self.repair_block(
                        r, exc.bid
                    )
                if cured and self.heal_latched(r):
                    continue  # replica healthy again: retry the op
                raise
            except BaseException:
                # SimulatedCrash etc.: not ours to absorb
                r.snapstore.close_epoch(epoch)
                raise
            else:
                r.snapstore.close_epoch(epoch)
                return out
        raise last_exc  # retry bound hit: treat as replica failure

    @staticmethod
    def _verify_epoch(r: Replica, epoch: int) -> None:
        """CRC-sweep the blocks an open epoch wrote (no I/O charged).

        Raises :class:`CorruptBlockError` on the first mismatch so the
        normal abort/repair/retry path handles silent write-rot before
        the op is acknowledged.
        """
        for bid in r.snapstore.epoch_writes(epoch):
            if r.checksummed.verify(bid):
                continue
            expected = r.checksummed.crc_of(bid) or 0
            try:
                actual = record_crc(r.checksummed.peek(bid))
            except StorageError:
                continue  # freed during the epoch: nothing to serve rot
            raise CorruptBlockError(bid, expected, actual)

    def heal_latched(self, r: Replica) -> bool:
        """Re-arm a replica's latched broken sectors after a rollback.

        A permanent fault latches a block broken until it is rewritten
        from a verified copy.  Post-rollback the block's own payload
        *is* verified (the undo log restored the pre-op bytes), so the
        block is rewritten with itself through the snapshot layer --
        honest write I/O, the simulated remap -- and the latch cleared.
        Blocks that do not verify fall back to a peer copy.  Returns
        False when a broken block could not be re-armed (no verified
        source anywhere).
        """
        if r.faulty is None:
            return True
        for bid in list(r.faulty.broken_blocks):
            if not r.checksummed.verify(bid):
                if not self.repair_block(r, bid):
                    return False
                continue
            try:
                payload = r.checksummed.peek(bid)
            except StorageError:
                r.faulty.heal(bid)  # block freed meanwhile: just unlatch
                continue
            r.faulty.heal(bid)
            r.snapstore.write(bid, payload)
            if r.pool is not None:
                r.pool.invalidate(bid)
        return True

    def _abort(self, r: Replica, epoch: int, meta: Any) -> None:
        """Rewind one replica to its pre-op state (writer lock held).

        Order matters: the pool's frames (including pinned catalog
        frames of the doomed structure instance) describe the aborted
        future and are discarded first; the epoch's undo log then
        restores the disk; finally the structure is re-attached from
        the pre-op meta over the rewound chain.  Undo writes go through
        the checksum layer but below fault injection, so an abort draws
        nothing from the fault schedule; the re-attach reads through
        the full chain and a fault there retires the replica.
        """
        if r.pool is not None:
            r.pool.discard_all()
        r.snapstore.rollback_epoch(epoch)
        counter("write_aborts", layer="serve").inc()
        try:
            r.structure = self._attach(r.store, meta)
        except FAILOVER_ERRORS:
            r.fail("re-attach after abort failed")
            raise

    def repair_block(self, replica: Replica, bid: int) -> bool:
        """Overwrite one rotten block with a verified peer copy.

        The repair write goes through the replica's snapshot layer
        (below fault injection: no schedule draw, COW pre-images kept),
        heals any latched fault state for the block and invalidates a
        stale pool frame.  Returns False when no live peer holds a
        verified copy.

        Because replicas are block-for-block mirrors, the *requester's*
        recorded CRC is ground truth for every copy of ``bid`` -- so a
        donor that has never read the block (checksums are learned on
        first read) is still acceptable when its payload hashes to the
        requester's expectation.
        """
        expected = replica.checksummed.crc_of(bid)
        donor_records = None
        for d in self.replicas:
            if d is replica or not d.alive:
                continue
            try:
                payload = d.checksummed.peek(bid)
            except StorageError:
                continue
            if expected is not None:
                if record_crc(payload) != expected:
                    continue
            elif d.checksummed.crc_of(bid) is None or not d.checksummed.verify(bid):
                continue
            donor_records = payload
            break
        if donor_records is None:
            return False
        try:
            replica.snapstore.write(bid, donor_records)
        except StorageError:
            # the bid is not live on this replica (freed here): the
            # mirror diverged at this block, nothing to repair in place
            return False
        if replica.faulty is not None:
            replica.faulty.heal(bid)
        if replica.pool is not None:
            replica.pool.invalidate(bid)
        counter("block_repairs", layer="serve").inc()
        return True

    # ------------------------------------------------------------------
    # read-one / fallback
    # ------------------------------------------------------------------
    def read_any(
        self, fn: Callable[[Any], Any], *, deadline: Optional[Deadline] = None
    ):
        """Serve a read from the first replica that can answer.

        Caller holds the shard's reader lock.  Replica order is primary
        first; replicas whose breaker is open are skipped (except for
        scheduled half-open probes).  A failed read heals what it can
        in place -- a latched broken sector or rotten block is repaired
        from verified bytes (its own post-rollback payload or a peer
        copy, both content-identical to what concurrent readers expect,
        so this is safe under the reader lock) and the same replica
        retried once -- then falls over to the next copy; between
        attempts an expired ``deadline`` raises :class:`DeadlineExpired`
        instead of trying further copies -- the deadline-aware degraded
        read.
        """
        if len(self.replicas) == 1:
            return fn(self.replicas[0].structure)
        last_exc: Optional[Exception] = None
        tried = 0
        for r in self.replicas:
            if not r.alive or r.structure is None:
                continue
            if not r.breaker.allow():
                continue
            if tried and deadline is not None and deadline.expired:
                raise DeadlineExpired(
                    f"shard {self.shard_id}: deadline ran out before a "
                    f"fallback replica could answer"
                )
            tried += 1
            for attempt in range(self.op_retry_bound):
                try:
                    out = fn(r.structure)
                except FAILOVER_ERRORS as exc:
                    last_exc = exc
                    r.breaker.record_failure()
                    self.read_fallbacks += 1
                    counter("read_fallbacks", layer="serve").inc()
                    # each retry needs the failure healed first -- a fresh
                    # fault may strike the retry, but draws advance, so a
                    # healable replica converges within the bound
                    if self._heal_for_read(r, exc):
                        continue
                    break  # unhealable here: fall over to the next copy
                r.breaker.record_success()
                return out
        if tried == 0:
            # every live replica's breaker refused: availability beats
            # breaker purity, force one attempt on the primary
            primary = self.primary
            if primary.alive and primary.structure is not None:
                return fn(primary.structure)
        raise ReplicaSetExhausted(
            f"shard {self.shard_id}: no replica could serve the read"
        ) from last_exc

    def _heal_for_read(self, r: Replica, exc: Exception) -> bool:
        """Best-effort in-place repair after a failed read.

        Rot is repaired from a peer copy; latched broken sectors are
        re-armed from their own (CRC-verified) payload.  Every repair
        writes bytes identical to what healthy readers already see, so
        it is safe under the shard's reader lock.  Returns True when a
        retry on the same replica has a chance.
        """
        try:
            healed = True
            if isinstance(exc, CorruptBlockError):
                healed = self.repair_block(r, exc.bid)
            return self.heal_latched(r) and healed
        except (StorageError, FaultInjectionError):
            return False

    # ------------------------------------------------------------------
    # failover + online rebuild
    # ------------------------------------------------------------------
    def kill(self, index: int, reason: str = "injected kill") -> None:
        """Force-fail one replica (chaos tests / benchmarks)."""
        r = self.replicas[index]
        if r.alive:
            r.fail(reason)
            self.failovers += 1
            counter("failovers", layer="serve").inc()

    def rebuild_dead(self) -> int:
        """Clone every dead replica from a healthy peer (writer lock held).

        Returns the number of replicas rebuilt.  A rebuild that fails
        (the donor faulted mid-clone) leaves the replica dead; the next
        write or heal cycle retries.
        """
        source = next(
            (r for r in self.replicas if r.alive and r.structure is not None),
            None,
        )
        if source is None:
            return 0
        rebuilt = 0
        for i, r in enumerate(self.replicas):
            if r.alive:
                continue
            try:
                self.replicas[i] = self._clone_from(source, r)
            except (StorageError, FaultInjectionError):
                self.rebuild_failures += 1
                counter("rebuild_failures", layer="serve").inc()
                continue
            rebuilt += 1
            self.rebuilds += 1
            counter("replica_rebuilds", layer="serve").inc()
        return rebuilt

    def _clone_from(self, source: Replica, dead: Replica) -> Replica:
        """Block-level clone of ``source`` into a fresh chain.

        Reads go through a frozen :class:`SnapshotStore` epoch on the
        donor (honest read I/O, consistent cut even if a pool above is
        mid-flush) and land via the checksummed ``place`` channel on
        the clone, so the rebuilt replica starts fully checksummed with
        the donor's exact block ids.  The dead replica's fault schedule
        carries over: the simulated environment stays hostile, only the
        latched broken blocks are gone (new chain, new latches).

        A donor block with latent rot does not abort the clone.  First
        the *dead* replica's disk is tried: retirement happens after
        rollback, so its blocks are a consistent pre-op mirror, and a
        payload hashing to the donor's recorded CRC is self-certifying
        -- in that case the clone gets the good copy and the donor is
        repaired in place.  Only when both copies are bad does the
        clone inherit the rotten payload verbatim together with the
        donor's recorded CRC, so the rot stays detectable rather than
        blocking the rebuild forever.
        """
        source.flush()
        meta = source.structure.snapshot_meta()
        epoch = source.snapstore.open_epoch()
        try:
            reader = source.snapstore.reader(epoch)
            fresh = Replica(
                dead.replica_id,
                dead.spec,
                fault_schedule=dead.schedule,
                labels={
                    "shard": str(self.shard_id),
                    "replica": str(dead.replica_id),
                },
            )
            for bid in sorted(source.base_store.block_ids()):
                try:
                    fresh.checksummed.place(bid, reader.read(bid).records)
                except CorruptBlockError:
                    # read I/O already charged; salvage or inherit the rot
                    expected = source.checksummed.crc_of(bid)
                    salvaged = self._salvage_from_dead(dead, bid, expected)
                    if salvaged is not None:
                        fresh.checksummed.place(bid, salvaged)
                        source.snapstore.write(bid, salvaged)
                        if source.faulty is not None:
                            source.faulty.heal(bid)
                        if source.pool is not None:
                            source.pool.invalidate(bid)
                        counter("block_repairs", layer="serve").inc()
                    else:
                        fresh.checksummed.place(
                            bid, source.checksummed.peek(bid), crc=expected
                        )
            fresh.base_store.reserve_ids(source.base_store.next_bid)
            fresh.structure = self._attach(fresh.store, meta)
        finally:
            source.snapstore.close_epoch(epoch)
        return fresh

    @staticmethod
    def _salvage_from_dead(dead: Replica, bid: int, expected) -> Optional[list]:
        """Fetch ``bid`` from a retired replica's disk iff it hashes to
        ``expected`` -- a CRC match makes the payload self-certifying
        no matter how the replica died."""
        if expected is None:
            return None
        try:
            payload = dead.checksummed.peek(bid)
        except StorageError:
            return None
        if record_crc(payload) != expected:
            return None
        return payload

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Replication health for ``Shard.stats()`` and bench export."""
        return {
            "factor": self.factor,
            "live": len(self.live),
            "failovers": self.failovers,
            "rebuilds": self.rebuilds,
            "rebuild_failures": self.rebuild_failures,
            "read_fallbacks": self.read_fallbacks,
            "breaker_states": [r.breaker.state for r in self.replicas],
            "breaker_opened": sum(
                r.breaker.times_opened for r in self.replicas
            ),
            "crc_mismatches": sum(
                r.checksummed.mismatches for r in self.replicas
            ),
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaSet(shard={self.shard_id}, factor={self.factor}, "
            f"live={len(self.live)}, failovers={self.failovers})"
        )
