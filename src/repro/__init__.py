"""repro: Arge-Samoladas-Vitter, "On Two-Dimensional Indexability and
Optimal Range Search Indexing" (PODS 1999), reproduced in Python.

The package is organized exactly like the paper:

- :mod:`repro.io` -- the I/O cost model: a simulated disk of B-record
  blocks with exact transfer counting.
- :mod:`repro.indexability` -- Section 1-2's framework: workloads,
  indexing schemes, redundancy/access-overhead, the Fibonacci workload
  and the Redundancy-Theorem lower bounds (Theorems 1-3).
- :mod:`repro.core` -- the contributions: the 3-sided sweep scheme
  (Theorem 4), the layered 4-sided scheme (Theorem 5), the Lemma-1 small
  structure, the external priority search tree (Theorem 6) with its
  bubble-up schedulers, and the 4-sided dynamic structure (Theorem 7).
- :mod:`repro.substrates` -- weight-balanced B-trees, B+-trees, blocked
  lists, and interval management via the diagonal-corner reduction.
- :mod:`repro.baselines` -- the classical structures the paper's
  introduction motivates against (R-tree, k-d tree, grid file, z-order,
  B-tree-with-filter, linear scan).
- :mod:`repro.workloads` -- point-set and query generators for the
  experiments in EXPERIMENTS.md.

Quickstart::

    from repro.io import BlockStore
    from repro import ExternalPrioritySearchTree

    store = BlockStore(block_size=64)
    pst = ExternalPrioritySearchTree(store, [(i, i % 97) for i in range(5000)])
    hits = pst.query(100, 200, 50)      # x in [100, 200], y >= 50
    print(len(hits), store.stats)
"""

from repro.geometry import (
    Rect,
    ThreeSidedQuery,
    FourSidedQuery,
    TwoSidedQuery,
    DiagonalCornerQuery,
    Orientation,
)
from repro.io import BlockStore, BufferPool, IOStats
from repro.core import (
    ThreeSidedSweepIndex,
    FourSidedLayeredIndex,
    SmallThreeSidedStructure,
    ExternalPrioritySearchTree,
    ExternalRangeTree,
)
from repro.core.scheduling import (
    EagerScheduler,
    HeavyLeafScheduler,
    CreditScheduler,
    ChildSplitScheduler,
)
from repro.substrates import BPlusTree, WeightBalancedBTree, BlockedSequence
from repro.substrates.interval_tree import ExternalIntervalTree
from repro.substrates.av_interval_tree import SlabIntervalTree
from repro.core.static_index import StaticFourSidedIndex, StaticThreeSidedIndex
from repro.core.log_method import LogMethodThreeSidedIndex

__version__ = "1.0.0"

__all__ = [
    "Rect",
    "ThreeSidedQuery",
    "FourSidedQuery",
    "TwoSidedQuery",
    "DiagonalCornerQuery",
    "Orientation",
    "BlockStore",
    "BufferPool",
    "IOStats",
    "ThreeSidedSweepIndex",
    "FourSidedLayeredIndex",
    "SmallThreeSidedStructure",
    "ExternalPrioritySearchTree",
    "ExternalRangeTree",
    "ExternalIntervalTree",
    "SlabIntervalTree",
    "StaticThreeSidedIndex",
    "StaticFourSidedIndex",
    "LogMethodThreeSidedIndex",
    "EagerScheduler",
    "HeavyLeafScheduler",
    "CreditScheduler",
    "ChildSplitScheduler",
    "BPlusTree",
    "WeightBalancedBTree",
    "BlockedSequence",
    "__version__",
]
