"""Write-ahead journaling: multi-block updates that survive crashes.

A PST insert touches many blocks (path rewrites, leaf splits, Y-set
spills); a crash in the middle leaves the on-disk structure violating
its own invariants.  :class:`JournaledStore` wraps any store with
transactions that make such an update atomic:

- ``begin()`` opens a transaction.  Writes and frees are *buffered in
  memory* (reads see the buffer -- read-your-writes); allocations pass
  through, because block ids must be real, and are optionally logged
  so recovery can reclaim them.
- ``commit(meta)`` appends every buffered write, every free, a
  *superblock update* carrying ``meta`` (the structure's re-attachment
  state), and finally a commit record ``C`` to an on-disk journal.
  **The block write that carries ``C`` is the atomic commit point.**
  Only then are the buffered operations applied to the main blocks,
  after which the journal is truncated.
- ``recover()`` (after a crash) reads the journal: a transaction whose
  ``C`` made it durable is *redone* (the apply phase is idempotent, so
  recovery may itself crash and be re-run); one without ``C`` is
  discarded -- its buffered writes never touched the main blocks, so
  the disk is already the last committed state.

Durability of the journal anchor uses the classic dual-slot superblock:
two anchor blocks written alternately with a version number, so a torn
anchor write destroys at most the slot being written and
:meth:`attach` takes the survivor with the highest version.

Everything here costs *real* simulated I/O through the wrapped store
(journal block writes, anchor updates, the apply phase), so the price
of crash consistency is visible in the same counters the paper's
experiments use.  Without transactions the wrapper is a pure
passthrough and adds zero physical I/O.

Guarantee (proved by the recovery verifier): after any crash injected
by :class:`~repro.resilience.FaultyStore` -- between operations, at a
named crash point, or mid-write with a torn block -- ``recover()``
restores exactly the state of the last committed transaction, and a
structure re-attached from the recovered ``meta`` passes its own
``check_invariants()``.

Known limit: blocks allocated inside a transaction that never commits
leak unless ``log_allocs=True`` (each alloc then costs one journal
append).  Leaks waste space but never corrupt state, since block ids
are never reused.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.io.blockstore import Block, BlockCapacityError, StorageError
from repro.obs.metrics import counter
from repro.resilience.errors import RecoveryError, SimulatedCrash


class JournaledStore:
    """Transactional storage wrapper with write-ahead-journal recovery."""

    def __init__(self, store, *, log_allocs: bool = False):
        self._store = store
        self._log_allocs = log_allocs
        a0, a1 = store.alloc(), store.alloc()
        self._anchor_bids: Tuple[int, int] = (a0, a1)
        self._meta_bid = store.alloc()
        self._journal_bids: List[int] = []
        self._anchor_version = 0
        self._txn: Optional[Dict[str, Any]] = None
        self._txn_seq = 0
        store.write(self._meta_bid, [("META", None, None)])
        self._write_anchor()

    # ------------------------------------------------------------------
    # re-attachment after a crash
    # ------------------------------------------------------------------
    @property
    def anchor_bids(self) -> Tuple[int, int]:
        """The dual superblock slots a recovery driver must remember."""
        return self._anchor_bids

    @classmethod
    def attach(
        cls, store, anchor_bids: Tuple[int, int], *, log_allocs: bool = False
    ) -> "JournaledStore":
        """Re-open a journaled store from its anchor blocks.

        Models the post-reboot mount: all in-memory state is gone, only
        the disk and the well-known anchor location survive.  Call
        :meth:`recover` next.
        """
        best = None
        for bid in anchor_bids:
            try:
                records = store.read(bid).records
            except StorageError:
                continue
            for r in records:
                if r and r[0] == "ANCHOR":
                    if best is None or r[1] > best[1]:
                        best = r
        if best is None:
            raise RecoveryError(f"no valid anchor in blocks {anchor_bids}")
        obj = cls.__new__(cls)
        obj._store = store
        obj._log_allocs = log_allocs
        obj._anchor_bids = tuple(anchor_bids)
        obj._anchor_version = best[1]
        obj._journal_bids = list(best[2])
        obj._meta_bid = best[3]
        obj._txn = None
        obj._txn_seq = best[4]
        return obj

    def recover(self) -> Any:
        """Replay or discard the journal; return the last committed meta.

        Idempotent: the apply phase only rewrites blocks with their
        committed contents and tolerates already-applied frees, so a
        crash during recovery is survived by recovering again.
        """
        entries: List[Tuple] = []
        for jb in self._journal_bids:
            try:
                entries.extend(self._store.read(jb).records)
            except StorageError:
                continue  # chain block lost before its write: nothing in it
        committed = [e[1] for e in entries if e and e[0] == "C"]
        committed_set = set(committed)
        outcome = "clean"
        for tid in committed:
            self._apply(
                [e for e in entries if len(e) > 1 and e[1] == tid],
                tolerant=True,
            )
            outcome = "redo"
        # discard open transactions: reclaim their logged allocations
        for e in entries:
            if e and e[0] == "A" and e[1] not in committed_set:
                try:
                    self._store.free(e[2])
                except StorageError:
                    pass
                outcome = "undo" if outcome == "clean" else outcome
        self._checkpoint()
        counter("recoveries", layer="journal", outcome=outcome).inc()
        meta_records = self._store.read(self._meta_bid).records
        if not meta_records or meta_records[0][0] != "META":
            raise RecoveryError("superblock unreadable after replay")
        return meta_records[0][2]

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        """True while a transaction is open."""
        return self._txn is not None

    def begin(self) -> int:
        """Open a transaction; returns its id."""
        if self._txn is not None:
            raise RuntimeError("transaction already open (no nesting)")
        tid = self._txn_seq
        self._txn_seq += 1
        self._txn = {
            "id": tid,
            "writes": {},   # bid -> records (the buffer)
            "order": [],    # bids in first-write order (journal layout)
            "frees": [],    # bids freed, in order
            "freed": set(),
            "allocs": [],   # bids allocated inside the txn
        }
        return tid

    def commit(self, meta: Any = None) -> int:
        """Make the open transaction durable, then apply it.

        ``meta`` is stored in the superblock as part of the same atomic
        transaction; :meth:`recover` returns the last committed value,
        which is how a structure's re-attachment state travels across
        a crash.
        """
        txn = self._txn
        if txn is None:
            raise RuntimeError("no open transaction")
        tid = txn["id"]
        records: List[Tuple] = []
        for bid in txn["order"]:
            if bid in txn["writes"]:
                records.append(("W", tid, bid, list(txn["writes"][bid])))
        for bid in txn["frees"]:
            records.append(("F", tid, bid))
        records.append(("W", tid, self._meta_bid, [("META", tid, meta)]))
        records.append(("C", tid))
        self._append_journal(records)
        # ---- the C record is durable: point of no return ----
        self._txn = None
        counter("txns", layer="journal", outcome="committed").inc()
        self._apply(records, tolerant=False)
        self._checkpoint()
        return tid

    def abort(self) -> None:
        """Roll back the open transaction.

        The main blocks were never touched, so only in-transaction
        allocations are reclaimed and any partial journal appends are
        truncated.  A structure whose in-memory state saw the aborted
        operations must be re-attached from the last committed meta.
        """
        txn = self._txn
        if txn is None:
            raise RuntimeError("no open transaction")
        self._txn = None
        for bid in reversed(txn["allocs"]):
            try:
                self._store.free(bid)
            except StorageError:
                pass
        self._checkpoint()
        counter("txns", layer="journal", outcome="aborted").inc()

    @contextmanager
    def transaction(self, meta=None):
        """``with js.transaction(meta_fn):`` -- commit on success.

        ``meta`` may be a value or a zero-argument callable evaluated
        at commit time (so it captures post-operation structure state).
        A ``SimulatedCrash`` leaves the disk exactly as the crash found
        it (a dead process cannot roll back); any other exception
        aborts the transaction.
        """
        self.begin()
        try:
            yield self
        except SimulatedCrash:
            self._txn = None   # memory is gone; disk stays as-is
            raise
        except BaseException:
            if self._txn is not None:
                self.abort()
            raise
        else:
            self.commit(meta() if callable(meta) else meta)

    # ------------------------------------------------------------------
    # storage protocol (buffered under a transaction)
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the wrapped store's ``B``)."""
        return self._store.block_size

    @property
    def stats(self):
        """Physical I/O counters of the wrapped store."""
        return self._store.stats

    @property
    def physical_store(self):
        """The wrapped store whose counters are the physical truth."""
        return getattr(self._store, "physical_store", self._store)

    @property
    def crash_hook(self):
        """Forward named crash points to the wrapped store (or None)."""
        return getattr(self._store, "crash_hook", None)

    def add_observer(self, callback) -> None:
        """Delegate observer registration to the wrapped store."""
        self._store.add_observer(callback)

    def remove_observer(self, callback) -> None:
        """Delegate observer removal to the wrapped store."""
        self._store.remove_observer(callback)

    def alloc(self) -> int:
        """Allocate a real block (journaled when ``log_allocs``)."""
        bid = self._store.alloc()
        if self._txn is not None:
            self._txn["allocs"].append(bid)
            if self._log_allocs:
                self._append_journal([("A", self._txn["id"], bid)])
        return bid

    def read(self, bid: int) -> Block:
        """Read through the transaction buffer (read-your-writes)."""
        txn = self._txn
        if txn is not None:
            if bid in txn["freed"]:
                raise StorageError(f"read of block {bid} freed in transaction")
            buffered = txn["writes"].get(bid)
            if buffered is not None:
                return Block(bid, list(buffered))
        return self._store.read(bid)

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Buffer a write under a transaction; write through otherwise."""
        data = list(records)
        if len(data) > self.block_size:
            raise BlockCapacityError(
                f"block {bid}: {len(data)} records > block size "
                f"{self.block_size}"
            )
        txn = self._txn
        if txn is None:
            self._store.write(bid, data)
            return
        if bid in txn["freed"]:
            raise StorageError(f"write to block {bid} freed in transaction")
        if bid not in txn["writes"]:
            self._require_allocated(bid, txn)
            txn["order"].append(bid)
        txn["writes"][bid] = data

    def free(self, bid: int) -> None:
        """Defer a free to commit time under a transaction."""
        txn = self._txn
        if txn is None:
            self._store.free(bid)
            return
        if bid in txn["freed"]:
            raise StorageError(f"double free of block {bid} in transaction")
        self._require_allocated(bid, txn)
        txn["writes"].pop(bid, None)
        txn["freed"].add(bid)
        txn["frees"].append(bid)

    def peek(self, bid: int):
        """Inspect through the transaction buffer (no I/O charged)."""
        txn = self._txn
        if txn is not None:
            if bid in txn["freed"]:
                raise StorageError(f"peek of block {bid} freed in transaction")
            buffered = txn["writes"].get(bid)
            if buffered is not None:
                return list(buffered)
        return self._store.peek(bid)

    @property
    def blocks_in_use(self) -> int:
        """Blocks allocated on the wrapped store."""
        return self._store.blocks_in_use

    def flush(self) -> None:
        """Pass-through flush."""
        self._store.flush()

    def _require_allocated(self, bid: int, txn) -> None:
        if bid in txn["writes"] or bid in txn["allocs"]:
            return
        try:
            self._store.peek(bid)
        except StorageError:
            raise StorageError(
                f"operation on unallocated block {bid} in transaction"
            ) from None

    # ------------------------------------------------------------------
    # journal mechanics
    # ------------------------------------------------------------------
    def _append_journal(self, records: List[Tuple]) -> None:
        """Durably append records in fresh chain blocks (chunks of B).

        Chain blocks are written before the anchor references them, so
        a crash mid-append leaves either an unreachable (leaked) block
        or a chain whose tail lacks the records -- in both cases the
        transaction's ``C`` is absent and recovery discards it.
        """
        B = self.block_size
        new_bids: List[int] = []
        for lo in range(0, len(records), B):
            jb = self._store.alloc()
            self._store.write(jb, records[lo:lo + B])
            new_bids.append(jb)
            counter("journal_blocks", layer="journal").inc()
        self._journal_bids.extend(new_bids)
        self._write_anchor()

    def _apply(self, records: List[Tuple], *, tolerant: bool) -> None:
        """Apply W/F records to the main blocks (idempotent replay)."""
        for e in records:
            if e[0] == "W":
                try:
                    self._store.write(e[2], e[3])
                except StorageError:
                    if not tolerant:
                        raise
            elif e[0] == "F":
                try:
                    self._store.free(e[2])
                except StorageError:
                    if not tolerant:
                        raise

    def _checkpoint(self) -> None:
        """Truncate the journal (its transactions are fully applied)."""
        for jb in self._journal_bids:
            try:
                self._store.free(jb)
            except StorageError:
                pass
        self._journal_bids = []
        self._write_anchor()

    def _write_anchor(self) -> None:
        """Dual-slot versioned superblock write (torn-write safe)."""
        self._anchor_version += 1
        slot = self._anchor_bids[self._anchor_version % 2]
        self._store.write(
            slot,
            [(
                "ANCHOR",
                self._anchor_version,
                tuple(self._journal_bids),
                self._meta_bid,
                self._txn_seq,
            )],
        )

    def __repr__(self) -> str:
        return (
            f"JournaledStore(anchor={self._anchor_bids}, "
            f"journal_blocks={len(self._journal_bids)}, "
            f"txn={'open' if self._txn else 'none'})"
        )
