"""Crash-recovery verification: crash everywhere, recover, diff an oracle.

The verifier drives a structure through an insert workload under a
:class:`~repro.resilience.FaultyStore` whose schedule injects crashes
both *between* storage operations and at the *named crash points* the
structures annotate (see :func:`repro.io.hooks.crash_point`).  Every
operation runs inside a :class:`~repro.resilience.JournaledStore`
transaction whose commit carries the structure's re-attachment meta.

At every injected crash it plays the failure protocol honestly:

1. all Python objects built over the store are discarded (process
   memory is gone; only the disk and the anchor block ids survive),
2. ``JournaledStore.attach`` + ``recover()`` replay or discard the
   journal -- through the *still-faulty* store, so a crash during
   recovery is itself recovered from,
3. the structure is re-attached from the recovered meta and checked:
   its own ``check_invariants()`` must pass and a battery of 3-sided
   queries must match an in-memory oracle that tracks exactly the
   committed points,
4. the workload resumes; whether the interrupted operation's commit
   record survived decides (via the recovered state, not wishful
   bookkeeping) if the operation is retried.

A structure plugs in through a :class:`StructureAdapter`; the external
PST adapter is built in.  Verification reads go through a *separate*
attachment over the raw store so checking state does not perturb the
fault schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.geometry import INF, NEG_INF
from repro.io.blockstore import BlockStore
from repro.resilience.errors import RecoveryError, SimulatedCrash
from repro.resilience.faults import FaultSchedule
from repro.resilience.faulty_store import FaultyStore
from repro.resilience.journal import JournaledStore

Point = Tuple[float, float]


class _SiteCounter:
    """Minimal profiling wrapper: counts operations and crash points."""

    def __init__(self, store):
        self._store = store
        self.ops = 0
        self.points = 0

    @property
    def block_size(self):
        return self._store.block_size

    @property
    def stats(self):
        return self._store.stats

    def alloc(self):
        self.ops += 1
        return self._store.alloc()

    def read(self, bid):
        self.ops += 1
        return self._store.read(bid)

    def write(self, bid, records):
        self.ops += 1
        self._store.write(bid, records)

    def free(self, bid):
        self.ops += 1
        self._store.free(bid)

    def peek(self, bid):
        return self._store.peek(bid)

    def flush(self):
        self._store.flush()

    def crash_hook(self, tag):
        self.points += 1


@dataclass
class StructureAdapter:
    """How the verifier talks to one structure kind."""

    build: Callable[[Any], Any]            # store -> fresh empty structure
    attach: Callable[[Any, Any], Any]      # (store, meta) -> structure
    snapshot: Callable[[Any], Any]         # structure -> meta
    insert: Callable[[Any, Point], None]   # apply one workload point
    query: Callable[[Any, float, float, float], List[Point]]
    check: Callable[[Any], None]           # raises on invariant violation


def pst_adapter(
    scheduler_factory: Optional[Callable[[], Any]] = None,
    strict_ysets: bool = True,
) -> StructureAdapter:
    """Adapter for :class:`~repro.core.external_pst.
    ExternalPrioritySearchTree` (eager scheduling by default, where the
    strict Y-set invariant holds at every commit boundary)."""
    from repro.core.external_pst import ExternalPrioritySearchTree

    def build(store):
        kwargs = {}
        if scheduler_factory is not None:
            kwargs["scheduler"] = scheduler_factory()
        # allow_spill lets tiny-B runs (the harness goes down to B=8)
        # overflow internal nodes into continuation blocks
        return ExternalPrioritySearchTree(store, allow_spill=True, **kwargs)

    def attach(store, meta):
        scheduler = scheduler_factory() if scheduler_factory else None
        return ExternalPrioritySearchTree.attach(store, meta, scheduler=scheduler)

    return StructureAdapter(
        build=build,
        attach=attach,
        snapshot=lambda s: s.snapshot_meta(),
        insert=lambda s, p: s.insert(*p),
        query=lambda s, a, b, c: s.query(a, b, c),
        check=lambda s: s.check_invariants(strict_ysets=strict_ysets),
    )


@dataclass
class RecoveryReport:
    """What one verification run did and proved."""

    block_size: int
    seed: int
    n_points: int
    crashes: int = 0               # injected crashes survived
    recoveries: int = 0            # successful recover() completions
    recovery_retries: int = 0     # crashes *during* recovery, re-recovered
    commits: int = 0
    committed_interrupted: int = 0  # crashed ops whose commit was durable
    checks: int = 0                # full invariant+oracle verifications
    queries_diffed: int = 0
    fault_log: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"B={self.block_size} seed={self.seed} n={self.n_points}: "
            f"{self.crashes} crashes, {self.recoveries} recoveries "
            f"({self.recovery_retries} re-recovered), {self.checks} checks, "
            f"{self.queries_diffed} queries diffed"
        )


def _profile_sites(
    adapter: StructureAdapter, points: Sequence[Point], block_size: int
) -> Tuple[int, int]:
    """Dry-run the workload to count operations and crash points."""
    counterstore = _SiteCounter(BlockStore(block_size))
    s = adapter.build(counterstore)
    for p in points:
        adapter.insert(s, p)
    return counterstore.ops, counterstore.points


def _pick_sites(
    total: int, n: int, rng: random.Random, lo_frac: float = 0.02
) -> List[int]:
    """``n`` indices spread over [lo_frac*total, total), one per evenly
    sized stratum with a seeded jitter inside it -- so coverage is even
    but different seeds explore different exact sites."""
    if total <= 0 or n <= 0:
        return []
    lo = int(total * lo_frac)
    hi = max(lo + 1, total - 1)
    if n == 1:
        return [rng.randint(lo, hi)]
    step = (hi - lo) / n
    return sorted(
        {
            min(hi, lo + int(i * step + rng.random() * max(1.0, step)))
            for i in range(n)
        }
    )


def _verify_state(
    adapter: StructureAdapter,
    raw_store: BlockStore,
    meta: Any,
    oracle: set,
    rng: random.Random,
    n_queries: int,
) -> int:
    """Invariants + oracle query diff on a fault-free attachment.

    Returns the number of queries diffed; raises AssertionError on any
    mismatch.
    """
    if meta is None:
        assert not oracle, (
            f"nothing recoverable but oracle holds {len(oracle)} points"
        )
        return 0
    s = adapter.attach(raw_store, meta)
    adapter.check(s)
    diffed = 0
    # full sweep: every committed point, nothing else
    got = sorted(adapter.query(s, NEG_INF, INF, NEG_INF))
    want = sorted(oracle)
    assert got == want, (
        f"full-range diff: {len(got)} reported vs {len(want)} committed"
    )
    diffed += 1
    if oracle:
        xs = sorted(p[0] for p in oracle)
        ys = sorted(p[1] for p in oracle)
        for _ in range(n_queries):
            a, b = sorted((rng.choice(xs), rng.choice(xs)))
            c = rng.choice(ys)
            got = sorted(adapter.query(s, a, b, c))
            want = sorted(
                p for p in oracle if a <= p[0] <= b and p[1] >= c
            )
            assert got == want, f"query ({a},{b},{c}) diff"
            diffed += 1
    return diffed


def verify_recovery(
    points: Sequence[Point],
    *,
    block_size: int,
    seed: int = 0,
    n_crashes: int = 24,
    n_queries: int = 10,
    adapter: Optional[StructureAdapter] = None,
    check_final: bool = True,
) -> RecoveryReport:
    """Run the crash-recover-resume protocol over an insert workload.

    Crashes are scheduled at ``n_crashes`` sites, half between storage
    operations and half at named crash points, spread evenly across a
    profiled dry run of the same workload.  Every crash is recovered
    and verified; the report records exactly what happened.
    """
    if adapter is None:
        adapter = pst_adapter()
    points = [(float(x), float(y)) for x, y in points]
    ops_total, points_total = _profile_sites(adapter, points, block_size)
    rng = random.Random(seed ^ 0x5EED)
    op_sites = _pick_sites(ops_total, n_crashes - n_crashes // 2, rng)
    point_sites = _pick_sites(points_total, n_crashes // 2, rng)

    report = RecoveryReport(
        block_size=block_size, seed=seed, n_points=len(points)
    )
    raw = BlockStore(block_size)
    schedule = FaultSchedule(
        seed, crash_at_ops=op_sites, crash_at_points=point_sites
    )
    faulty = FaultyStore(raw, schedule)

    def recover_attach(anchor) -> Tuple[JournaledStore, Any, Any]:
        """Mount + recover through the faulty store, surviving crashes
        during recovery itself (sites are one-shot, so this converges)."""
        for _attempt in range(n_crashes + 2):
            try:
                js2 = JournaledStore.attach(faulty, anchor)
                meta2 = js2.recover()
                report.recoveries += 1
                if meta2 is None:
                    return js2, None, None
                return js2, adapter.attach(js2, meta2), meta2
            except SimulatedCrash:
                report.crashes += 1
                report.recovery_retries += 1
        raise RecoveryError("recovery did not converge")

    # ---- bootstrap: create the journaled store and the empty structure
    while True:
        try:
            js = JournaledStore(faulty)
            anchor = js.anchor_bids
            js.begin()
            structure = adapter.build(js)
            js.commit(adapter.snapshot(structure))
            report.commits += 1
            break
        except SimulatedCrash:
            # crash before the first commit: the disk holds nothing we
            # need; start over with a fresh journal on the same disk
            report.crashes += 1

    oracle: set = set()
    i = 0
    while i < len(points):
        p = points[i]
        try:
            js.begin()
            adapter.insert(structure, p)
            js.commit(adapter.snapshot(structure))
            report.commits += 1
            oracle.add(p)
            i += 1
        except SimulatedCrash:
            report.crashes += 1
            js, structure, meta = recover_attach(anchor)
            # did the interrupted commit become durable?  The disk, not
            # the harness, is the source of truth.
            if structure is not None and structure.count == len(oracle) + 1:
                oracle.add(p)
                report.committed_interrupted += 1
                i += 1
            elif structure is not None:
                assert structure.count == len(oracle), (
                    f"recovered count {structure.count} matches neither "
                    f"{len(oracle)} nor {len(oracle) + 1}"
                )
            report.queries_diffed += _verify_state(
                adapter, raw, meta, oracle, rng, n_queries
            )
            report.checks += 1
            if structure is None:
                # crashed before anything committed: rebuild from scratch
                while True:
                    try:
                        js.begin()
                        structure = adapter.build(js)
                        js.commit(adapter.snapshot(structure))
                        report.commits += 1
                        break
                    except SimulatedCrash:
                        report.crashes += 1
                        js, structure, _ = recover_attach(anchor)
                        if structure is not None:
                            break

    if check_final:
        report.queries_diffed += _verify_state(
            adapter, raw, adapter.snapshot(structure), oracle, rng, n_queries
        )
        report.checks += 1
    report.fault_log = schedule.log_lines()
    return report
