"""Exception hierarchy of the fault model.

Real disks fail in kinds, not in general: a read may fail once (bus
reset, checksum retry) or forever (dead sector), a write may be
rejected, or the machine may die with a block half-written.  Each kind
gets its own exception so retry and recovery policies can react per
kind instead of pattern-matching messages.

``SimulatedCrash`` deliberately subclasses :class:`BaseException`, not
``Exception``: a crash is not an error condition code under test may
handle -- structure code that caught ``Exception`` broadly would
otherwise swallow the "process died" signal and keep mutating state no
real process could reach.  Only the test harness / recovery driver
catches it.
"""

from __future__ import annotations


class FaultInjectionError(Exception):
    """Base class of all injected I/O errors."""


class TransientIOError(FaultInjectionError):
    """A one-shot failure: retrying the same operation succeeds."""


class PermanentIOError(FaultInjectionError):
    """A persistent failure: every retry on the same block fails too."""


class RetryExhaustedError(FaultInjectionError):
    """A bounded retry policy gave up; the last error is chained."""


class RecoveryError(Exception):
    """The journal was unreadable or inconsistent during recovery."""


class SimulatedCrash(BaseException):
    """The simulated process died here; only recovery drivers catch it.

    Carries the crash site: either ``("op", index)`` for a crash
    scheduled between storage operations or ``("point", tag, index)``
    for a named :func:`repro.io.hooks.crash_point`.
    """

    def __init__(self, site):
        super().__init__(f"simulated crash at {site}")
        self.site = site
