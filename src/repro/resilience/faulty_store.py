"""A storage wrapper that makes the disk lie, deterministically.

:class:`FaultyStore` presents the standard storage protocol over any
inner store and injects the faults a :class:`~repro.resilience.faults.
FaultSchedule` dictates:

- **read errors**: transient (``TransientIOError``; an immediate retry
  succeeds) or permanent (``PermanentIOError``; the block is latched
  broken and every later access fails the same way).
- **write errors**: as above, with nothing applied to the disk.
- **torn writes**: the process dies mid-write, leaving the block with
  its *stale* previous records or a *truncated* prefix of the new ones,
  then raises ``SimulatedCrash``.
- **crashes**: ``SimulatedCrash`` immediately before an operation, or
  at a named :func:`repro.io.hooks.crash_point` inside a structure's
  update path (the ``crash_hook`` attribute wrappers forward to).

With an empty schedule every operation passes straight through and the
wrapper adds **zero physical I/O** -- the counters live in the inner
store and move only on operations that actually reach it (asserted in
``tests/test_resilience_faults.py``; the CI bench gate never sees this
wrapper at all).

Injected faults are counted in the :mod:`repro.obs.metrics` registry
under ``faults{layer=io,kind=...}`` so recovery cost shows up in bench
exports next to the I/O counts.
"""

from __future__ import annotations

from typing import Any, Iterable, Set

from repro.obs.metrics import counter
from repro.resilience import faults as F
from repro.resilience.errors import (
    PermanentIOError,
    SimulatedCrash,
    TransientIOError,
)
from repro.resilience.faults import FaultSchedule


def _rotted(data, u: float):
    """Deterministically rot a record list (pure function of data, u).

    Non-empty blocks get one record replaced by a rot sentinel; empty
    blocks grow one, so the corruption is always detectable.
    """
    rot = ("__bitrot__", int(u * 1e6))
    if not data:
        return [rot]
    out = list(data)
    out[int(u * len(out))] = rot
    return out


class FaultyStore:
    """Fault-injecting storage wrapper (standard storage protocol)."""

    def __init__(self, store, schedule: FaultSchedule):
        self._store = store
        self.schedule = schedule
        self._broken_read: Set[int] = set()   # bids with latched read faults
        self._broken_write: Set[int] = set()  # bids with latched write faults
        #: when False the schedule is not consulted (no RNG draws) and all
        #: operations pass through -- used to provision a structure before
        #: exposing it to the hostile environment (chaos tests the *serving*
        #: path, not the bulk load)
        self.armed = True

    # ------------------------------------------------------------------
    # protocol delegation
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the wrapped store's ``B``)."""
        return self._store.block_size

    @property
    def stats(self):
        """Physical I/O counters of the wrapped store."""
        return self._store.stats

    @property
    def physical_store(self):
        """The wrapped store whose counters are the physical truth."""
        return getattr(self._store, "physical_store", self._store)

    def add_observer(self, callback) -> None:
        """Delegate observer registration to the wrapped store."""
        self._store.add_observer(callback)

    def remove_observer(self, callback) -> None:
        """Delegate observer removal to the wrapped store."""
        self._store.remove_observer(callback)

    def peek(self, bid: int):
        """Pass-through inspection (no I/O, no faults: debugging aid)."""
        return self._store.peek(bid)

    @property
    def blocks_in_use(self) -> int:
        """Blocks allocated on the wrapped store."""
        return self._store.blocks_in_use

    def block_ids(self):
        """Ids of all allocated blocks (introspection passthrough)."""
        return self._store.block_ids()

    def flush(self) -> None:
        """Pass-through flush."""
        self._store.flush()

    # ------------------------------------------------------------------
    # faulted operations
    # ------------------------------------------------------------------
    def _consult(self, op: str, bid):
        if not self.armed:
            return -1, None
        index, decision = self.schedule.next_op(op, bid)
        if decision is not None and decision[0] == F.CRASH_OP:
            self._count_fault(F.CRASH_OP)
            raise SimulatedCrash(("op", index, op, bid))
        return index, decision

    def alloc(self) -> int:
        """Allocate on the inner store (crash-before is the only fault)."""
        self._consult("alloc", None)
        return self._store.alloc()

    def free(self, bid: int) -> None:
        """Free on the inner store (crash-before is the only fault)."""
        self._consult("free", bid)
        self._store.free(bid)

    def read(self, bid: int):
        """Read through, possibly raising an injected error."""
        index, decision = self._consult("read", bid)
        if bid in self._broken_read:
            raise PermanentIOError(f"read of broken block {bid}")
        if decision is not None:
            kind = decision[0]
            self._count_fault(kind)
            if kind == F.READ_TRANSIENT:
                raise TransientIOError(f"transient read error on block {bid}")
            if kind == F.READ_PERMANENT:
                self._broken_read.add(bid)
                raise PermanentIOError(f"read of broken block {bid}")
        return self._store.read(bid)

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Write through, possibly erroring, tearing, or crashing."""
        index, decision = self._consult("write", bid)
        if bid in self._broken_write:
            raise PermanentIOError(f"write to broken block {bid}")
        if decision is not None:
            kind = decision[0]
            self._count_fault(kind)
            if kind == F.WRITE_TRANSIENT:
                raise TransientIOError(f"transient write error on block {bid}")
            if kind == F.WRITE_PERMANENT:
                self._broken_write.add(bid)
                raise PermanentIOError(f"write to broken block {bid}")
            if kind == F.TORN_STALE:
                # the write never reached the platter: stale block, dead
                # process
                raise SimulatedCrash(("torn-stale", index, "write", bid))
            if kind == F.TORN_TRUNCATED:
                data = list(records)
                keep = int(decision[1] * len(data))
                self._store.write(bid, data[:keep])
                raise SimulatedCrash(("torn-truncated", index, "write", bid))
            if kind == F.CORRUPT_BLOCK:
                # the write lands, then the medium silently rots the
                # block *beneath* every wrapper (including a checksum
                # layer, which will notice on the next verified read)
                data = list(records)
                self._store.write(bid, data)
                self.physical_store.scribble(bid, _rotted(data, decision[1]))
                return
        self._store.write(bid, records)

    # ------------------------------------------------------------------
    # repair support
    # ------------------------------------------------------------------
    @property
    def broken_blocks(self):
        """Bids currently latched broken (read or write), sorted."""
        return sorted(self._broken_read | self._broken_write)

    def heal(self, bid: int) -> None:
        """Clear latched permanent faults on one block.

        The repair channel's half of a block repair or replica rebuild:
        once the scrubber rewrote the block from a healthy copy, the
        simulated dead sector is remapped and later accesses succeed
        (until the schedule injects a fresh fault).
        """
        self._broken_read.discard(bid)
        self._broken_write.discard(bid)

    # ------------------------------------------------------------------
    # named crash points (see repro.io.hooks.crash_point)
    # ------------------------------------------------------------------
    def crash_hook(self, tag: str) -> None:
        """Die here if the schedule picked this crash-point index."""
        if self.schedule.next_point(tag):
            self._count_fault(F.CRASH_POINT)
            raise SimulatedCrash(("point", self.schedule.points_seen - 1, tag))

    # ------------------------------------------------------------------
    @staticmethod
    def _count_fault(kind: str) -> None:
        counter("faults", layer="io", kind=kind).inc()

    def __repr__(self) -> str:
        return f"FaultyStore({self.schedule!r})"
