"""Fault injection, retries, and crash-consistent recovery.

The I/O model the paper (and :mod:`repro.io`) works in assumes every
block transfer succeeds.  This package drops that assumption without
touching the structures' logic:

- :class:`FaultSchedule` / :class:`FaultyStore` -- deterministic,
  seed-scheduled injection of read/write errors, torn writes and
  crashes, with a byte-reproducible fault log.
- :class:`RetryPolicy` / :class:`RetryingStore` -- bounded exponential
  backoff over transient faults, fail-fast or degrade.
- :class:`JournaledStore` -- write-ahead-journal transactions making
  multi-block updates atomic, with :meth:`JournaledStore.recover`
  restoring the last committed state after any crash.
- :func:`verify_recovery` -- the proof harness: crash a structure at
  every injected point of a workload, recover, and diff invariants and
  query answers against an in-memory oracle.

The layers stack as ``JournaledStore(RetryingStore(FaultyStore(
BlockStore(B))))``; each is independently optional and each presents
the standard storage protocol.  With no faults scheduled and no
transactions open, the whole stack adds zero physical I/O.
"""

from repro.resilience.errors import (
    FaultInjectionError,
    PermanentIOError,
    RecoveryError,
    RetryExhaustedError,
    SimulatedCrash,
    TransientIOError,
)
from repro.resilience.faults import FaultEvent, FaultSchedule
from repro.resilience.faulty_store import FaultyStore
from repro.resilience.journal import JournaledStore
from repro.resilience.retry import RetryingStore, RetryPolicy
from repro.resilience.verifier import (
    RecoveryReport,
    StructureAdapter,
    pst_adapter,
    verify_recovery,
)

__all__ = [
    "FaultInjectionError",
    "TransientIOError",
    "PermanentIOError",
    "RetryExhaustedError",
    "RecoveryError",
    "SimulatedCrash",
    "FaultEvent",
    "FaultSchedule",
    "FaultyStore",
    "RetryPolicy",
    "RetryingStore",
    "JournaledStore",
    "StructureAdapter",
    "pst_adapter",
    "verify_recovery",
    "RecoveryReport",
]
