"""Deterministic, seed-scheduled fault plans.

A :class:`FaultSchedule` is the single source of randomness in the
fault-injection layer.  It is consulted once per storage operation (and
once per named crash point) in execution order, drawing from a private
``random.Random(seed)`` with a *fixed draw discipline*: the same seed,
configuration and operation sequence always produces the same faults in
the same places.  Every injected fault is appended to an in-memory
fault log whose rendered form is byte-identical across runs -- the
golden-replay tests pin exactly that.

Two scheduling modes compose:

- **rate-driven**: each operation kind fails with a configured
  probability (``read_error_rate``, ``write_error_rate``,
  ``torn_write_rate``, ``crash_rate``), with ``transient_fraction``
  splitting errors into retryable vs. permanent.
- **site-driven**: ``crash_at_ops`` / ``crash_at_points`` name exact
  operation indices / crash-point indices to die at.  Each site fires
  once and is then consumed, so a recovery driver that resumes after
  the crash does not immediately die at the same site again.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Fault kinds, as they appear in decisions and the fault log.
READ_TRANSIENT = "read-transient"
READ_PERMANENT = "read-permanent"
WRITE_TRANSIENT = "write-transient"
WRITE_PERMANENT = "write-permanent"
TORN_STALE = "torn-stale"
TORN_TRUNCATED = "torn-truncated"
CRASH_OP = "crash-op"
CRASH_POINT = "crash-point"
CORRUPT_BLOCK = "corrupt-block"

#: Seed-mixing constant for replica streams (golden-ratio hash step).
_STREAM_MIX = 0x9E3779B1


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: where it fired and what it did."""

    seq: int           # position in the fault log
    kind: str          # one of the kind constants above
    op_index: int      # global storage-operation counter at injection
    op: str            # "read" | "write" | "alloc" | "free" | "point"
    bid: Optional[int]  # target block, None for crash points
    detail: str = ""   # kind-specific detail (tag, truncation fraction)

    def render(self) -> str:
        """Canonical one-line form (the unit of log byte-identity)."""
        bid = "-" if self.bid is None else str(self.bid)
        return (
            f"{self.seq:05d} kind={self.kind} at={self.op_index}:{self.op}"
            f" bid={bid} detail={self.detail}"
        )


class FaultSchedule:
    """Seeded plan of which operations fault, in what way.

    Parameters
    ----------
    seed:
        Seed of the private RNG; the whole schedule is a pure function
        of ``(seed, configuration, operation sequence)``.
    read_error_rate, write_error_rate:
        Probability that a read / write raises an injected error.
    torn_write_rate:
        Probability that a write is *torn*: the block is left with its
        stale contents or a truncated prefix of the new records, and
        the process crashes mid-write.
    crash_rate:
        Probability of dying immediately before any operation.
    transient_fraction:
        Of injected read/write errors, the fraction that are transient
        (a retry succeeds); the rest are permanent for that block.
    corrupt_rate:
        Probability that a write is followed by *silent corruption*:
        the block lands, then the medium rots it (no exception -- only
        a checksum layer can notice on a later read).
    crash_at_ops, crash_at_points:
        Exact sites to die at (consumed after firing once).
    max_faults:
        Cap on *rate-driven* faults (site-driven crashes always fire).
    stream:
        Independent sub-stream index for replicated stores: replicas of
        one logical shard share a ``seed`` but get distinct ``stream``
        values, so each replica's fault sequence is deterministic *and*
        different from its peers'.  ``stream=0`` (default) draws from
        exactly the historical RNG sequence, keeping pre-replication
        fault logs byte-identical.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        read_error_rate: float = 0.0,
        write_error_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        crash_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        transient_fraction: float = 1.0,
        crash_at_ops=(),
        crash_at_points=(),
        max_faults: Optional[int] = None,
        stream: int = 0,
    ):
        for name, rate in (
            ("read_error_rate", read_error_rate),
            ("write_error_rate", write_error_rate),
            ("torn_write_rate", torn_write_rate),
            ("crash_rate", crash_rate),
            ("corrupt_rate", corrupt_rate),
            ("transient_fraction", transient_fraction),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if stream < 0:
            raise ValueError(f"stream must be >= 0, got {stream}")
        self.seed = seed
        self.read_error_rate = read_error_rate
        self.write_error_rate = write_error_rate
        self.torn_write_rate = torn_write_rate
        self.crash_rate = crash_rate
        self.corrupt_rate = corrupt_rate
        self.transient_fraction = transient_fraction
        self.crash_at_ops = set(crash_at_ops)
        self.crash_at_points = set(crash_at_points)
        self.max_faults = max_faults
        self.stream = stream
        self._rng = random.Random(seed + stream * _STREAM_MIX)
        self._rate_faults = 0
        self.events: List[FaultEvent] = []
        self.ops_seen = 0      # storage operations consulted so far
        self.points_seen = 0   # named crash points consulted so far

    # ------------------------------------------------------------------
    # decision API (consulted by FaultyStore, in execution order)
    # ------------------------------------------------------------------
    def _budget_ok(self) -> bool:
        return self.max_faults is None or self._rate_faults < self.max_faults

    def _record(self, kind: str, op_index: int, op: str, bid, detail: str = ""):
        self.events.append(
            FaultEvent(len(self.events), kind, op_index, op, bid, detail)
        )

    def next_op(self, op: str, bid: Optional[int]) -> Tuple[int, Optional[Tuple]]:
        """Consult the schedule for one storage operation.

        Returns ``(op_index, decision)`` with ``decision`` one of
        ``None``, ``(CRASH_OP,)``, ``(READ_TRANSIENT,)``, ...,
        ``(TORN_TRUNCATED, u)`` where ``u`` in [0, 1) picks the
        truncation length.  The caller raises the matching exception;
        the schedule only decides and logs.
        """
        index = self.ops_seen
        self.ops_seen += 1
        # 1. crash-before-operation
        if index in self.crash_at_ops:
            self.crash_at_ops.discard(index)
            self._record(CRASH_OP, index, op, bid, "site")
            return index, (CRASH_OP,)
        if self.crash_rate > 0.0:
            if self._rng.random() < self.crash_rate and self._budget_ok():
                self._rate_faults += 1
                self._record(CRASH_OP, index, op, bid, "rate")
                return index, (CRASH_OP,)
        # 2. operation-kind error
        if op == "read" and self.read_error_rate > 0.0:
            if self._rng.random() < self.read_error_rate and self._budget_ok():
                self._rate_faults += 1
                kind = self._transient_or(READ_TRANSIENT, READ_PERMANENT)
                self._record(kind, index, op, bid)
                return index, (kind,)
        elif op == "write":
            if self.torn_write_rate > 0.0:
                if (
                    self._rng.random() < self.torn_write_rate
                    and self._budget_ok()
                ):
                    self._rate_faults += 1
                    if self._rng.random() < 0.5:
                        self._record(TORN_STALE, index, op, bid)
                        return index, (TORN_STALE,)
                    u = self._rng.random()
                    self._record(TORN_TRUNCATED, index, op, bid, f"u={u:.6f}")
                    return index, (TORN_TRUNCATED, u)
            if self.write_error_rate > 0.0:
                if (
                    self._rng.random() < self.write_error_rate
                    and self._budget_ok()
                ):
                    self._rate_faults += 1
                    kind = self._transient_or(WRITE_TRANSIENT, WRITE_PERMANENT)
                    self._record(kind, index, op, bid)
                    return index, (kind,)
            if self.corrupt_rate > 0.0:
                if (
                    self._rng.random() < self.corrupt_rate
                    and self._budget_ok()
                ):
                    self._rate_faults += 1
                    u = self._rng.random()
                    self._record(CORRUPT_BLOCK, index, op, bid, f"u={u:.6f}")
                    return index, (CORRUPT_BLOCK, u)
        return index, None

    def next_point(self, tag: str) -> bool:
        """Consult the schedule for one named crash point; True = die."""
        index = self.points_seen
        self.points_seen += 1
        if index in self.crash_at_points:
            self.crash_at_points.discard(index)
            self._record(CRASH_POINT, index, "point", None, tag)
            return True
        return False

    def _transient_or(self, transient_kind: str, permanent_kind: str) -> str:
        if self.transient_fraction >= 1.0:
            return transient_kind
        if self._rng.random() < self.transient_fraction:
            return transient_kind
        return permanent_kind

    # ------------------------------------------------------------------
    # the fault log (determinism is asserted on these bytes)
    # ------------------------------------------------------------------
    def log_lines(self) -> List[str]:
        """One canonical line per injected fault, in injection order."""
        return [e.render() for e in self.events]

    def log_text(self) -> str:
        """The whole fault log as one string (newline-terminated)."""
        lines = self.log_lines()
        return "\n".join(lines) + ("\n" if lines else "")

    def log_bytes(self) -> bytes:
        """UTF-8 bytes of :meth:`log_text` -- the byte-identity unit."""
        return self.log_text().encode("utf-8")

    def __repr__(self) -> str:
        stream = f", stream={self.stream}" if self.stream else ""
        return (
            f"FaultSchedule(seed={self.seed}{stream}, "
            f"faults={len(self.events)}, "
            f"ops={self.ops_seen}, points={self.points_seen})"
        )
