"""Bounded exponential-backoff retry, and a store wrapper that applies it.

Transient faults are survivable by construction -- the fault model
guarantees an immediate retry of a transient error succeeds unless the
schedule injects another fault.  :class:`RetryPolicy` makes that
survival *bounded and observable*: at most ``max_attempts`` tries,
exponentially growing capped delays, and a metrics trail
(``retries{layer=retry,outcome=...}``) so bench exports show what the
fault layer cost.

Two failure modes, chosen per policy:

- **fail-fast** (default): permanent errors raise immediately;
  exhausting the attempt budget raises
  :class:`~repro.resilience.errors.RetryExhaustedError` chained to the
  last error.  This is the right mode under a journal, where the txn
  will be rolled back and retried wholesale.
- **degrade**: callers that can serve a partial answer pass
  ``fallback=...`` to :meth:`RetryPolicy.call`; on a permanent error or
  an exhausted budget the fallback value is returned instead of
  raising (and counted as ``outcome=degraded``).  Without a fallback,
  degrade behaves like fail-fast -- a block store read has no safe
  partial answer, so :class:`RetryingStore` never degrades silently.

Delays default to *simulated* time: with ``sleep=None`` the policy
accumulates what it would have slept in :attr:`RetryPolicy.total_backoff`
without stalling the test suite; pass ``time.sleep`` for wall-clock
behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.obs.metrics import counter
from repro.resilience.errors import (
    PermanentIOError,
    RetryExhaustedError,
    TransientIOError,
)

_MISSING = object()


class RetryPolicy:
    """Bounded exponential backoff over transient I/O errors."""

    def __init__(
        self,
        max_attempts: int = 4,
        *,
        base_delay: float = 0.001,
        max_delay: float = 0.25,
        multiplier: float = 2.0,
        mode: str = "fail-fast",
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if mode not in ("fail-fast", "degrade"):
            raise ValueError(f"unknown mode {mode!r}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.mode = mode
        self.sleep = sleep
        self.total_backoff = 0.0   # simulated seconds waited
        self.attempts = 0          # calls into the protected function

    def delays(self) -> List[float]:
        """The capped backoff sequence (one delay per retry)."""
        out, d = [], self.base_delay
        for _ in range(self.max_attempts - 1):
            out.append(min(d, self.max_delay))
            d *= self.multiplier
        return out

    def _backoff(self, retry_index: int) -> None:
        d = min(self.base_delay * self.multiplier ** retry_index, self.max_delay)
        self.total_backoff += d
        if self.sleep is not None:
            self.sleep(d)

    def call(self, fn: Callable, *args, fallback: Any = _MISSING, **kwargs):
        """Run ``fn(*args, **kwargs)`` under this policy.

        Retries :class:`TransientIOError`; handles
        :class:`PermanentIOError` and budget exhaustion per mode (see
        module docstring).  ``SimulatedCrash`` is a ``BaseException``
        and is never caught here: dead processes do not retry.
        """
        last: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            self.attempts += 1
            try:
                result = fn(*args, **kwargs)
            except TransientIOError as exc:
                last = exc
                counter("retries", layer="retry", outcome="retried").inc()
                if attempt + 1 < self.max_attempts:
                    self._backoff(attempt)
                continue
            except PermanentIOError as exc:
                if self.mode == "degrade" and fallback is not _MISSING:
                    counter("retries", layer="retry", outcome="degraded").inc()
                    return fallback
                raise
            if attempt > 0:
                counter("retries", layer="retry", outcome="recovered").inc()
            return result
        counter("retries", layer="retry", outcome="gave_up").inc()
        if self.mode == "degrade" and fallback is not _MISSING:
            counter("retries", layer="retry", outcome="degraded").inc()
            return fallback
        raise RetryExhaustedError(
            f"gave up after {self.max_attempts} attempts"
        ) from last


class RetryingStore:
    """Storage wrapper applying a :class:`RetryPolicy` to every operation.

    Structures opt into retries by wrapping their store; the protocol
    is unchanged.  Reads and writes have no safe partial answer, so no
    fallback is ever supplied: a degrade-mode policy still raises here.
    """

    def __init__(self, store, policy: Optional[RetryPolicy] = None):
        self._store = store
        self.policy = policy if policy is not None else RetryPolicy()

    # -- protocol ------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Records per block (the wrapped store's ``B``)."""
        return self._store.block_size

    @property
    def stats(self):
        """Physical I/O counters of the wrapped store."""
        return self._store.stats

    @property
    def physical_store(self):
        """The wrapped store whose counters are the physical truth."""
        return getattr(self._store, "physical_store", self._store)

    @property
    def crash_hook(self):
        """Forward named crash points to the wrapped store (or None)."""
        return getattr(self._store, "crash_hook", None)

    def add_observer(self, callback) -> None:
        """Delegate observer registration to the wrapped store."""
        self._store.add_observer(callback)

    def remove_observer(self, callback) -> None:
        """Delegate observer removal to the wrapped store."""
        self._store.remove_observer(callback)

    def alloc(self) -> int:
        """Allocate with retries."""
        return self.policy.call(self._store.alloc)

    def read(self, bid: int):
        """Read with retries."""
        return self.policy.call(self._store.read, bid)

    def write(self, bid: int, records: Iterable[Any]) -> None:
        """Write with retries (records materialized once, then reused)."""
        data = list(records)
        self.policy.call(self._store.write, bid, data)

    def free(self, bid: int) -> None:
        """Free with retries."""
        self.policy.call(self._store.free, bid)

    def peek(self, bid: int):
        """Pass-through inspection (no I/O, no retries)."""
        return self._store.peek(bid)

    @property
    def blocks_in_use(self) -> int:
        """Blocks allocated on the wrapped store."""
        return self._store.blocks_in_use

    def flush(self) -> None:
        """Pass-through flush."""
        self._store.flush()

    def __repr__(self) -> str:
        return f"RetryingStore(max_attempts={self.policy.max_attempts})"
