"""Section 3.3.3: scheduling bubble-up operations for worst-case inserts.

When a base-tree node splits, each half's Y-set may be left with fewer
than ``B/2`` points and must be refilled by *bubble-up* operations (each
promotes the current top point of the node's subtree into its Y-set).
Doing all ``B/2`` refills at split time is the amortized strategy of
Section 3.3.2; the paper's Section 3.3.3 gives three ways of *pacing*
them across subsequent inserts so no single insert pays more than
``O(log_B N)`` I/Os for promotions, while every promotion performed is a
COMPLETE bubble-up (so Y-sets stay "the topmost points", merely possibly
under-full, and queries remain correct):

- **heavy-leaf**: each leaf cycles a level counter; every insert into the
  leaf performs one bubble-up on the ancestor at that level (Lemma 7;
  requires leaf parameter ``k = Theta(B log_B N)`` for the full
  guarantee).
- **credit**: path nodes in rebuilding mode accrue one credit per insert
  that passes them; a node at level ``l`` becomes eligible at ``l``
  credits, and each insert spends at most ``2 log_B N`` I/Os' worth of
  eligible bubble-ups bottom-up (Lemma 8).
- **child-split**: on an insert whose leaf splits but whose root does
  not, the lowest non-splitting ancestor (the *designated node*, Lemma 9)
  receives ``beta = O(1)`` bubble-ups.

The **eager** scheduler is the amortized baseline: every refill runs to
completion at split time.

The structural part of a split (partitioning the node and its query
structure) is performed eagerly in all modes; only the refill promotions
are paced.  The extended abstract defers the split itself as well, but
the refill pacing is the part its three lemmas analyze, and experiments
E6b measure exactly that: the per-insert distribution of promotion I/Os.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.io.hooks import crash_point
from repro.obs.metrics import counter
from repro.obs.spans import span


class BubbleUpScheduler:
    """Base class: receives split/insert events, decides promotion timing."""

    name = "base"

    def __init__(self) -> None:
        self.pst = None
        self.pending: Set[int] = set()   # node bids awaiting Y-set refills
        self.promotions = 0              # total complete bubble-ups run

    def attach(self, pst) -> None:
        """Bind the scheduler to its priority search tree."""
        self.pst = pst

    # -- events ---------------------------------------------------------
    def register_refill(self, parent_bid: int, child_bid: int) -> None:
        """A split left ``child_bid``'s Y-set (stored in ``parent_bid``)
        possibly under-full."""
        raise NotImplementedError

    def on_insert(
        self, path: List[int], split_bids: List[int], root_split: bool
    ) -> None:
        """Called after each insert with the root->leaf path of node bids
        and the bids that split (bottom-up: leaf first)."""

    def on_node_destroyed(self, bid: int) -> None:
        """Forget per-node state for a freed node."""
        self.pending.discard(bid)

    def on_rebuild(self) -> None:
        """Reset all state after a global rebuild."""
        self.pending.clear()

    # -- persistence (crash recovery; see repro.resilience) --------------
    def snapshot_state(self) -> dict:
        """Serializable scheduler state for the journal superblock.

        Returns fresh copies only: the snapshot must not alias live
        mutable state, because it outlives this process in the journal.
        """
        return {"pending": sorted(self.pending), "promotions": self.promotions}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` (call after :meth:`attach`)."""
        self.pending = set(state["pending"])
        self.promotions = state["promotions"]

    # -- helpers ---------------------------------------------------------
    def _promote(self, parent_bid: int, child_bid: int) -> bool:
        """One complete bubble-up on ``child_bid``; prunes pending."""
        if child_bid not in self.pending:
            return False
        crash_point(self.pst._store, "sched.promote")
        with span(self.pst._store, "pst.promote"):
            done = self.pst.promote_once(parent_bid, child_bid)
            if done:
                self.promotions += 1
                counter(
                    "promotions", structure="external_pst", scheduler=self.name
                ).inc()
            if self.pst.refill_deficit(parent_bid, child_bid) <= 0:
                self.pending.discard(child_bid)
        return done


class EagerScheduler(BubbleUpScheduler):
    """Amortized strategy of Section 3.3.2: refill fully at split time."""

    name = "eager"

    def register_refill(self, parent_bid: int, child_bid: int) -> None:
        with span(self.pst._store, "pst.promote"):
            while self.pst.refill_deficit(parent_bid, child_bid) > 0:
                crash_point(self.pst._store, "sched.refill.step")
                if not self.pst.promote_once(parent_bid, child_bid):
                    break
                self.promotions += 1
                counter(
                    "promotions", structure="external_pst", scheduler=self.name
                ).inc()


class HeavyLeafScheduler(BubbleUpScheduler):
    """Heavy-leaf method: per-leaf cycling level counter (Lemma 7).

    Build the tree with ``k = Theta(B log_B N)`` to get the paper's full
    guarantee; the scheduler itself works for any ``k``.
    """

    name = "heavy-leaf"

    def __init__(self) -> None:
        super().__init__()
        self._counter: Dict[int, int] = {}

    def snapshot_state(self) -> dict:
        """Base state plus the per-leaf cycling counters."""
        state = super().snapshot_state()
        state["counter"] = dict(self._counter)
        return state

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`."""
        super().restore_state(state)
        self._counter = dict(state["counter"])

    def register_refill(self, parent_bid: int, child_bid: int) -> None:
        if self.pst.refill_deficit(parent_bid, child_bid) > 0:
            self.pending.add(child_bid)

    def on_insert(self, path, split_bids, root_split) -> None:
        if len(path) < 2:
            return
        leaf = path[-1]
        level = self._counter.get(leaf, 1)
        if level >= len(path):           # wrapped past the root
            level = 1
        idx = len(path) - 1 - level
        if idx >= 1:                      # the root has no Y-set
            self._promote(path[idx - 1], path[idx])
        self._counter[leaf] = level + 1

    def on_node_destroyed(self, bid: int) -> None:
        """Forget per-node state for a freed node."""
        super().on_node_destroyed(bid)
        self._counter.pop(bid, None)

    def on_rebuild(self) -> None:
        """Reset all state after a global rebuild."""
        super().on_rebuild()
        self._counter.clear()


class CreditScheduler(BubbleUpScheduler):
    """Credit method: eligibility counters per node (Lemma 8)."""

    name = "credit"

    def __init__(self) -> None:
        super().__init__()
        self._credit: Dict[int, int] = {}

    def snapshot_state(self) -> dict:
        """Base state plus the per-node eligibility credits."""
        state = super().snapshot_state()
        state["credit"] = dict(self._credit)
        return state

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`."""
        super().restore_state(state)
        self._credit = dict(state["credit"])

    def register_refill(self, parent_bid: int, child_bid: int) -> None:
        if self.pst.refill_deficit(parent_bid, child_bid) > 0:
            self.pending.add(child_bid)
            self._credit.setdefault(child_bid, 0)

    def on_insert(self, path, split_bids, root_split) -> None:
        height = len(path)
        # accrue one credit per rebuilding node on the path
        for idx, bid in enumerate(path):
            if bid in self.pending:
                self._credit[bid] = self._credit.get(bid, 0) + 1
        # spend up to 2*height I/Os of eligible bubble-ups, bottom-up
        budget = 2 * height
        spent = 0
        for level in range(1, height):
            if spent >= budget:
                break
            idx = height - 1 - level
            if idx < 1:
                break                     # the root has no Y-set
            bid = path[idx]
            if bid in self.pending and self._credit.get(bid, 0) >= level:
                if self._promote(path[idx - 1], bid):
                    spent += level
                self._credit[bid] = 1

    def on_node_destroyed(self, bid: int) -> None:
        """Forget per-node state for a freed node."""
        super().on_node_destroyed(bid)
        self._credit.pop(bid, None)

    def on_rebuild(self) -> None:
        """Reset all state after a global rebuild."""
        super().on_rebuild()
        self._credit.clear()


class ChildSplitScheduler(BubbleUpScheduler):
    """Child-split method: the designated node gets beta bubble-ups
    (Lemma 9)."""

    name = "child-split"

    def __init__(self, beta: int = 4) -> None:
        super().__init__()
        self.beta = beta

    def register_refill(self, parent_bid: int, child_bid: int) -> None:
        if self.pst.refill_deficit(parent_bid, child_bid) > 0:
            self.pending.add(child_bid)

    def on_insert(self, path, split_bids, root_split) -> None:
        if root_split:
            return
        split_set = set(split_bids)
        if not split_set or path[-1] not in split_set:
            return  # Lemma 9 considers only inserts whose leaf split
        # length of the contiguous split chain from the leaf upward
        s = 0
        while s < len(path) and path[len(path) - 1 - s] in split_set:
            s += 1
        idx = len(path) - 1 - s          # the designated node
        if idx < 1:                       # designated node is the root
            return
        for _ in range(self.beta):
            if not self._promote(path[idx - 1], path[idx]):
                break


ALL_SCHEDULERS = {
    "eager": EagerScheduler,
    "heavy-leaf": HeavyLeafScheduler,
    "credit": CreditScheduler,
    "child-split": ChildSplitScheduler,
}
