"""Section 2.2.2: the rho-ary layered indexing scheme for 4-sided queries.

Construction (Theorem 5).  The x-sorted point set is cut into level-0 sets
of ``rho * B`` consecutive points; level ``i`` unions ``rho`` consecutive
level-``i-1`` sets, up to a single root set.  Every set carries *two*
Theorem-4 indexing schemes over its points: one answering 3-sided queries
open to the LEFT, one open to the RIGHT.

A query ``(a, b, c, d)`` is routed to the lowest set whose x-range
contains ``[a, b]``.  Its children split the query into a right-open part
(in the child holding ``a``), a left-open part (in the child holding
``b``), and fully-spanned middle parts, each covered by ``O(|q_i|/B + 1)``
blocks of the child's 3-sided schemes -- ``O(rho + t)`` blocks in total.
With ``O(log_rho n)`` levels of linear-size schemes the redundancy is
``O(log n / log rho)``, matching the Theorem 2 lower bound.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geometry import (
    INF,
    NEG_INF,
    FourSidedQuery,
    Orientation,
    Point,
    sort_by_x,
)
from repro.core.threesided_scheme import ThreeSidedSweepIndex
from repro.indexability.scheme import IndexingScheme
from repro.obs.metrics import counter

#: Identifies one physical block of the layered scheme:
#: (level, set_index, side, block_index) with side in {"left", "right"}.
BlockId = Tuple[int, int, str, int]


class _SetNode:
    """One set S_{i,j}: its x-extent and its two 3-sided schemes."""

    __slots__ = ("level", "index", "points", "x_sep_lo", "x_sep_hi",
                 "left_index", "right_index")

    def __init__(
        self,
        level: int,
        index: int,
        points: List[Point],
        x_sep_lo: float,
        x_sep_hi: float,
        block_size: int,
        alpha: int,
    ):
        self.level = level
        self.index = index
        self.points = points
        # routing interval (x_sep_lo, x_sep_hi]
        self.x_sep_lo = x_sep_lo
        self.x_sep_hi = x_sep_hi
        self.left_index = ThreeSidedSweepIndex(
            points, block_size, alpha, orientation=Orientation.LEFT
        )
        self.right_index = ThreeSidedSweepIndex(
            points, block_size, alpha, orientation=Orientation.RIGHT
        )

    def covers(self, a: float, b: float) -> bool:
        return self.x_sep_lo < a and b <= self.x_sep_hi


class FourSidedLayeredIndex:
    """The Theorem 5 indexing scheme for general orthogonal range queries.

    Parameters
    ----------
    points:
        Distinct planar points.
    block_size:
        The paper's ``B``.
    rho:
        Fan-out of the hierarchy (>= 2).  Redundancy is
        ``O(log n / log rho)``; queries touch ``O(rho + t)`` blocks.
    alpha:
        Coalescing arity passed to the 3-sided schemes.
    """

    def __init__(
        self,
        points: Sequence[Point],
        block_size: int,
        rho: int = 2,
        alpha: int = 2,
    ):
        if rho < 2:
            raise ValueError("rho must be >= 2")
        self.block_size = block_size
        self.rho = rho
        self.alpha = alpha
        self.points = sort_by_x(points)
        if len(set(self.points)) != len(self.points):
            raise ValueError("points must be distinct")
        # levels[i] = list of _SetNode at level i (level 0 finest)
        self.levels: List[List[_SetNode]] = []
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        N = len(self.points)
        if N == 0:
            return
        B, rho = self.block_size, self.rho
        leaf_span = rho * B

        # level 0: consecutive runs of rho*B points
        cuts = list(range(0, N, leaf_span)) + [N]
        level0: List[_SetNode] = []
        for j in range(len(cuts) - 1):
            chunk = self.points[cuts[j]:cuts[j + 1]]
            lo = NEG_INF if j == 0 else self.points[cuts[j] - 1][0]
            hi = INF if j == len(cuts) - 2 else chunk[-1][0]
            level0.append(_SetNode(0, j, chunk, lo, hi, B, self.alpha))
        self.levels.append(level0)

        # higher levels: union rho consecutive sets
        while len(self.levels[-1]) > 1:
            below = self.levels[-1]
            level: List[_SetNode] = []
            for j in range(0, len(below), rho):
                group = below[j:j + rho]
                pts: List[Point] = []
                for s in group:
                    pts.extend(s.points)
                node = _SetNode(
                    len(self.levels), len(level), pts,
                    group[0].x_sep_lo, group[-1].x_sep_hi, B, self.alpha,
                )
                level.append(node)
            self.levels.append(level)
        # the root must span everything
        root = self.levels[-1][0]
        root.x_sep_lo, root.x_sep_hi = NEG_INF, INF

    # ------------------------------------------------------------------
    # Shape / accounting
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Number of points indexed."""
        return len(self.points)

    @property
    def num_levels(self) -> int:
        """Number of levels in the hierarchy."""
        return len(self.levels)

    @property
    def num_blocks(self) -> int:
        """Number of blocks the structure owns."""
        return sum(
            s.left_index.num_blocks + s.right_index.num_blocks
            for level in self.levels
            for s in level
        )

    @property
    def redundancy(self) -> float:
        """Measured redundancy ``r = B * blocks / N``."""
        if not self.points:
            return 0.0
        return self.block_size * self.num_blocks / len(self.points)

    def redundancy_bound(self) -> float:
        """Theorem 5 envelope: 2*(1+1/(alpha-1))*levels plus rounding."""
        per_level = 2.0 * (1.0 + 1.0 / (self.alpha - 1))
        return per_level * self.num_levels + per_level

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def _children(self, node: _SetNode) -> List[_SetNode]:
        if node.level == 0:
            return []
        below = self.levels[node.level - 1]
        return below[node.index * self.rho: node.index * self.rho + self.rho]

    def _route(self, a: float, b: float) -> _SetNode:
        """Lowest set whose routing x-range contains [a, b]."""
        node = self.levels[-1][0]
        while True:
            nxt = None
            for child in self._children(node):
                if child.covers(a, b):
                    nxt = child
                    break
            if nxt is None:
                return node
            node = nxt

    def query(self, q: FourSidedQuery) -> Tuple[List[Point], List[BlockId]]:
        """Answer ``q``; returns ``(points, block ids read)``.

        Block ids identify blocks of the per-set 3-sided schemes, so the
        returned list's length is the access cost the experiments charge.
        """
        if not self.points:
            return [], []
        counter("queries", structure="foursided_scheme", op="four_sided").inc()
        node = self._route(q.a, q.b)
        blocks: List[BlockId] = []
        out: List[Point] = []

        children = self._children(node)
        if not children:
            # leaf set: load the whole set (its initial x-partition blocks
            # inside either scheme hold every point exactly once).
            pts, used = node.right_index.query_oriented(
                x_lo=NEG_INF, y_lo=q.c, y_hi=q.d
            )
            blocks.extend(
                (node.level, node.index, "right", bi) for bi in used
            )
            out.extend(p for p in pts if q.contains(p))
            counter(
                "blocks_touched", structure="foursided_scheme", phase="leaf"
            ).inc(len(blocks))
            return out, blocks

        # locate the children holding a and b
        ci = next(
            (k for k, ch in enumerate(children) if ch.x_sep_lo < q.a <= ch.x_sep_hi),
            0,
        )
        cj = next(
            (k for k, ch in enumerate(children) if ch.x_sep_lo < q.b <= ch.x_sep_hi),
            len(children) - 1,
        )
        for k in range(ci, cj + 1):
            child = children[k]
            if k == ci and k == cj:
                # node is the lowest cover, so this can only happen when
                # routing hit the root with degenerate separators; fall
                # back to a right-open query filtered exactly.
                pts, used = child.right_index.query_oriented(
                    x_lo=q.a, y_lo=q.c, y_hi=q.d
                )
                side = "right"
            elif k == ci:
                pts, used = child.right_index.query_oriented(
                    x_lo=q.a, y_lo=q.c, y_hi=q.d
                )
                side = "right"
            elif k == cj:
                pts, used = child.left_index.query_oriented(
                    x_hi=q.b, y_lo=q.c, y_hi=q.d
                )
                side = "left"
            else:
                # fully spanned: degenerate right-open query
                pts, used = child.right_index.query_oriented(
                    x_lo=NEG_INF, y_lo=q.c, y_hi=q.d
                )
                side = "right"
            blocks.extend((child.level, child.index, side, bi) for bi in used)
            out.extend(p for p in pts if q.contains(p))
            phase = "right_open" if k == ci else (
                "left_open" if k == cj else "middle"
            )
            counter(
                "blocks_touched", structure="foursided_scheme", phase=phase
            ).inc(len(used))
        return out, blocks

    # ------------------------------------------------------------------
    # Indexability view
    # ------------------------------------------------------------------
    def as_indexing_scheme(self) -> IndexingScheme:
        """All physical blocks across all levels and both orientations."""
        all_blocks: List[List[Point]] = []
        for level in self.levels:
            for s in level:
                for idx in range(s.left_index.num_blocks):
                    all_blocks.append(s.left_index.block_points(idx))
                for idx in range(s.right_index.num_blocks):
                    all_blocks.append(s.right_index.block_points(idx))
        return IndexingScheme(self.block_size, all_blocks)

    def check_invariants(self) -> None:
        """Validate hierarchy shape and per-set schemes."""
        if not self.points:
            return
        assert len(self.levels[-1]) == 1, "no single root"
        for li, level in enumerate(self.levels):
            total = sum(len(s.points) for s in level)
            assert total == len(self.points), f"level {li} loses points"
            for s in level:
                s.left_index.check_invariants()
                s.right_index.check_invariants()
        # each level's set count shrinks by ~rho
        for li in range(1, len(self.levels)):
            assert len(self.levels[li]) == math.ceil(
                len(self.levels[li - 1]) / self.rho
            )
