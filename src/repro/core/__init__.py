"""The paper's contributions: indexing schemes and external data structures.

- :mod:`repro.core.threesided_scheme` -- Section 2.2.1: the sweep-line
  block-coalescing construction giving constant redundancy and constant
  access overhead for 3-sided workloads (Theorem 4).
- :mod:`repro.core.foursided_scheme` -- Section 2.2.2: the rho-ary layered
  scheme for general range queries (Theorem 5).
- :mod:`repro.core.small_structure` -- Section 3.1: the dynamic Theta(B^2)
  structure with O(1) catalog blocks (Lemma 1).
- :mod:`repro.core.external_pst` -- Section 3.3: the external priority
  search tree (Theorem 6), with the bubble-up schedulers of
  :mod:`repro.core.scheduling`.
- :mod:`repro.core.range_tree` -- Section 4: the dynamic 4-sided structure
  (Theorem 7).
"""

from repro.core.threesided_scheme import ThreeSidedSweepIndex, CatalogEntry
from repro.core.foursided_scheme import FourSidedLayeredIndex
from repro.core.small_structure import SmallThreeSidedStructure
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.range_tree import ExternalRangeTree

__all__ = [
    "ThreeSidedSweepIndex",
    "CatalogEntry",
    "FourSidedLayeredIndex",
    "SmallThreeSidedStructure",
    "ExternalPrioritySearchTree",
    "ExternalRangeTree",
]
