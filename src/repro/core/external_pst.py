"""Section 3.3: the external priority search tree (Theorem 6).

Linear space, ``O(log_B N + t)`` I/O 3-sided queries, ``O(log_B N)`` I/O
updates.  The skeleton is a weight-balanced B-tree over x; every internal
node ``v`` carries a *query structure* ``Q_v`` -- a Lemma-1
:class:`~repro.core.small_structure.SmallThreeSidedStructure` on
``O(B^2)`` points -- holding the **Y-sets** of its children: for child
``w``, ``Y(w)`` is the set of up to ``B`` highest points within ``w``'s
x-range not already stored at an ancestor.  Leaves keep their remaining
points in a y-descending blocked list ``L_z``.

Key implementation choices, all documented against the paper:

- **Composite keys.**  Internally a point ``(x, y)`` becomes the record
  ``((x, y), y)``: its "x-coordinate" is the lexicographic pair, so
  points with equal x are totally ordered and base-tree separators are
  always clean.  This realizes the paper's general-position assumption
  without restricting the input.
- **Maintained summaries.**  Each child entry in a node block stores
  ``(y_count, y_min, sub_count)`` for its Y-set and for the points
  strictly below, so query routing and the insert descent read no extra
  blocks.  ``sub_count`` also makes queries correct when a scheduler has
  left a Y-set temporarily depleted.
- **Heap discipline.**  The invariant kept at all times is: every point
  stored strictly below child ``w`` has ``y <= min(Y(w))`` whenever
  ``Y(w)`` is non-empty.  An inserted point therefore descends past
  ``Y(w)`` only when it is strictly below ``min(Y(w))`` *and* the
  subtree below is non-empty -- safe in both eager and deferred
  scheduling modes (the paper's ``|Y| >= B/2`` test is equivalent under
  its eager invariant).
- **Deletions** remove the point from whichever auxiliary structure
  holds it, refill the deficient Y-set by an immediate bubble-up, and
  leave the x-key behind as a ghost; the whole tree is rebuilt by global
  rebuilding once ghosts reach the live count (Section 3.3.2).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import INF, NEG_INF, Point, ThreeSidedQuery
from repro.io.blockstore import StorageError
from repro.io.hooks import crash_point, prefetch_hint
from repro.core.small_structure import SmallThreeSidedStructure
from repro.core.scheduling import ALL_SCHEDULERS, BubbleUpScheduler, EagerScheduler
from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.substrates.blocked_list import BlockedSequence

# Composite key space: key = (x, y); stored record = (key, y).
MIN_KEY = (NEG_INF, NEG_INF)
MAX_KEY = (INF, INF)

# Block layouts
# internal node: [("I", level, weight, low_excl), entry, entry, ...]
#   entry = ("C", child_bid, sep, weight, y_count, y_min, sub_count)
#   child i owns keys in (sep_{i-1}, sep_i], low_excl for i = 0
# leaf node:     [("L", weight, key_bids, lz_dir_bid, low_excl)]
#   key blocks hold the (ghost-inclusive) sorted composite keys


def _lz_key(rec: Tuple) -> float:
    return rec[1]


class ExternalPrioritySearchTree:
    """Dynamic 3-sided range searching in optimal I/O bounds (Theorem 6).

    Parameters
    ----------
    store:
        Block storage; its ``block_size`` is the paper's ``B``.
    points:
        Optional initial points ``(x, y)``; bulk-built in O(n log) work
        but only O(n) I/Os.
    a, k:
        Weight-balance parameters (branching / leaf).  Defaults
        ``a = (B-2)/4`` and ``k = 2B``; pass ``k ~ B log_B N`` for the
        heavy-leaf scheduler's regime.
    scheduler:
        A :class:`~repro.core.scheduling.BubbleUpScheduler`; defaults to
        the eager (amortized) strategy.
    """

    def __init__(
        self,
        store,
        points: Sequence[Point] = (),
        *,
        a: Optional[int] = None,
        k: Optional[int] = None,
        scheduler: Optional[BubbleUpScheduler] = None,
        allow_spill: bool = False,
    ):
        B = store.block_size
        self._store = store
        # default branching: the largest a whose 4a+1 child entries plus
        # header still fit one node block (the paper's a = Theta(B)).
        # Default leaf parameter 2B: a leaf must outweigh the B points its
        # parent's Y-set absorbs, or leaf lists sit empty and fixed
        # per-leaf overhead dominates space.  The paper allows any
        # k in [B/2, B log_B N].
        self.a = a if a is not None else max(2, (B - 2) // 4)
        self.k = k if k is not None else max(4, 2 * B)
        if self.a < 2 or self.k < 2:
            raise ValueError("need a >= 2 and k >= 2")
        if 4 * self.a + 2 > B and not allow_spill:
            raise ValueError("4a + 2 must fit in a block; lower a")
        # spill mode: internal nodes whose 4a+1 entries cannot fit one
        # block overflow into a chain of continuation blocks.  This is a
        # testing affordance for tiny B (the fault harness runs at B=8);
        # oversized nodes honestly cost one extra I/O per chain block.
        self._spill = allow_spill and 4 * self.a + 2 > B
        self.half = max(1, B // 2)      # Y-set refill threshold (B/2)
        self.y_cap = B                   # Y-set capacity (B)
        self.scheduler = scheduler if scheduler is not None else EagerScheduler()
        self.scheduler.attach(self)
        self._q: Dict[int, SmallThreeSidedStructure] = {}
        self._root: Optional[int] = None
        self._count = 0
        self._ghosts = 0
        self.rebuilds = 0
        self.splits = 0
        pts = [(float(p[0]), float(p[1])) for p in points]
        if len(set(pts)) != len(pts):
            raise ValueError("points must be distinct")
        self._bulk_build(pts)

    # ==================================================================
    # basic node I/O helpers
    # ==================================================================
    def _read(self, bid: int) -> List:
        records = list(self._store.read(bid).records)
        prev = bid
        while self._spill and records and records[-1][0] == "CONT":
            nxt = records.pop()[1]
            # teach a readahead pool the chain link before following it
            prefetch_hint(self._store, (prev, nxt))
            records.extend(self._store.read(nxt).records)
            prev = nxt
        return records

    def _peek_node(self, bid: int) -> List:
        """Reassembled node records without charging I/O (checkers only)."""
        records = list(self._store.peek(bid))
        while self._spill and records and records[-1][0] == "CONT":
            records.extend(self._store.peek(records.pop()[1]))
        return records

    def _cont_chain(self, bid: int) -> List[int]:
        """Continuation-block ids hanging off a node (spill mode only)."""
        chain: List[int] = []
        if not self._spill:
            return chain
        try:
            records = self._store.peek(bid)
        except StorageError:
            return chain
        while records and records[-1][0] == "CONT":
            nxt = records[-1][1]
            chain.append(nxt)
            records = self._store.peek(nxt)
        return chain

    def _free_node(self, bid: int) -> None:
        for cbid in self._cont_chain(bid):
            self._store.free(cbid)
        self._store.free(bid)

    def _is_leaf(self, records: List) -> bool:
        return records[0][0] == "L"

    def _new_q(self, pts: List[Tuple]) -> SmallThreeSidedStructure:
        B = self._store.block_size
        return SmallThreeSidedStructure(
            self._store, pts, max_points=B * B + 2 * B
        )

    def _write_leaf(
        self, bid: int, weight: int, key_bids: Tuple, lz_dir: int, low
    ) -> None:
        self._store.write(bid, [("L", weight, key_bids, lz_dir, low)])

    def _write_internal(
        self, bid: int, level: int, weight: int, low, entries: List
    ) -> None:
        records = [("I", level, weight, low)] + list(entries)
        B = self._store.block_size
        if not self._spill or len(records) <= B:
            if self._spill:
                # node shrank back into one block: release any old chain
                chain = self._cont_chain(bid)
                self._store.write(bid, records)
                for cbid in chain:
                    self._store.free(cbid)
            else:
                self._store.write(bid, records)
            return
        # lay the records over the head block plus a continuation chain,
        # reusing the node's previously allocated chain blocks
        pieces: List[List] = []
        rest = records
        while len(rest) > B:
            pieces.append(rest[:B - 1])
            rest = rest[B - 1:]
        pieces.append(rest)
        chain = self._cont_chain(bid)
        need = len(pieces) - 1
        while len(chain) < need:
            chain.append(self._store.alloc())
        for cbid in chain[need:]:
            self._store.free(cbid)
        chain = chain[:need]
        bids = [bid] + chain
        for i in range(need):
            pieces[i].append(("CONT", bids[i + 1]))
        for nb, recs in zip(reversed(bids), reversed(pieces)):
            self._store.write(nb, recs)

    def _make_key_blocks(self, keys: List) -> Tuple:
        B = self._store.block_size
        bids = []
        for lo in range(0, len(keys), B):
            kb = self._store.alloc()
            self._store.write(kb, keys[lo:lo + B])
            bids.append(kb)
        return tuple(bids)

    def _read_keys(self, key_bids: Tuple) -> List:
        if len(key_bids) > 1:
            prefetch_hint(self._store, key_bids)
        keys: List = []
        for kb in key_bids:
            keys.extend(self._store.read(kb).records)
        return keys

    def _free_key_blocks(self, key_bids: Tuple) -> None:
        for kb in key_bids:
            self._store.free(kb)

    @staticmethod
    def _route(entries: List, key) -> int:
        """Index of the child owning ``key`` (first sep >= key, else last)."""
        for i, e in enumerate(entries):
            if key <= e[2]:
                return i
        return len(entries) - 1

    def _child_interval(self, header, entries: List, i: int):
        lo = header[3] if i == 0 else entries[i - 1][2]
        return lo, entries[i][2]

    def _report_child(self, q: SmallThreeSidedStructure, lo, hi) -> List[Tuple]:
        """Y-set of the child with key interval (lo, hi]: O(1) blocks."""
        return [r for r in q.query(ThreeSidedQuery(lo, hi, NEG_INF)) if r[0] > lo]

    # ==================================================================
    # bulk construction
    # ==================================================================
    def _bulk_build(self, points: List[Point]) -> None:
        recs = sorted(((float(x), float(y)), float(y)) for x, y in points)
        self._count = len(recs)
        self._ghosts = 0
        keys = [r[0] for r in recs]
        level = 0 if len(keys) <= 2 * self.k - 1 else self._node_level(len(keys))
        self._root = self._build_node(keys, recs, MIN_KEY, level)

    def _node_level(self, n_keys: int) -> int:
        """Smallest level whose capacity ``2 a^l k`` holds ``n_keys``."""
        level = 1
        cap = 2 * self.a * self.k
        while cap < n_keys:
            level += 1
            cap *= self.a
        return level

    def _build_node(self, keys: List, pool: List[Tuple], low, level: int) -> int:
        """Recursively build a subtree at exactly ``level`` (0 = leaf).

        ``keys``: all composite keys of the subtree (defines weights).
        ``pool``: the records not claimed by ancestors, key-sorted.
        The level is fixed by the parent so all leaves land on level 0;
        bulk-built leaves may hold as few as ~k/2 keys (the split
        machinery alone guarantees the tight ``[k, 2k-1]`` range).
        """
        store = self._store
        if level == 0:
            lz = BlockedSequence.from_sorted(
                store, sorted(pool, key=lambda r: (r[1], r[0]), reverse=True),
                _lz_key,
            )
            bid = store.alloc()
            self._write_leaf(bid, len(keys), self._make_key_blocks(keys), lz.dir_bid, low)
            return bid

        target = (2 * self.k - 1) if level == 1 else (self.a ** (level - 1)) * self.k
        m = max(2, -(-len(keys) // target))
        # even partition of the keys into m contiguous runs
        base, extra = divmod(len(keys), m)
        cuts = [0]
        for i in range(m):
            cuts.append(cuts[-1] + base + (1 if i < extra else 0))

        entries: List[Tuple] = []
        q_points: List[Tuple] = []
        child_plans: List[Tuple] = []  # (keys, remainder, lo)
        pi = 0
        prev_lo = low
        for i in range(m):
            run_keys = keys[cuts[i]:cuts[i + 1]]
            sep = run_keys[-1]
            # records belonging to this run: pool keys in (prev_lo, sep]
            run_pool: List[Tuple] = []
            while pi < len(pool) and pool[pi][0] <= sep:
                run_pool.append(pool[pi])
                pi += 1
            # Y-set: top-B by (y, key)
            run_pool_by_y = sorted(run_pool, key=lambda r: (r[1], r[0]))
            y_set = run_pool_by_y[len(run_pool_by_y) - min(self.y_cap, len(run_pool_by_y)):]
            y_keys = {r[0] for r in y_set}
            remainder = [r for r in run_pool if r[0] not in y_keys]
            q_points.extend(y_set)
            y_min = min((r[1] for r in y_set), default=None)
            child_plans.append((run_keys, remainder, prev_lo))
            entries.append(
                ["C", None, sep, len(run_keys), len(y_set), y_min, len(remainder)]
            )
            prev_lo = sep

        bid = store.alloc()
        for i, (run_keys, remainder, lo) in enumerate(child_plans):
            child_bid = self._build_node(run_keys, remainder, lo, level - 1)
            entries[i][1] = child_bid
        self._q[bid] = self._new_q(q_points)
        self._write_internal(
            bid, level, len(keys), low, [tuple(e) for e in entries]
        )
        return bid

    # ==================================================================
    # accessors
    # ==================================================================
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def height(self) -> int:
        """Number of levels from root to leaves."""
        h, bid = 1, self._root
        while True:
            records = self._store.peek(bid)
            if self._is_leaf(records):
                return h
            bid = records[1][1]
            h += 1

    def blocks_in_use(self) -> int:
        """Blocks owned by the whole structure (space accounting)."""
        total = 0

        def rec(bid: int) -> None:
            nonlocal total
            records = self._peek_node(bid)
            total += 1 + len(self._cont_chain(bid))
            if self._is_leaf(records):
                _tag, _w, key_bids, lz_dir, _low = records[0]
                total += len(key_bids)
                # L_z data blocks + its directory (peek: space accounting
                # must not disturb the I/O counters)
                total += len(self._store.peek(lz_dir)) + 1
                return
            total += self._q[bid].num_blocks()
            for e in records[1:]:
                rec(e[1])

        if self._root is not None:
            rec(self._root)
        return total

    # ==================================================================
    # persistence (crash recovery re-attachment; see repro.resilience)
    # ==================================================================
    def snapshot_meta(self) -> dict:
        """Everything needed to re-attach this tree to its blocks.

        The base tree (node blocks, key blocks, leaf lists) is already
        fully on disk; what a crash destroys is the in-memory registry
        of per-node query structures and the counters.  The snapshot is
        a fresh copy each call -- it travels in a journal superblock
        and must never alias live mutable state.
        """
        return {
            "spill": self._spill,
            "a": self.a,
            "k": self.k,
            "root": self._root,
            "count": self._count,
            "ghosts": self._ghosts,
            "rebuilds": self.rebuilds,
            "splits": self.splits,
            "q": {bid: q.snapshot_meta() for bid, q in self._q.items()},
            "scheduler": {
                "name": self.scheduler.name,
                "state": self.scheduler.snapshot_state(),
            },
        }

    @classmethod
    def attach(
        cls, store, meta: dict, *, scheduler: Optional[BubbleUpScheduler] = None
    ) -> "ExternalPrioritySearchTree":
        """Rebuild the in-memory handle over existing blocks (no I/O).

        Inverse of :meth:`snapshot_meta`.  ``scheduler`` overrides the
        snapshot's scheduler *class* (its pending/counter state is
        restored from the snapshot either way); by default the class
        named in the snapshot is instantiated.
        """
        obj = cls.__new__(cls)
        obj._store = store
        obj._spill = meta.get("spill", False)
        obj.a = meta["a"]
        obj.k = meta["k"]
        B = store.block_size
        obj.half = max(1, B // 2)
        obj.y_cap = B
        obj._root = meta["root"]
        obj._count = meta["count"]
        obj._ghosts = meta["ghosts"]
        obj.rebuilds = meta["rebuilds"]
        obj.splits = meta["splits"]
        obj._q = {
            bid: SmallThreeSidedStructure.attach(store, m)
            for bid, m in meta["q"].items()
        }
        if scheduler is None:
            scheduler = ALL_SCHEDULERS[meta["scheduler"]["name"]]()
        scheduler.attach(obj)
        scheduler.restore_state(meta["scheduler"]["state"])
        obj.scheduler = scheduler
        return obj

    # ==================================================================
    # query (Section 3.3.1)
    # ==================================================================
    def query(self, a: float, b: float, c: float) -> List[Point]:
        """3-sided query: all points with ``a <= x <= b`` and ``y >= c``."""
        if self._root is None:
            return []
        counter("queries", structure="external_pst", op="three_sided").inc()
        lo_key, hi_key = (a, NEG_INF), (b, INF)
        q3 = ThreeSidedQuery(lo_key, hi_key, c)
        out: List[Point] = []
        stack: List[Tuple[int, bool]] = [(self._root, False)]
        while stack:
            bid, interior = stack.pop()
            with span(self._store, "pst.query.descend"):
                records = self._read(bid)
            if self._is_leaf(records):
                with span(self._store, "pst.query.leaf"):
                    _tag, _w, _kb, lz_dir, _low = records[0]
                    lz = BlockedSequence.attach(self._store, lz_dir, _lz_key)
                    if interior:
                        recs, _ = lz.scan_top_while(lambda r: r[1] >= c)
                        out.extend(r[0] for r in recs)
                    else:
                        for r in lz.scan_all():
                            if q3.contains(r):
                                out.append(r[0])
                continue
            header, entries = records[0], records[1:]
            with span(self._store, "pst.query.childq"):
                for r in self._q[bid].query(q3):
                    out.append(r[0])
            left_i = self._route(entries, lo_key)
            right_i = self._route(entries, hi_key)
            for i in range(left_i, right_i + 1):
                e = entries[i]
                if i == left_i or i == right_i:
                    stack.append((e[1], False))
                else:
                    # interior child: visit iff its whole Y-set satisfies
                    # the query, or its Y-set is depleted but points
                    # remain below (deferred-scheduler safety)
                    if e[4] > 0:
                        if e[5] >= c:
                            stack.append((e[1], True))
                    elif e[6] > 0:
                        stack.append((e[1], True))
        return out

    def query_two_sided(self, b: float, c: float) -> List[Point]:
        """Quadrant query ``x <= b, y >= c`` (Figure 1(b)): a 3-sided
        query with the left side unbounded."""
        return self.query(NEG_INF, b, c)

    def query_diagonal_corner(self, q: float) -> List[Point]:
        """Diagonal corner query at ``(q, q)`` (Figure 1(a)): report
        points with ``x <= q <= y`` -- interval stabbing when points
        encode intervals ``(l, r)``."""
        return self.query(NEG_INF, q, q)

    def top_k(self, a: float, b: float, k: int) -> List[Point]:
        """The ``k`` highest-y points with ``a <= x <= b``, descending
        (ties by x ascending).

        Implemented by data-driven threshold descent: 3-sided queries
        with ``c`` dropping from the strip's top, each round doubling the
        explored y-span (taken from the data itself, so the method is
        scale-free).  Typical cost is a few ``O(log_B N + t/B)`` rounds;
        after a bounded number of rounds it falls back to one exact
        full-strip query, so the worst case is
        ``O(log_B N + strip_size/B)`` I/Os.
        """
        if k <= 0 or self._root is None or self._count == 0:
            return []
        probe = self._strip_top(a, b)
        if probe is None:
            return []
        c = probe[1]
        for _round in range(6):
            got = self.query(a, b, c)
            if len(got) >= k:
                got.sort(key=lambda p: (-p[1], p[0]))
                return got[:k]
            m = min(p[1] for p in got)          # got contains the strip top
            span = probe[1] - m
            if span <= 0.0:
                span = max(abs(m), 1.0) * 2.0 ** (-20 + 8 * _round)
            c = m - (2.0 ** _round) * span
        got = self.query(a, b, NEG_INF)
        got.sort(key=lambda p: (-p[1], p[0]))
        return got[:k]

    def _strip_top(self, a: float, b: float) -> Optional[Tuple[float, float]]:
        """Highest point with x in [a, b] (O(log_B N) I/Os).

        Only the two boundary search paths are descended: an interior
        child's Y-set lies wholly inside the strip and is therefore seen
        in its parent's query structure, and the heap discipline bounds
        everything below it by that Y-set's minimum (depleted Y-sets,
        possible under deferred schedulers, are descended defensively).
        """
        lo_key, hi_key = (a, NEG_INF), (b, INF)
        best: Optional[Tuple] = None
        stack = [self._root]
        while stack:
            bid = stack.pop()
            records = self._read(bid)
            if self._is_leaf(records):
                _tag, _w, _kb, lz_dir, _low = records[0]
                lz = BlockedSequence.attach(self._store, lz_dir, _lz_key)
                for r in lz.scan_all():
                    # list is y-descending: the first in-range record is
                    # this leaf's strip maximum
                    if lo_key <= r[0] <= hi_key:
                        if best is None or (r[1], r[0]) > (best[1], best[0]):
                            best = r
                        break
                continue
            header, entries = records[0], records[1:]
            r = self._q[bid].top_in_x_range(lo_key, hi_key)
            if r is not None and (
                best is None or (r[1], r[0]) > (best[1], best[0])
            ):
                best = r
            left_i = self._route(entries, lo_key)
            right_i = self._route(entries, hi_key)
            for i in range(left_i, right_i + 1):
                e = entries[i]
                if i == left_i or i == right_i:
                    stack.append(e[1])       # boundary path: must descend
                elif e[4] == 0 and e[6] > 0:
                    stack.append(e[1])       # depleted Y-set: defensive
        if best is None:
            return None
        return (best[0][0], best[1])

    # ==================================================================
    # insertion
    # ==================================================================
    def insert_many(self, points: Sequence[Point]) -> None:
        """Insert a batch.  On an empty tree this bulk-builds in O(n)
        I/Os; otherwise points are inserted one by one."""
        pts = [(float(p[0]), float(p[1])) for p in points]
        if self._count == 0 and self._ghosts == 0:
            if len(set(pts)) != len(pts):
                raise ValueError("points must be distinct")
            if self._root is not None:
                self._destroy_tree()
            self.scheduler.on_rebuild()
            self._bulk_build(pts)
            return
        for p in pts:
            self.insert(*p)

    def insert(self, x: float, y: float) -> None:
        """Insert a point in O(log_B N) I/Os (amortized with the eager
        scheduler; paced by the configured scheduler otherwise)."""
        x, y = float(x), float(y)
        key = (x, y)
        rec = (key, y)
        if self._root is None:
            lz = BlockedSequence.from_sorted(self._store, [rec], _lz_key)
            bid = self._store.alloc()
            self._write_leaf(bid, 1, self._make_key_blocks([key]), lz.dir_bid, MIN_KEY)
            self._root = bid
            self._count = 1
            return

        counter("inserts", structure="external_pst").inc()
        # ---- phase 1: insert the key into the base tree ----
        with span(self._store, "pst.insert.descend"):
            path: List[int] = []
            bid = self._root
            while True:
                records = self._read(bid)
                path.append(bid)
                if self._is_leaf(records):
                    break
                header, entries = records[0], records[1:]
                i = self._route(entries, key)
                e = list(entries[i])
                if i == len(entries) - 1 and key > e[2]:
                    e[2] = key  # extend the last separator
                e[3] += 1
                entries[i] = tuple(e)
                self._write_internal(bid, header[1], header[2] + 1, header[3], entries)
                # weights above are incremented but the key is not yet in
                # the leaf: inconsistent until phase 1 completes
                crash_point(self._store, "pst.insert.descend.step")
                bid = e[1]
            # leaf key insert
            records = self._read(bid)
            _tag, weight, key_bids, lz_dir, low = records[0]
            keys = self._read_keys(key_bids)
            pos = bisect_left(keys, key)
            resurrect = pos < len(keys) and keys[pos] == key
            if resurrect:
                # the key already exists: either a ghost of a deleted point
                # (resurrect it) or a live duplicate (caller error)
                self._unwind_weights(path[:-1], key)
            else:
                keys.insert(pos, key)
                self._free_key_blocks(key_bids)
                self._write_leaf(
                    bid, weight + 1, self._make_key_blocks(keys), lz_dir, low
                )
                self._count += 1
        if resurrect:
            if (x, y) in self.query(x, x, y):
                raise ValueError(f"duplicate point {key}")
            self._ghosts -= 1
            self._count += 1
            with span(self._store, "pst.insert.place"):
                self._place(rec)
            return

        # ---- phase 1b: split every node on the path that reached its
        # capacity (their weights are independent, so no early exit) ----
        crash_point(self._store, "pst.insert.before_split")
        with span(self._store, "pst.insert.split"):
            split_bids: List[int] = []
            root_split = False
            if weight + 1 >= 2 * self.k:
                self._split_leaf(path)
                split_bids.append(path[-1])
                crash_point(self._store, "pst.insert.split.leaf")
            for depth in range(len(path) - 2, -1, -1):
                nb = self._read(path[depth])
                level, w = nb[0][1], nb[0][2]
                if w >= 2 * (self.a ** level) * self.k:
                    at_root = depth == 0
                    self._split_internal(path, depth)
                    split_bids.append(path[depth])
                    crash_point(self._store, "pst.insert.split.internal")
                    if at_root:
                        root_split = True

        # ---- phase 2: place the point per the Y-set discipline ----
        # the key is in the base tree but the point is not placed yet
        crash_point(self._store, "pst.insert.before_place")
        with span(self._store, "pst.insert.place"):
            self._place(rec)

        # ---- scheduler turn ----
        with span(self._store, "pst.insert.schedule"):
            self.scheduler.on_insert(path, split_bids, root_split)

    def _unwind_weights(self, internal_path: List[int], key) -> None:
        """Undo the weight increments of a descent (ghost resurrection)."""
        for bid in internal_path:
            records = self._read(bid)
            header, entries = records[0], records[1:]
            i = self._route(entries, key)
            e = list(entries[i])
            e[3] -= 1
            entries[i] = tuple(e)
            self._write_internal(bid, header[1], header[2] - 1, header[3], entries)

    def _place(self, rec: Tuple) -> None:
        """Root-down placement of a record (Section 3.3.2 insert logic)."""
        key = rec[0]
        bid = self._root
        while True:
            # every iteration rewrites one node's summaries; the point
            # itself is in flight between them
            crash_point(self._store, "pst.place.step")
            records = self._read(bid)
            if self._is_leaf(records):
                _tag, _w, _kb, lz_dir, _low = records[0]
                BlockedSequence.attach(self._store, lz_dir, _lz_key).insert(rec)
                return
            header, entries = records[0], records[1:]
            i = self._route(entries, key)
            e = list(entries[i])
            y_count, y_min, sub = e[4], e[5], e[6]
            if sub > 0 and (y_count == 0 or rec[1] < y_min):
                # content beneath and the record is not above the whole
                # Y-set (or the Y-set is depleted): descend, preserving
                # the heap discipline "below <= min(Y)"
                e[6] = sub + 1
                entries[i] = tuple(e)
                self._write_internal(bid, header[1], header[2], header[3], entries)
                bid = e[1]
                continue
            # join the Y-set
            q = self._q[bid]
            q.insert(rec)
            e[4] = y_count + 1
            e[5] = rec[1] if y_min is None else min(y_min, rec[1])
            if e[4] <= self.y_cap:
                entries[i] = tuple(e)
                self._write_internal(bid, header[1], header[2], header[3], entries)
                return
            # overflow: evict the lowest Y-set member downward
            lo, hi = self._child_interval(header, entries, i)
            members = self._report_child(q, lo, hi)
            lowest = min(members, key=lambda r: (r[1], r[0]))
            q.delete(lowest)
            rest = [r for r in members if r != lowest]
            e[4] = len(rest)
            e[5] = min((r[1] for r in rest), default=None)
            e[6] = sub + 1
            entries[i] = tuple(e)
            self._write_internal(bid, header[1], header[2], header[3], entries)
            rec, key = lowest, lowest[0]
            bid = e[1]

    # ==================================================================
    # splits (structural part; Y-set refills go through the scheduler)
    # ==================================================================
    def _split_leaf(self, path: List[int]) -> None:
        store = self._store
        bid = path[-1]
        records = self._read(bid)
        _tag, weight, key_bids, lz_dir, low = records[0]
        keys = self._read_keys(key_bids)
        m = len(keys) // 2
        sep = keys[m - 1]
        left_keys, right_keys = keys[:m], keys[m:]
        lz = BlockedSequence.attach(store, lz_dir, _lz_key)
        all_recs = lz.scan_all()
        left_recs = [r for r in all_recs if r[0] <= sep]
        right_recs = [r for r in all_recs if r[0] > sep]
        lz.destroy()
        # old LZ sequence is gone, replacements not yet linked in
        crash_point(store, "pst.split_leaf.mid")
        lz_left = BlockedSequence.from_sorted(store, left_recs, _lz_key)
        lz_right = BlockedSequence.from_sorted(store, right_recs, _lz_key)
        self._free_key_blocks(key_bids)
        self._write_leaf(bid, len(left_keys), self._make_key_blocks(left_keys),
                         lz_left.dir_bid, low)
        rbid = store.alloc()
        self._write_leaf(rbid, len(right_keys), self._make_key_blocks(right_keys),
                         lz_right.dir_bid, sep)
        self.splits += 1
        counter("splits", structure="external_pst", op="leaf").inc()
        self._install_split(
            path, len(path) - 1, bid, rbid, sep,
            len(left_keys), len(right_keys),
            len(left_recs), len(right_recs),
            leaf_level=True,
        )

    def _split_internal(self, path: List[int], depth: int) -> None:
        store = self._store
        bid = path[depth]
        records = self._read(bid)
        header, entries = records[0], records[1:]
        level, weight, low = header[1], header[2], header[3]
        # cut at the child boundary closest to half the weight
        target = weight // 2
        acc, cut, best_gap = 0, 1, None
        for i, e in enumerate(entries[:-1]):
            acc += e[3]
            gap = abs(acc - target)
            if best_gap is None or gap < best_gap:
                best_gap, cut = gap, i + 1
        left_e, right_e = entries[:cut], entries[cut:]
        sep = left_e[-1][2]
        lw = sum(e[3] for e in left_e)
        rw = weight - lw
        # split the query structure
        q = self._q.pop(bid)
        pts = q.all_points()
        q.destroy()
        self.scheduler.on_node_destroyed(bid)
        # the node's query structure is destroyed, halves not yet built
        crash_point(store, "pst.split_internal.mid")
        left_pts = [r for r in pts if r[0] <= sep]
        right_pts = [r for r in pts if r[0] > sep]
        self._q[bid] = self._new_q(left_pts)
        rbid = store.alloc()
        self._q[rbid] = self._new_q(right_pts)
        self._write_internal(bid, level, lw, low, list(left_e))
        self._write_internal(rbid, level, rw, sep, list(right_e))
        self.splits += 1
        counter("splits", structure="external_pst", op="internal").inc()
        lsub = sum(e[4] + e[6] for e in left_e)
        rsub = sum(e[4] + e[6] for e in right_e)
        self._install_split(
            path, depth, bid, rbid, sep, lw, rw, lsub, rsub, leaf_level=False,
        )

    def _install_split(
        self, path: List[int], depth: int,
        left_bid: int, right_bid: int, sep,
        lw: int, rw: int, lsub: int, rsub: int, leaf_level: bool,
    ) -> None:
        """Register a split with the parent (or grow a new root), fixing
        Y-set summaries and scheduling refills."""
        store = self._store
        if depth == 0:
            # the split node was the root: new root one level above
            old = store.peek(left_bid)
            level = 1 if old[0][0] == "L" else old[0][1] + 1
            root = store.alloc()
            self._q[root] = self._new_q([])
            entries = [
                ("C", left_bid, sep, lw, 0, None, lsub),
                ("C", right_bid, MAX_KEY, rw, 0, None, rsub),
            ]
            crash_point(store, "pst.install_split.new_root")
            self._write_internal(root, level, lw + rw, MIN_KEY, entries)
            self._root = root
            self.scheduler.register_refill(root, left_bid)
            self.scheduler.register_refill(root, right_bid)
            return
        pbid = path[depth - 1]
        precords = self._read(pbid)
        pheader, pentries = precords[0], precords[1:]
        slot = next(i for i, e in enumerate(pentries) if e[1] == left_bid)
        old_sep = pentries[slot][2]
        # partition the old Y-set summary between the halves by probing
        # the parent's query structure (O(1) blocks)
        plow = pheader[3] if slot == 0 else pentries[slot - 1][2]
        members = self._report_child(self._q[pbid], plow, old_sep)
        yl = [r for r in members if r[0] <= sep]
        yr = [r for r in members if r[0] > sep]
        pentries[slot] = (
            "C", left_bid, sep, lw,
            len(yl), min((r[1] for r in yl), default=None), lsub,
        )
        pentries.insert(slot + 1, (
            "C", right_bid, old_sep, rw,
            len(yr), min((r[1] for r in yr), default=None), rsub,
        ))
        # both halves exist on disk but the parent still routes to one
        crash_point(store, "pst.install_split.parent")
        self._write_internal(pbid, pheader[1], pheader[2], pheader[3], pentries)
        self.scheduler.register_refill(pbid, left_bid)
        self.scheduler.register_refill(pbid, right_bid)

    # ==================================================================
    # bubble-ups (promotions)
    # ==================================================================
    def refill_deficit(self, parent_bid: int, child_bid: int) -> int:
        """How many promotions ``child_bid``'s Y-set still needs."""
        try:
            records = self._read(parent_bid)
        except StorageError:
            return 0  # node freed since the refill was scheduled
        if self._is_leaf(records):
            return 0
        for e in records[1:]:
            if e[1] == child_bid:
                if e[6] <= 0:
                    return 0
                return max(0, self.half - e[4])
        return 0

    def promote_once(self, parent_bid: int, child_bid: int) -> bool:
        """One complete bubble-up: move the top point of ``child_bid``'s
        subtree into its Y-set inside ``parent_bid``'s query structure."""
        try:
            records = self._read(parent_bid)
        except StorageError:
            return False  # node freed since the promotion was scheduled
        if self._is_leaf(records):
            return False
        header, entries = records[0], records[1:]
        slot = next(
            (i for i, e in enumerate(entries) if e[1] == child_bid), None
        )
        if slot is None:
            return False
        e = list(entries[slot])
        if e[6] <= 0 or e[4] >= self.y_cap:
            return False
        r = self._take_top(child_bid)
        if r is None:
            e[6] = 0  # stale sub-count; repair
            entries[slot] = tuple(e)
            self._write_internal(parent_bid, header[1], header[2], header[3], entries)
            return False
        self._q[parent_bid].insert(r)
        e[4] += 1
        e[5] = r[1] if e[5] is None else min(e[5], r[1])
        e[6] -= 1
        entries[slot] = tuple(e)
        self._write_internal(parent_bid, header[1], header[2], header[3], entries)
        return True

    def _peek_top(self, bid: int) -> Optional[Tuple]:
        """The highest record in ``bid``'s subtree without removing it.

        With eager scheduling this is just ``Q``'s top (the heap
        discipline puts the subtree maximum there); a deferred scheduler
        can leave a child's Y-set depleted while points remain below it,
        and those subtrees must be peeked recursively."""
        records = self._read(bid)
        if self._is_leaf(records):
            _tag, _w, _kb, lz_dir, _low = records[0]
            return BlockedSequence.attach(self._store, lz_dir, _lz_key).peek_top()
        best = self._q[bid].top()
        for e in records[1:]:
            if e[4] == 0 and e[6] > 0:
                r = self._peek_top(e[1])
                if r is not None and (
                    best is None or (r[1], r[0]) > (best[1], best[0])
                ):
                    best = r
        return best

    def _take_top(self, bid: int) -> Optional[Tuple]:
        """Remove and return the highest point stored in ``bid``'s
        subtree (strictly below its parent), refilling Y-sets on the way
        down.  O(1) I/Os per level (plus depleted-child peeks while a
        deferred scheduler has refills outstanding)."""
        records = self._read(bid)
        if self._is_leaf(records):
            _tag, _w, _kb, lz_dir, _low = records[0]
            return BlockedSequence.attach(self._store, lz_dir, _lz_key).pop_top()
        header, entries = records[0], records[1:]
        q = self._q[bid]
        top = q.top()
        # the true subtree top may hide below a child whose Y-set a
        # deferred scheduler has left depleted
        hidden_slot = None
        for i, e in enumerate(entries):
            if e[4] == 0 and e[6] > 0:
                r = self._peek_top(e[1])
                if r is not None and (
                    top is None or (r[1], r[0]) > (top[1], top[0])
                ):
                    top, hidden_slot = r, i
        if top is None:
            return None
        if hidden_slot is not None:
            r = self._take_top(entries[hidden_slot][1])
            e2 = list(entries[hidden_slot])
            e2[6] -= 1
            entries[hidden_slot] = tuple(e2)
            self._write_internal(bid, header[1], header[2], header[3], entries)
            return r
        q.delete(top)
        i = self._route(entries, top[0])
        e = list(entries[i])
        e[4] -= 1
        lo, hi = self._child_interval(header, entries, i)
        rest = self._report_child(q, lo, hi)
        e[5] = min((r[1] for r in rest), default=None)
        if e[4] < self.half and e[6] > 0:
            r = self._take_top(e[1])
            if r is not None:
                q.insert(r)
                e[4] += 1
                e[5] = r[1] if e[5] is None else min(e[5], r[1])
                e[6] -= 1
        entries[i] = tuple(e)
        self._write_internal(bid, header[1], header[2], header[3], entries)
        return top

    # ==================================================================
    # deletion (Section 3.3.2, lazy ghosts + global rebuilding)
    # ==================================================================
    def delete(self, x: float, y: float) -> bool:
        """Delete a point in O(log_B N) I/Os amortized; True if present."""
        if self._root is None:
            return False
        counter("deletes", structure="external_pst").inc()
        key = (float(x), float(y))
        rec = (key, key[1])
        path: List[Tuple[int, int]] = []  # (bid, entry slot taken)
        bid = self._root
        found = False
        while True:
            records = self._read(bid)
            if self._is_leaf(records):
                _tag, _w, _kb, lz_dir, _low = records[0]
                lz = BlockedSequence.attach(self._store, lz_dir, _lz_key)
                found = lz.remove(rec)
                break
            header, entries = records[0], records[1:]
            i = self._route(entries, key)
            e = list(entries[i])
            # is the point in this child's Y-set?
            probe = self._q[bid].query(ThreeSidedQuery(key, key, key[1]))
            if rec in probe:
                q = self._q[bid]
                q.delete(rec)
                e[4] -= 1
                lo, hi = self._child_interval(header, entries, i)
                rest = self._report_child(q, lo, hi)
                e[5] = min((r[1] for r in rest), default=None)
                if e[4] < self.half and e[6] > 0:
                    r = self._take_top(e[1])
                    if r is not None:
                        q.insert(r)
                        e[4] += 1
                        e[5] = r[1] if e[5] is None else min(e[5], r[1])
                        e[6] -= 1
                entries[i] = tuple(e)
                self._write_internal(bid, header[1], header[2], header[3], entries)
                found = True
                break
            if e[6] <= 0:
                return False  # nothing below: the point is absent
            path.append((bid, i))
            bid = e[1]
        if not found:
            return False
        # the removed point counted toward sub_count in every proper
        # ancestor of the node it lived in
        for abid, slot in path:
            # sub_counts above are stale until the whole unwind finishes
            crash_point(self._store, "pst.delete.unwind.step")
            records = self._read(abid)
            header, entries = records[0], records[1:]
            e = list(entries[slot])
            e[6] -= 1
            entries[slot] = tuple(e)
            self._write_internal(abid, header[1], header[2], header[3], entries)
        self._count -= 1
        self._ghosts += 1
        if self._ghosts >= max(self._count, 4 * self._store.block_size):
            self.rebuild()
        return True

    # ==================================================================
    # global rebuilding
    # ==================================================================
    def all_points(self) -> List[Point]:
        """Every live point (walks the whole structure)."""
        out: List[Point] = []

        def rec(bid: int) -> None:
            records = self._read(bid)
            if self._is_leaf(records):
                _tag, _w, _kb, lz_dir, _low = records[0]
                lz = BlockedSequence.attach(self._store, lz_dir, _lz_key)
                out.extend(r[0] for r in lz.scan_all())
                return
            out.extend(r[0] for r in self._q[bid].all_points())
            for e in records[1:]:
                rec(e[1])

        if self._root is not None:
            rec(self._root)
        return out

    def rebuild(self) -> None:
        """Global rebuild (Section 3.3.2's lazy deletion backstop)."""
        pts = self.all_points()
        self._destroy_tree()
        # the entire old tree is freed; nothing is rebuilt yet
        crash_point(self._store, "pst.rebuild.mid")
        self.scheduler.on_rebuild()
        self.rebuilds += 1
        counter("rebuilds", structure="external_pst").inc()
        self._bulk_build(pts)

    def _destroy_tree(self) -> None:
        def rec(bid: int) -> None:
            records = self._read(bid)
            if self._is_leaf(records):
                _tag, _w, key_bids, lz_dir, _low = records[0]
                self._free_key_blocks(key_bids)
                BlockedSequence.attach(self._store, lz_dir, _lz_key).destroy()
            else:
                for e in records[1:]:
                    rec(e[1])
                self._q.pop(bid).destroy()
            self._free_node(bid)

        if self._root is not None:
            rec(self._root)
        self._root = None

    # ==================================================================
    # invariants
    # ==================================================================
    def check_invariants(self, strict_ysets: bool = True) -> None:
        """Validate every structural guarantee of Section 3.3.

        ``strict_ysets=False`` relaxes the ``|Y| >= B/2`` rule to what a
        deferred scheduler guarantees (Y-sets may be under-full but must
        still be the TOPMOST points of their subtrees).
        """
        if self._root is None:
            assert self._count == 0
            return

        def rec(bid: int, lo, hi, is_root: bool):
            """returns (n_keys, n_points, max_y_below, level)"""
            records = self._peek_node(bid)
            if self._is_leaf(records):
                _tag, w, key_bids, lz_dir, low = records[0]
                assert low == lo, "leaf low bound stale"
                keys = []
                for kb in key_bids:
                    keys.extend(self._store.peek(kb))
                assert keys == sorted(keys), "leaf keys out of order"
                assert len(keys) == w, "leaf weight mismatch"
                if not is_root:
                    # bulk build may leave leaves around k/2; splits keep
                    # them under 2k
                    assert max(1, self.k // 2) <= len(keys) <= 2 * self.k - 1, (
                        f"leaf weight {len(keys)} outside bounds"
                    )
                for kk in keys:
                    assert lo < kk <= hi, "leaf key outside interval"
                lz = BlockedSequence.attach(self._store, lz_dir, _lz_key)
                lz.check_invariants()
                recs = lz.scan_all()
                for r in recs:
                    assert lo < r[0] <= hi, "leaf point outside interval"
                    assert r[0] in keys, "leaf point without key"
                max_y = max((r[1] for r in recs), default=None)
                return len(keys), len(recs), max_y, 0

            header, entries = records[0], records[1:]
            level, weight, low = header[1], header[2], header[3]
            assert low == lo, "internal low bound stale"
            q = self._q[bid]
            q.check_invariants()
            qpts = q.all_points()
            for r in qpts:
                assert lo < r[0] <= hi, "Q point outside node interval"
            total_keys, total_pts = 0, len(qpts)
            max_y_all = max((r[1] for r in qpts), default=None)
            prev = lo
            for e in entries:
                _tag, cbid, sep, w, y_count, y_min, sub = e
                assert prev < sep or sep == MAX_KEY, "separators out of order"
                members = [r for r in qpts if prev < r[0] <= min(sep, hi)]
                assert len(members) == y_count, (
                    f"y_count {y_count} != actual {len(members)}"
                )
                if members:
                    assert y_min == min(r[1] for r in members), "y_min stale"
                else:
                    assert y_min is None
                ck, cp, cmax, clevel = rec(cbid, prev, sep, False)
                assert clevel == level - 1, "uneven child levels"
                assert ck == w, "child weight stale"
                assert cp == sub, f"sub_count {sub} != actual {cp}"
                if members and cmax is not None:
                    assert cmax <= min(r[1] for r in members), (
                        "heap violation: below exceeds min(Y)"
                    )
                if strict_ysets and cp > 0:
                    assert y_count >= self.half, (
                        f"Y-set underfull ({y_count}) with content below"
                    )
                if cmax is not None:
                    max_y_all = cmax if max_y_all is None else max(max_y_all, cmax)
                total_keys += ck
                total_pts += cp
                prev = sep
            assert total_keys == weight, "internal weight mismatch"
            if not is_root:
                cap = 2 * (self.a ** level) * self.k
                assert weight < cap, "overweight internal node"
            return total_keys, total_pts, max_y_all, level

        nkeys, npts, _my, _lvl = rec(self._root, MIN_KEY, MAX_KEY, True)
        assert npts == self._count, f"live count {self._count} != {npts}"
        assert nkeys == self._count + self._ghosts, "key/ghost accounting"
