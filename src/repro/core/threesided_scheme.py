"""Section 2.2.1: the sweep-line indexing scheme for 3-sided queries.

Construction (Theorem 4).  Points are first packed into ``n = ceil(N/B)``
disjoint blocks by x-order.  A horizontal sweep line rises from
``y = -inf``; a block is *active* while it still has a point above the
line.  The invariant: among any ``alpha`` consecutive active blocks, at
least one holds ``>= B/alpha`` points above the line.  When the invariant
breaks, the offending ``alpha`` blocks are *coalesced*: their above-line
points (fewer than ``B`` in total) move into one fresh block which
replaces them in the linear order.

Every block thus has an *activity interval* in sweep positions.  A
3-sided query ``(a, b, c)`` reads exactly the blocks that were active at
sweep position ``c`` and whose x-range meets ``[a, b]``; the invariant
guarantees at most ``alpha^2 t + alpha + 1`` such blocks for output size
``T = tB``, while total block count is at most ``n + n/(alpha-1)``
(redundancy ``1 + 1/(alpha-1)``).

The class below performs the construction in memory and exposes both the
indexability view (:meth:`as_indexing_scheme`) and the *catalog* view
used by the Lemma-1 structure: one O(1)-size entry per block
``(x_lo, x_hi, y_live_lo_exclusive, y_live_hi_inclusive, block_index)``,
from which queries can be answered without any other metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.geometry import (
    INF,
    NEG_INF,
    Orientation,
    Point,
    ThreeSidedQuery,
)
from repro.indexability.scheme import IndexingScheme


def block_live_at(y_from: float, y_to: float, c: float) -> bool:
    """Liveness test for a scheme block at query level ``c``.

    ``y_from`` is exclusive and ``y_to`` inclusive, except that the
    initial blocks (``y_from = -inf``) are live for every ``c`` down to
    ``-inf`` itself (degenerate report-all queries).
    """
    if c <= y_from:
        return c == NEG_INF and y_from == NEG_INF
    return c <= y_to


@dataclass(frozen=True)
class CatalogEntry:
    """Liveness + extent summary of one scheme block.

    A block serves query level ``c`` iff ``y_from < c <= y_to`` (see
    :func:`block_live_at` for the ``-inf`` convention) and its x-range
    ``[x_lo, x_hi]`` meets the query's x-interval.
    """

    x_lo: float
    x_hi: float
    y_from: float
    y_to: float
    block: int

    def live_at(self, c: float) -> bool:
        """True iff the block serves query level ``c``."""
        return block_live_at(self.y_from, self.y_to, c)

    def x_overlaps(self, a: float, b: float) -> bool:
        """True iff the block's x-range meets ``[a, b]``."""
        return self.x_lo <= b and self.x_hi >= a


class _Active:
    """A block while it is active in the sweep (linked-list node)."""

    __slots__ = ("index", "above", "x_lo", "x_hi", "prev", "next")

    def __init__(self, index: int, above: Set[int], x_lo: float, x_hi: float):
        self.index = index          # position in the final block list
        self.above = above          # indices (sweep order) of points above
        self.x_lo = x_lo
        self.x_hi = x_hi
        self.prev: Optional["_Active"] = None
        self.next: Optional["_Active"] = None


class ThreeSidedSweepIndex:
    """The Theorem 4 indexing scheme for 3-sided (up-open) queries.

    Parameters
    ----------
    points:
        Distinct planar points.
    block_size:
        The paper's ``B`` (>= 2).
    alpha:
        The coalescing arity ``alpha >= 2``.  Redundancy is bounded by
        ``1 + 1/(alpha-1)``; access overhead grows as ``alpha^2``.
    orientation:
        Which side of the 3-sided query is unbounded.  Defaults to "up"
        (the canonical form).  Other orientations transform coordinates
        internally and hand back points in the original frame.
    """

    def __init__(
        self,
        points: Sequence[Point],
        block_size: int,
        alpha: int = 2,
        orientation: str = Orientation.UP,
    ):
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        if alpha < 2:
            raise ValueError("alpha must be >= 2")
        self.block_size = block_size
        self.alpha = alpha
        self.orientation = Orientation(orientation)
        self._original = list(points)
        canonical = [self.orientation.to_canonical(p) for p in self._original]
        if len(set(canonical)) != len(canonical):
            raise ValueError("points must be distinct")
        # blocks[i] = list of sweep-order point indices stored in block i
        self.blocks: List[List[int]] = []
        self.catalog: List[CatalogEntry] = []
        self._sweep_points: List[Point] = []
        self._build(canonical)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, pts: List[Point]) -> None:
        N = len(pts)
        if N == 0:
            return
        B = self.block_size
        alpha = self.alpha

        # Sweep processing order: by (y, x).  All block contents are
        # stored as indices into this order.
        order = sorted(range(N), key=lambda i: (pts[i][1], pts[i][0]))
        sweep_pts = [pts[i] for i in order]
        self._sweep_points = sweep_pts
        ys = [p[1] for p in sweep_pts]

        # Initial x-partition into ceil(N/B) blocks.
        by_x = sorted(range(N), key=lambda s: (sweep_pts[s][0], sweep_pts[s][1]))
        head: Optional[_Active] = None
        tail: Optional[_Active] = None
        owner: List[Optional[_Active]] = [None] * N
        starts: List[int] = []  # creation step per block index
        ends: List[int] = []    # deactivation step per block index (filled later)

        def new_block(members: Set[int], x_lo: float, x_hi: float, step: int) -> _Active:
            idx = len(self.blocks)
            self.blocks.append(sorted(members))
            starts.append(step)
            ends.append(-1)
            node = _Active(idx, set(members), x_lo, x_hi)
            for s in members:
                owner[s] = node
            return node

        def link_append(node: _Active) -> None:
            nonlocal head, tail
            node.prev = tail
            node.next = None
            if tail is not None:
                tail.next = node
            tail = node
            if head is None:
                head = node

        def unlink(node: _Active) -> Tuple[Optional[_Active], Optional[_Active]]:
            nonlocal head, tail
            p, q = node.prev, node.next
            if p is not None:
                p.next = q
            else:
                head = q
            if q is not None:
                q.prev = p
            else:
                tail = p
            node.prev = node.next = None
            return p, q

        for lo in range(0, N, B):
            members = set(by_x[lo:lo + B])
            x_lo = sweep_pts[by_x[lo]][0]
            x_hi = sweep_pts[by_x[min(lo + B, N) - 1]][0]
            link_append(new_block(members, x_lo, x_hi, 0))

        threshold = B  # a block is "rich" iff len(above) * alpha >= B

        def is_poor(node: _Active) -> bool:
            return len(node.above) * alpha < threshold

        def find_violation(center: _Active) -> Optional[List[_Active]]:
            """A window of ``alpha`` consecutive poor actives containing
            ``center``, or None."""
            if not is_poor(center):
                return None
            # gather up to alpha-1 poor neighbours on each side; a window
            # must consist solely of poor blocks, so stop at a rich one.
            left: List[_Active] = []
            node = center.prev
            while node is not None and len(left) < alpha - 1 and is_poor(node):
                left.append(node)
                node = node.prev
            right: List[_Active] = []
            node = center.next
            while node is not None and len(right) < alpha - 1 and is_poor(node):
                right.append(node)
                node = node.next
            run = list(reversed(left)) + [center] + right
            if len(run) >= alpha:
                pos = len(left)  # index of center in run
                start = max(0, min(pos, len(run) - alpha))
                return run[start:start + alpha]
            return None

        def coalesce(window: List[_Active], step: int) -> _Active:
            members: Set[int] = set()
            for node in window:
                members |= node.above
            x_lo = min(node.x_lo for node in window)
            x_hi = max(node.x_hi for node in window)
            fresh = new_block(members, x_lo, x_hi, step + 1)
            # splice: fresh replaces the window in the linear order
            first, last = window[0], window[-1]
            fresh.prev = first.prev
            fresh.next = last.next
            nonlocal head, tail
            if first.prev is not None:
                first.prev.next = fresh
            else:
                head = fresh
            if last.next is not None:
                last.next.prev = fresh
            else:
                tail = fresh
            for node in window:
                ends[node.index] = step + 1
                node.prev = node.next = None
            return fresh

        def restore_invariant(seed: Optional[_Active], step: int) -> None:
            """Coalesce repeatedly until no violation remains near seed."""
            node = seed
            while node is not None:
                window = find_violation(node)
                if window is None:
                    return
                node = coalesce(window, step)

        # the sweep
        for t in range(N):
            node = owner[t]
            assert node is not None
            node.above.discard(t)
            if not node.above:
                ends[node.index] = t + 1
                p, q = unlink(node)
                # the junction may expose a new all-poor window
                if p is not None:
                    restore_invariant(p, t)
                elif q is not None:
                    restore_invariant(q, t)
            else:
                restore_invariant(node, t)

        # any block still active after the last point would keep end = -1,
        # but every point is eventually swept so every block exhausts.
        assert all(e >= 0 for e in ends), "sweep left an active block"

        # Build catalog entries.  Liveness in sweep steps [start, end)
        # translates to query levels c with ys[start-1] < c <= ys[end-1].
        for idx, members in enumerate(self.blocks):
            if starts[idx] >= ends[idx]:
                continue  # never live (cannot happen, but keep safe)
            y_from = NEG_INF if starts[idx] == 0 else ys[starts[idx] - 1]
            y_to = ys[ends[idx] - 1]
            if not members:
                continue
            x_lo = min(sweep_pts[s][0] for s in members)
            x_hi = max(sweep_pts[s][0] for s in members)
            self.catalog.append(CatalogEntry(x_lo, x_hi, y_from, y_to, idx))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Number of points indexed."""
        return len(self._original)

    @property
    def num_blocks(self) -> int:
        """Number of blocks the structure owns."""
        return len(self.blocks)

    @property
    def redundancy(self) -> float:
        """Measured ``r = B * blocks / N``."""
        if not self._original:
            return 0.0
        return self.block_size * self.num_blocks / len(self._original)

    def redundancy_bound(self) -> float:
        """Theorem 4's guarantee ``1 + 1/(alpha-1)`` (plus rounding slack)."""
        return 1.0 + 1.0 / (self.alpha - 1)

    def block_points(self, index: int) -> List[Point]:
        """Points stored in block ``index``, in the original frame."""
        return [
            self.orientation.from_canonical(self._sweep_points[s])
            for s in self.blocks[index]
        ]

    def as_indexing_scheme(self) -> IndexingScheme:
        """The indexability-theory view (blocks of original-frame points)."""
        return IndexingScheme(
            self.block_size,
            [self.block_points(i) for i in range(self.num_blocks)],
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def candidate_blocks(self, query: ThreeSidedQuery) -> List[int]:
        """Indices of blocks the scheme reads for ``query`` (canonical frame)."""
        return [
            e.block
            for e in self.catalog
            if e.live_at(query.c) and e.x_overlaps(query.a, query.b)
        ]

    def query(self, query: ThreeSidedQuery) -> Tuple[List[Point], List[int]]:
        """Answer a canonical (up-open) 3-sided query.

        Returns ``(points, blocks_read)`` where points are in the original
        frame.  The blocks read are exactly the candidates; the access
        overhead experiments charge them all, found or not.
        """
        cands = self.candidate_blocks(query)
        out: List[Point] = []
        for bi in cands:
            for s in self.blocks[bi]:
                p = self._sweep_points[s]
                if query.contains(p):
                    out.append(self.orientation.from_canonical(p))
        return out, cands

    def query_oriented(
        self,
        *,
        x_lo: float = NEG_INF,
        x_hi: float = INF,
        y_lo: float = NEG_INF,
        y_hi: float = INF,
    ) -> Tuple[List[Point], List[int]]:
        """Answer a 3-sided query given in the ORIGINAL frame.

        The open side must match this index's orientation (e.g. for a
        RIGHT-open index pass ``x_hi=inf`` and finite ``x_lo, y_lo, y_hi``).
        """
        q = self.orientation.query_to_canonical(
            x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi
        )
        return self.query(q)

    # ------------------------------------------------------------------
    # Invariant checking (for tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Validate structural guarantees; raises AssertionError on breach."""
        B, alpha = self.block_size, self.alpha
        N = len(self._original)
        if N == 0:
            assert not self.blocks
            return
        for members in self.blocks:
            assert 0 < len(members) <= B, "block size out of range"
        # redundancy bound with rounding slack: the last x-partition block
        # may be partial, and coalescing adds ceil(n-1)/(alpha-1) blocks.
        n = math.ceil(N / B)
        max_blocks = n + max(0, (n - 1)) // (alpha - 1) + 1
        assert self.num_blocks <= max_blocks, (
            f"{self.num_blocks} blocks exceeds bound {max_blocks}"
        )
        # every point lives in at least one block
        seen = set()
        for members in self.blocks:
            seen.update(members)
        assert seen == set(range(N)), "blocks do not cover the point set"
        # catalog consistency
        for e in self.catalog:
            assert e.y_from <= e.y_to
            assert e.x_lo <= e.x_hi
