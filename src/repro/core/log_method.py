"""Bentley-Saxe logarithmic-method dynamization of the static scheme.

The paper's Section 5 contrasts its fully dynamic structures with "a
modification of the static data structures" as the practical choice.
The classic such modification is the logarithmic method: keep static
Theorem 4 indexes of geometrically growing capacities ``B, 2B, 4B, ...``
(level ``i`` is either empty or holds exactly ``2^i B`` points), insert
through a one-block buffer with binary carries, and delete with
tombstones plus global rebuilding.

Cost profile (amortized), versus the Theorem 6 PST's worst-case bounds:

- insert: every point is rewritten once per level it passes through, at
  ``O(1/B)`` I/Os per level -- ``O(log(n)/B)`` amortized, *cheaper* than
  the PST's ``O(log_B N)``;
- 3-sided query: one static query per non-empty level --
  ``O(log2(n) + t)`` I/Os, a ``log2/log_B`` factor *worse* additively
  than the PST;
- space: ``O(n)`` blocks (each point lives in exactly one level).

Together with A4's static-vs-dynamic table this completes the design
ladder the paper gestures at: static (fastest queries, no updates),
log-method (cheap amortized inserts, log2 queries), PST (worst-case
optimal everything).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.core.static_index import StaticThreeSidedIndex
from repro.geometry import Point
from repro.io.hooks import prefetch_hint


class LogMethodThreeSidedIndex:
    """Amortized-dynamic 3-sided index via the logarithmic method."""

    def __init__(self, store, points: Sequence[Point] = (), *, alpha: int = 2):
        self._store = store
        self._alpha = alpha
        # one-block insert buffer and one-block-chain tombstone set
        self._buffer_bid = store.alloc()
        store.write(self._buffer_bid, [])
        self._tomb_bids: List[int] = []
        self._levels: List[Optional[StaticThreeSidedIndex]] = []
        self._count = 0
        self._tombs = 0
        self.rebuilds = 0
        self.carries = 0
        pts = [(float(p[0]), float(p[1])) for p in points]
        if len(set(pts)) != len(pts):
            raise ValueError("points must be distinct")
        self._bulk_build(pts)

    # ------------------------------------------------------------------
    def _bulk_build(self, pts: List[Point]) -> None:
        B = self._store.block_size
        for lvl in self._levels:
            if lvl is not None:
                lvl.destroy()
        for bid in self._tomb_bids:
            self._store.free(bid)
        self._tomb_bids = []
        self._store.write(self._buffer_bid, [])
        self._levels = []
        self._count = len(pts)
        self._tombs = 0
        # decompose |pts| - r in binary over level capacities; the
        # remainder r < B seeds the buffer
        rest = sorted(pts)
        buffer_n = len(rest) % B
        buffered, rest = rest[:buffer_n], rest[buffer_n:]
        self._store.write(self._buffer_bid, buffered)
        n_units = len(rest) // B
        i = 0
        while n_units:
            cap = (1 << i) * B
            if n_units & 1:
                chunk, rest = rest[:cap], rest[cap:]
                self._levels.append(
                    StaticThreeSidedIndex(self._store, chunk, alpha=self._alpha)
                )
            else:
                self._levels.append(None)
            n_units >>= 1
            i += 1

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def num_levels(self) -> int:
        """Number of levels in the hierarchy."""
        return sum(1 for lvl in self._levels if lvl is not None)

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        total = 1 + len(self._tomb_bids)
        for lvl in self._levels:
            if lvl is not None:
                total += lvl.blocks_in_use()
        return total

    # ------------------------------------------------------------------
    # persistence (crash recovery re-attachment; see repro.resilience)
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        """Everything needed to re-attach this index to its blocks.

        Persistence parity with the external PST: the level blocks,
        buffer block and tombstone chain are already on disk, so the
        snapshot carries only block ids, per-level static-index
        catalogs and the counters.  A fresh copy each call -- it
        travels in a journal superblock and must never alias live
        mutable state.
        """
        return {
            "alpha": self._alpha,
            "buffer_bid": self._buffer_bid,
            "tomb_bids": list(self._tomb_bids),
            "count": self._count,
            "tombs": self._tombs,
            "rebuilds": self.rebuilds,
            "carries": self.carries,
            "levels": [
                None if lvl is None else lvl.snapshot_meta()
                for lvl in self._levels
            ],
        }

    @classmethod
    def attach(cls, store, meta: dict) -> "LogMethodThreeSidedIndex":
        """Rebuild the in-memory handle over existing blocks (no I/O).

        Inverse of :meth:`snapshot_meta`.  Queries work immediately;
        the first carry that consumes an attached level reads its
        points back from the level's data blocks (honest I/O).
        """
        obj = cls.__new__(cls)
        obj._store = store
        obj._alpha = meta["alpha"]
        obj._buffer_bid = meta["buffer_bid"]
        obj._tomb_bids = list(meta["tomb_bids"])
        obj._count = meta["count"]
        obj._tombs = meta["tombs"]
        obj.rebuilds = meta["rebuilds"]
        obj.carries = meta["carries"]
        obj._levels = [
            None if m is None else StaticThreeSidedIndex.attach(store, m)
            for m in meta["levels"]
        ]
        return obj

    # ------------------------------------------------------------------
    def _read_tombs(self) -> Set[Point]:
        if len(self._tomb_bids) > 1:
            prefetch_hint(self._store, self._tomb_bids)
        out: Set[Point] = set()
        for bid in self._tomb_bids:
            out.update(self._store.read(bid).records)
        return out

    def _write_tombs(self, tombs: Set[Point]) -> None:
        B = self._store.block_size
        records = sorted(tombs)
        need = max(1, -(-len(records) // B)) if records else 0
        while len(self._tomb_bids) < need:
            self._tomb_bids.append(self._store.alloc())
        while len(self._tomb_bids) > need:
            self._store.free(self._tomb_bids.pop())
        for i, bid in enumerate(self._tomb_bids):
            self._store.write(bid, records[i * B:(i + 1) * B])

    # ------------------------------------------------------------------
    def query(self, a: float, b: float, c: float) -> List[Point]:
        """3-sided query: one static probe per non-empty level."""
        tombs = self._read_tombs()
        out: Set[Point] = set()
        for p in self._store.read(self._buffer_bid).records:
            if a <= p[0] <= b and p[1] >= c:
                out.add(p)
        for lvl in self._levels:
            if lvl is not None:
                out.update(lvl.query(x_lo=a, x_hi=b, y_lo=c))
        return list(out - tombs)

    # ------------------------------------------------------------------
    def insert(self, x: float, y: float) -> None:
        """Amortized O(log(n)/B + 1) I/Os: buffer, then binary carry."""
        p = (float(x), float(y))
        tombs = self._read_tombs()
        if p in tombs:
            tombs.discard(p)
            self._write_tombs(tombs)
            self._count += 1
            return
        buffered = list(self._store.read(self._buffer_bid).records)
        buffered.append(p)
        self._count += 1
        B = self._store.block_size
        if len(buffered) < B:
            self._store.write(self._buffer_bid, buffered)
            return
        # carry: merge the full buffer with levels 0..i-1 into level i
        self._store.write(self._buffer_bid, [])
        carry: List[Point] = buffered
        i = 0
        while i < len(self._levels) and self._levels[i] is not None:
            lvl = self._levels[i]
            carry.extend(lvl.points())
            lvl.destroy()
            self._levels[i] = None
            i += 1
        if i == len(self._levels):
            self._levels.append(None)
        self._levels[i] = StaticThreeSidedIndex(
            self._store, carry, alpha=self._alpha
        )
        self.carries += 1

    def delete(self, x: float, y: float) -> bool:
        """Tombstone; rebuild when tombstones reach half the live count."""
        p = (float(x), float(y))
        buffered = list(self._store.read(self._buffer_bid).records)
        if p in buffered:
            buffered.remove(p)
            self._store.write(self._buffer_bid, buffered)
            self._count -= 1
            return True
        tombs = self._read_tombs()
        if p in tombs or not self._present(p):
            return False
        tombs.add(p)
        self._count -= 1
        self._tombs += 1
        self._write_tombs(tombs)
        if self._tombs >= max(self._count, 2 * self._store.block_size):
            self.rebuild()
        return True

    def _present(self, p: Point) -> bool:
        for lvl in self._levels:
            if lvl is not None and p in lvl.query(
                x_lo=p[0], x_hi=p[0], y_lo=p[1]
            ):
                return True
        return False

    def rebuild(self) -> None:
        """Rebuild from the live contents (global rebuilding)."""
        pts = self.all_points()
        self.rebuilds += 1
        self._bulk_build(pts)

    def all_points(self) -> List[Point]:
        """Every live point (reads the whole structure)."""
        tombs = self._read_tombs()
        out: Set[Point] = set(self._store.read(self._buffer_bid).records)
        for lvl in self._levels:
            if lvl is not None:
                out.update(lvl.points())
        return list(out - tombs)

    def check_invariants(self) -> None:
        """Validate structural guarantees; raises AssertionError on breach."""
        B = self._store.block_size
        live = self.all_points()
        assert len(live) == self._count, (len(live), self._count)
        for i, lvl in enumerate(self._levels):
            if lvl is not None:
                assert lvl.count == (1 << i) * B, (
                    f"level {i} holds {lvl.count}, expected {(1 << i) * B}"
                )
                lvl.check_invariants()
        assert len(self._store.read(self._buffer_bid).records) < B
