"""The practical static variant the paper's conclusion recommends.

"In practice, the amortized data structures we develop or a modification
of the *static* data structures that they are based upon are likely to be
most practical."  (Section 5.)

This module is that modification: the Theorem 4 sweep scheme materialized
on disk with its catalog held in main memory.  For N points the catalog
is ~2N/B entries -- O(n) *memory words*, a few megabytes for
billion-point sets at realistic B, which is exactly the trade practical
systems make (cf. the directory of a grid file, the root levels of any
B-tree).  In exchange:

- queries cost exactly the candidate blocks: ``<= alpha^2 t + alpha + 1``
  reads and **no search I/O at all** -- beating the PST's constant by the
  tree-descent factor;
- construction writes ``O(n)`` blocks;
- the structure is read-only (rebuild to change it), which is what
  "static" means here.

A 4-sided companion applies the same trick to the Theorem 5 layering.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import (
    INF,
    NEG_INF,
    FourSidedQuery,
    Orientation,
    Point,
)
from repro.core.threesided_scheme import CatalogEntry, ThreeSidedSweepIndex
from repro.io.hooks import prefetch_hint


class StaticThreeSidedIndex:
    """Read-only 3-sided index: sweep scheme on disk, catalog in memory.

    Queries cost only the Theorem 4 candidate blocks (``O(t + 1)`` reads,
    zero search I/Os).  Any orientation of the open side is supported.
    """

    def __init__(
        self,
        store,
        points: Sequence[Point],
        *,
        alpha: int = 2,
        orientation: str = Orientation.UP,
    ):
        self._store = store
        self._sweep = ThreeSidedSweepIndex(
            points, store.block_size, alpha, orientation=orientation
        )
        self.alpha = alpha
        self.orientation = self._sweep.orientation
        self._count = self._sweep.num_points
        # materialize each scheme block; the catalog (with block ids
        # substituted) stays in memory
        self._catalog: List[Tuple[CatalogEntry, int]] = []
        for entry in self._sweep.catalog:
            bid = store.alloc()
            store.write(bid, self._sweep.block_points(entry.block))
            self._catalog.append((entry, bid))

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        if self._sweep is not None:
            return self._sweep.num_points
        return self._count

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        return len(self._catalog)

    def memory_catalog_entries(self) -> int:
        """Size of the in-memory directory (the practicality trade)."""
        return len(self._catalog)

    # ------------------------------------------------------------------
    def query(
        self,
        *,
        x_lo: float = NEG_INF,
        x_hi: float = INF,
        y_lo: float = NEG_INF,
        y_hi: float = INF,
    ) -> List[Point]:
        """3-sided query in the original frame; the open side must match
        this index's orientation.  Costs exactly the candidate blocks."""
        q = self.orientation.query_to_canonical(
            x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi
        )
        # the catalog is in memory, so the full slab list is known up
        # front: announce it before reading so a readahead pool batches
        candidates = [
            bid for entry, bid in self._catalog
            if entry.live_at(q.c) and entry.x_overlaps(q.a, q.b)
        ]
        if len(candidates) > 1:
            prefetch_hint(self._store, candidates)
        out = set()
        for bid in candidates:
            for p in self._store.read(bid).records:
                cp = p  # blocks hold original-frame points
                if q.contains(self.orientation.to_canonical(cp)):
                    out.add(cp)
        return list(out)

    def candidate_blocks(self, **kwargs) -> int:
        """How many blocks the query would read (no I/O performed)."""
        q = self.orientation.query_to_canonical(**kwargs)
        return sum(
            1 for entry, _bid in self._catalog
            if entry.live_at(q.c) and entry.x_overlaps(q.a, q.b)
        )

    def points(self) -> List[Point]:
        """The indexed point set.

        Freshly built indexes answer from the in-memory sweep; an
        :meth:`attach`-ed handle reads every data block once (honest
        I/O -- a remounted structure's points genuinely live on disk)
        and dedupes the scheme's redundant copies.  Sorted in the
        attached case so callers get a deterministic order either way
        once they sort (every caller here rebuilds, which sorts).
        """
        if self._sweep is not None:
            return list(self._sweep._original)
        seen = set()
        for _entry, bid in self._catalog:
            seen.update(self._store.read(bid).records)
        return sorted(seen)

    def _ensure_sweep(self) -> None:
        """Rebuild the in-memory sweep after an attach (deterministic:
        the sweep is a pure function of the sorted point set)."""
        if self._sweep is None:
            self._sweep = ThreeSidedSweepIndex(
                self.points(), self._store.block_size, self.alpha,
                orientation=self.orientation.side,
            )

    # ------------------------------------------------------------------
    # persistence (crash recovery re-attachment; see repro.resilience)
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        """Everything needed to re-attach this index to its blocks.

        The data blocks are already on disk; what a crash destroys is
        the in-memory catalog.  The snapshot is a fresh copy each call
        -- it travels in a journal superblock and must never alias live
        mutable state.
        """
        return {
            "alpha": self.alpha,
            "orientation": self.orientation.side,
            "count": self.count,
            "catalog": [
                ((e.x_lo, e.x_hi, e.y_from, e.y_to, e.block), bid)
                for e, bid in self._catalog
            ],
        }

    @classmethod
    def attach(cls, store, meta: dict) -> "StaticThreeSidedIndex":
        """Rebuild the in-memory handle over existing blocks (no I/O).

        Inverse of :meth:`snapshot_meta`.  Queries work immediately off
        the restored catalog; operations that need the point set
        (:meth:`points`, :meth:`check_invariants`) reload it from the
        data blocks on first use.
        """
        obj = cls.__new__(cls)
        obj._store = store
        obj._sweep = None
        obj.alpha = meta["alpha"]
        obj.orientation = Orientation(meta["orientation"])
        obj._count = meta["count"]
        obj._catalog = [
            (CatalogEntry(*entry), bid) for entry, bid in meta["catalog"]
        ]
        return obj

    def destroy(self) -> None:
        """Free every block owned by the structure."""
        for _entry, bid in self._catalog:
            self._store.free(bid)
        self._catalog = []

    def check_invariants(self) -> None:
        """Validate structural guarantees; raises AssertionError on breach."""
        self._ensure_sweep()
        self._sweep.check_invariants()
        assert len(self._catalog) == self._sweep.num_blocks


class StaticFourSidedIndex:
    """Read-only 4-sided index: the Theorem 5 layering materialized on
    disk with its directory in memory.

    The in-memory :class:`FourSidedLayeredIndex` plays the role of the
    directory: it decides *which* blocks a query must read; this class
    materializes every scheme block on the store and performs the actual
    reads, so queries cost ``O(rho + t)`` block I/Os with no search I/O.
    Space is ``O(n log n / log rho)`` blocks -- the static trade the
    paper's conclusion recommends over the fully dynamic Theorem 7
    machinery.
    """

    def __init__(self, store, points: Sequence[Point], *, rho: int = 4,
                 alpha: int = 2):
        from repro.core.foursided_scheme import FourSidedLayeredIndex

        self._store = store
        self._scheme = FourSidedLayeredIndex(
            points, store.block_size, rho=rho, alpha=alpha
        )
        self.rho = rho
        # materialize: one store block per scheme block, per set and side
        self._bids = {}
        for level_i, level in enumerate(self._scheme.levels):
            for s in level:
                for side, idx in (("left", s.left_index),
                                  ("right", s.right_index)):
                    for block_i in range(idx.num_blocks):
                        bid = store.alloc()
                        store.write(bid, idx.block_points(block_i))
                        self._bids[(level_i, s.index, side, block_i)] = bid

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._scheme.num_points

    def num_levels(self) -> int:
        """Number of levels in the hierarchy."""
        return self._scheme.num_levels

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        return len(self._bids)

    # ------------------------------------------------------------------
    def query(self, a: float, b: float, c: float, d: float) -> List[Point]:
        """4-sided query: the directory picks the blocks, we read them."""
        q = FourSidedQuery(a, b, c, d)
        _pts, block_ids = self._scheme.query(q)
        candidates = [self._bids[key] for key in block_ids]
        if len(candidates) > 1:
            prefetch_hint(self._store, candidates)
        out = set()
        for bid in candidates:
            for p in self._store.read(bid).records:
                if q.contains(p):
                    out.add(p)
        return list(out)

    def blocks_for_query(self, a: float, b: float, c: float, d: float) -> int:
        """How many blocks the query would read (no I/O performed)."""
        _pts, block_ids = self._scheme.query(FourSidedQuery(a, b, c, d))
        return len(block_ids)

    def destroy(self) -> None:
        """Free every block owned by the structure."""
        for bid in self._bids.values():
            self._store.free(bid)
        self._bids = {}

    def check_invariants(self) -> None:
        """Validate structural guarantees; raises AssertionError on breach."""
        self._scheme.check_invariants()
        assert len(self._bids) == self._scheme.num_blocks
