"""Section 4: the dynamic 4-sided range searching structure (Theorem 7).

A base tree of fan-out ``rho = Theta(log_B N)`` over the x-order of the
points.  Every node ``v`` stores all points of its x-range in auxiliary
structures:

- a LEFT-open 3-sided structure (queries ``x <= b, c <= y <= d``),
- a RIGHT-open 3-sided structure (queries ``x >= a, c <= y <= d``),
- a y-sorted list (a B+-tree keyed on ``(y, x)``).

Both 3-sided structures are external priority search trees over rotated
coordinates (Theorem 6), so each level stores every point in three
linear-space structures; with ``O(log_rho n) = O(log n / log log_B N)``
levels the total is ``O(n log n / log log_B N)`` blocks -- Theorem 7's
space bound.

A query ``(a, b, c, d)`` routes to the lowest node whose x-range covers
``[a, b]``; the child holding ``a`` answers a right-open query, the child
holding ``b`` a left-open one, and each fully-spanned middle child
reports its y-range ``[c, d]`` by an in-order scan of its y-list.

Deviations from the paper, recorded here and in DESIGN.md:

- The paper reaches each middle child's list entry point through an
  external interval tree of y-segments with embedded list links, making
  the middle phase ``O(rho + t)``.  We locate each middle child's entry
  by a B+-tree descent instead: ``O(rho log_B N + t)``.  With
  ``rho = log_B N`` this adds at most a ``log_B N`` factor on the
  additive ``rho`` term and leaves the output-sensitive term intact; the
  stand-alone interval tree (the paper's substrate) lives in
  :mod:`repro.substrates.interval_tree` and is evaluated in E9.
- The base tree is rebalanced by global rebuilding (rebuild after
  ``N_0/2`` updates) plus local leaf splits, i.e. the amortized variant;
  the paper sketches a weight-balanced base with the Section 3.3
  machinery for worst-case updates.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.geometry import INF, NEG_INF, FourSidedQuery, Point
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.substrates.bplus_tree import BPlusTree

MIN_KEY = (NEG_INF, NEG_INF)
MAX_KEY = (INF, INF)


class _Node:
    """One base-tree node: x-interval, children, auxiliary structures."""

    __slots__ = ("low", "high", "children", "seps", "right_pst", "left_pst",
                 "ylist", "npoints")

    def __init__(self, low, high):
        self.low = low                   # exclusive composite bound
        self.high = high                 # inclusive composite bound
        self.children: List["_Node"] = []
        self.seps: List[Tuple] = []      # child upper bounds (composite)
        self.right_pst: Optional[ExternalPrioritySearchTree] = None
        self.left_pst: Optional[ExternalPrioritySearchTree] = None
        self.ylist: Optional[BPlusTree] = None
        self.npoints = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


class ExternalRangeTree:
    """Dynamic 4-sided range searching (Theorem 7).

    Parameters
    ----------
    store:
        Block storage (defines ``B``).
    points:
        Initial point set; distinct ``(x, y)`` pairs.
    rho:
        Base-tree fan-out; defaults to ``max(2, round(log_B N))`` at
        build time, the paper's choice.
    """

    def __init__(self, store, points: Sequence[Point] = (), rho: Optional[int] = None):
        self._store = store
        self._rho_fixed = rho
        pts = [(float(x), float(y)) for x, y in points]
        if len(set(pts)) != len(pts):
            raise ValueError("points must be distinct")
        self.rebuilds = 0
        self._root: Optional[_Node] = None
        self._count = 0
        self._updates = 0
        self._bulk_build(pts)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _choose_rho(self, n_points: int) -> int:
        if self._rho_fixed is not None:
            return max(2, self._rho_fixed)
        B = self._store.block_size
        if n_points <= B:
            return 2
        return max(2, round(math.log(n_points) / math.log(B)))

    def _bulk_build(self, pts: List[Point]) -> None:
        self._count = len(pts)
        self._built_n = len(pts)
        self._updates = 0
        self.rho = self._choose_rho(len(pts))
        recs = sorted(((p[0], p[1]) for p in pts))  # key order = (x, y)
        self._root = self._build(recs, MIN_KEY, MAX_KEY)

    def _build(self, recs: List[Point], low, high) -> _Node:
        node = _Node(low, high)
        B = self._store.block_size
        leaf_cap = self.rho * B
        self._attach_aux(node, recs, leaf=len(recs) <= leaf_cap)
        if len(recs) <= leaf_cap:
            return node
        m = self.rho
        base, extra = divmod(len(recs), m)
        cuts = [0]
        for i in range(m):
            cuts.append(cuts[-1] + base + (1 if i < extra else 0))
        prev = low
        for i in range(m):
            chunk = recs[cuts[i]:cuts[i + 1]]
            sep = (chunk[-1][0], chunk[-1][1]) if i < m - 1 else high
            node.children.append(self._build(chunk, prev, sep))
            node.seps.append(sep)
            prev = sep
        return node

    def _attach_aux(self, node: _Node, recs: List[Point], leaf: bool = False) -> None:
        node.npoints = len(recs)
        if not leaf:
            # RIGHT-open: rotate (x, y) -> (y, x); query x>=a becomes y'>=a
            node.right_pst = ExternalPrioritySearchTree(
                self._store, [(y, x) for x, y in recs]
            )
            # LEFT-open: rotate (x, y) -> (y, -x); query x<=b becomes y'>=-b
            node.left_pst = ExternalPrioritySearchTree(
                self._store, [(y, -x) for x, y in recs]
            )
        # leaves answer every query by scanning their <= rho*B points, so
        # the two 3-sided structures would never be consulted there; the
        # paper's leaf procedure ("load the rho blocks of S_0j") agrees
        node.ylist = BPlusTree.bulk_load(
            self._store,
            sorted((((y, x), None) for x, y in recs)),
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def num_levels(self) -> int:
        """Number of levels in the hierarchy."""
        h, node = 1, self._root
        while node is not None and not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        total = 0

        def rec(node: _Node) -> None:
            nonlocal total
            if node.right_pst is not None:
                total += node.right_pst.blocks_in_use()
                total += node.left_pst.blocks_in_use()
            # B+-tree block count: walk it without I/O accounting
            total += self._bplus_blocks(node.ylist)
            for ch in node.children:
                rec(ch)

        if self._root is not None:
            rec(self._root)
        return total

    def _bplus_blocks(self, tree: BPlusTree) -> int:
        count = 0
        stack = [tree.root_bid]
        while stack:
            bid = stack.pop()
            count += 1
            records = self._store.peek(bid)
            if records[0][0] == "I":
                stack.extend(child for _sep, child in records[1:])
        return count

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def query(self, a: float, b: float, c: float, d: float) -> List[Point]:
        """All points with ``a <= x <= b`` and ``c <= y <= d``."""
        if self._root is None or self._count == 0:
            return []
        counter("queries", structure="range_tree", op="four_sided").inc()
        lo_key, hi_key = (a, NEG_INF), (b, INF)
        node = self._root
        # descend to the lowest node whose x-range covers [a, b]
        while not node.is_leaf:
            ci = self._route(node, lo_key)
            cj = self._route(node, hi_key)
            if ci != cj:
                break
            node = node.children[ci]
        if node.is_leaf:
            with span(self._store, "rt.leaf_scan"):
                return self._scan_leaf(node, a, b, c, d)
        ci = self._route(node, lo_key)
        cj = self._route(node, hi_key)
        out: List[Point] = []
        with span(self._store, "rt.right_open"):
            out.extend(self._right_open(node.children[ci], a, c, d))
        with span(self._store, "rt.left_open"):
            out.extend(self._left_open(node.children[cj], b, c, d))
        with span(self._store, "rt.middle"):
            for k in range(ci + 1, cj):
                out.extend(self._middle(node.children[k], c, d))
        return out

    @staticmethod
    def _route(node: _Node, key) -> int:
        for i, sep in enumerate(node.seps):
            if key <= sep:
                return i
        return len(node.seps) - 1

    def _scan_leaf(self, node: _Node, a, b, c, d) -> List[Point]:
        """Load the whole leaf set (<= rho blocks) and filter."""
        q = FourSidedQuery(a, b, c, d)
        out = []
        for (y, x), _none in node.ylist.items():
            if q.contains((x, y)):
                out.append((x, y))
        return out

    def _right_open(self, child: _Node, a, c, d) -> List[Point]:
        if child.is_leaf:
            return self._scan_leaf(child, a, INF, c, d)
        pts = child.right_pst.query(c, d, a)   # rotated frame (y, x)
        return [(x, y) for y, x in pts]

    def _left_open(self, child: _Node, b, c, d) -> List[Point]:
        if child.is_leaf:
            return self._scan_leaf(child, NEG_INF, b, c, d)
        pts = child.left_pst.query(c, d, -b)   # rotated frame (y, -x)
        return [(-nx, y) for y, nx in pts]

    def _middle(self, child: _Node, c, d) -> List[Point]:
        """Fully-spanned child: in-order scan of its y-list over [c, d]."""
        pairs, _reads = child.ylist.scan_from(
            (c, NEG_INF), lambda k, v: k[0] <= d
        )
        return [(x, y) for (y, x), _none in pairs]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, x: float, y: float) -> None:
        """Insert a point: O(log_B N) work at each of the
        O(log n / log log_B N) covering nodes, then amortized global
        rebuilding."""
        x, y = float(x), float(y)
        if self._root is None:
            self._bulk_build([(x, y)])
            return
        counter("inserts", structure="range_tree").inc()
        key = (x, y)
        node = self._root
        while True:
            if node.right_pst is not None:
                with span(self._store, "rt.insert.psts"):
                    node.right_pst.insert(y, x)
                    node.left_pst.insert(y, -x)
            with span(self._store, "rt.insert.ylist"):
                node.ylist.insert((y, x), None)
            node.npoints += 1
            if node.is_leaf:
                break
            i = self._route(node, key)
            if i == len(node.seps) - 1 and key > node.seps[i] and node.seps[i] != MAX_KEY:
                node.seps[i] = key
            node = node.children[i]
        self._count += 1
        self._note_update()

    def delete(self, x: float, y: float) -> bool:
        """Delete a point; True if present."""
        if self._root is None:
            return False
        x, y = float(x), float(y)
        key = (x, y)
        # the root y-list is the membership oracle: if the point is absent
        # there, nothing has been touched yet
        node = self._root
        if not node.ylist.delete((y, x), None):
            return False
        if node.right_pst is not None:
            node.right_pst.delete(y, x)
            node.left_pst.delete(y, -x)
        node.npoints -= 1
        while not node.is_leaf:
            i = self._route(node, key)
            node = node.children[i]
            node.ylist.delete((y, x), None)
            if node.right_pst is not None:
                node.right_pst.delete(y, x)
                node.left_pst.delete(y, -x)
            node.npoints -= 1
        self._count -= 1
        self._note_update()
        return True

    def _note_update(self) -> None:
        self._updates += 1
        # rebuild after half the size at the LAST rebuild, so the trigger
        # cannot recede as inserts grow the structure
        base = max(self._built_n, 4 * self._store.block_size)
        if self._updates >= base // 2:
            self.rebuild()

    def rebuild(self) -> None:
        """Global rebuild (the paper's amortized rebalancing backstop)."""
        pts = self.all_points()
        self._destroy()
        self.rebuilds += 1
        counter("rebuilds", structure="range_tree").inc()
        self._bulk_build(pts)

    def all_points(self) -> List[Point]:
        """Every live point (reads the whole structure)."""
        if self._root is None:
            return []
        return [(x, y) for (y, x), _none in self._root.ylist.items()]

    def _destroy(self) -> None:
        # The simulated store reclaims blocks through free(); walking
        # every structure to free is O(space), done only at rebuilds.
        def rec(node: _Node) -> None:
            if node.right_pst is not None:
                node.right_pst._destroy_tree()
                node.left_pst._destroy_tree()
            self._free_bplus(node.ylist)
            for ch in node.children:
                rec(ch)

        if self._root is not None:
            rec(self._root)
        self._root = None

    def _free_bplus(self, tree: BPlusTree) -> None:
        stack = [tree.root_bid]
        while stack:
            bid = stack.pop()
            records = self._store.peek(bid)
            if records[0][0] == "I":
                stack.extend(child for _sep, child in records[1:])
            self._store.free(bid)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Aux structures at every node agree with each other and the
        base partition."""
        if self._root is None:
            assert self._count == 0
            return

        def rec(node: _Node, lo, hi) -> List[Point]:
            ypts = [(x, y) for (y, x), _ in node.ylist.items()]
            assert len(ypts) == node.npoints, "npoints stale"
            for x, y in ypts:
                assert lo < (x, y) <= hi, "point outside node interval"
            if node.right_pst is not None:
                rpts = {(x, y) for y, x in node.right_pst.all_points()}
                lpts = {(x, y) for y, nx in node.left_pst.all_points() for x in [-nx]}
                assert rpts == set(ypts), "right PST disagrees with ylist"
                assert lpts == set(ypts), "left PST disagrees with ylist"
                node.right_pst.check_invariants()
                node.left_pst.check_invariants()
            else:
                assert node.is_leaf, "internal node missing 3-sided structures"
            node.ylist.check_invariants()
            if node.is_leaf:
                return ypts
            assert len(node.children) == len(node.seps)
            union: List[Point] = []
            prev = lo
            for ch, sep in zip(node.children, node.seps):
                union.extend(rec(ch, prev, sep))
                prev = sep
            assert sorted(union) == sorted(ypts), "children lose points"
            return ypts

        total = rec(self._root, MIN_KEY, MAX_KEY)
        assert len(total) == self._count
