"""Section 3.1: the dynamic 3-sided structure on Theta(B^2) points.

Lemma 1 of the paper: a set of O(B^2) points can be kept in O(B) disk
blocks so that a 3-sided query touching T points costs O(1 + T/B) I/Os
and updates cost O(1) I/Os amortized.  The construction is the Theorem 4
sweep scheme *materialized* on the block store, plus:

- a **catalog**: one O(1)-size record per scheme block holding its
  x-range, activity y-interval, block id and max-y.  With O(B) scheme
  blocks the catalog fits in O(1) blocks, which a query loads first to
  decide which data blocks to touch -- exactly the paper's "O(1) catalog
  blocks" device.
- an **update buffer** of at most ~B pending insertions ("+") and
  deletions ("-", tombstones) in one block.  Every read path merges the
  buffer; when it fills, or after B updates, the structure is rebuilt in
  O(B) I/Os.  Updates are therefore O(1) I/Os amortized.  Tombstones
  (rather than eager removal) are required for correctness because the
  sweep scheme stores *redundant copies*: a point can live in its
  original x-partition block and in every coalesced block that later
  absorbed it, so removing one copy would let queries at lower sweep
  levels resurrect the others.

The paper builds the scheme in O(B) I/Os using a priority queue over the
coalescing events; here the sweep runs on in-memory copies of the points
(CPU cost, not I/O) and the structure is written out in O(B) I/Os, the
same I/O bound.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.geometry import NEG_INF, Point, ThreeSidedQuery
from repro.core.threesided_scheme import ThreeSidedSweepIndex, block_live_at
from repro.obs.metrics import counter
from repro.obs.spans import span

# catalog record: (x_lo, x_hi, y_from, y_to, data_bid, y_max)
# pending record: ("+", point) for buffered inserts,
#                 ("-", point) for tombstoned deletes


class SmallThreeSidedStructure:
    """Dynamic 3-sided (up-open) queries on up to ~B^2 points (Lemma 1)."""

    def __init__(
        self,
        store,
        points: Sequence[Point] = (),
        *,
        alpha: int = 2,
        max_points: Optional[int] = None,
    ):
        self._store = store
        self._alpha = alpha
        self.max_points = max_points
        self._catalog_bids: List[int] = []
        self._data_bids: List[int] = []
        self._pending_bid = store.alloc()
        store.write(self._pending_bid, [])
        self._count = 0
        self._updates_since_rebuild = 0
        self.rebuilds = 0
        self._bulk_build(list(points))

    # ------------------------------------------------------------------
    # construction / rebuild
    # ------------------------------------------------------------------
    def _bulk_build(self, points: List[Point]) -> None:
        if self.max_points is not None and len(points) > self.max_points:
            raise ValueError(
                f"{len(points)} points exceed capacity {self.max_points}"
            )
        store = self._store
        B = store.block_size
        for bid in self._data_bids:
            store.free(bid)
        for bid in self._catalog_bids:
            store.free(bid)
        self._data_bids = []
        self._catalog_bids = []
        self._count = len(points)
        self._updates_since_rebuild = 0
        if not points:
            return
        index = ThreeSidedSweepIndex(points, B, self._alpha)
        catalog_records: List[Tuple] = []
        for entry in index.catalog:
            pts = index.block_points(entry.block)
            bid = store.alloc()
            store.write(bid, pts)
            self._data_bids.append(bid)
            y_max = max(p[1] for p in pts)
            catalog_records.append(
                (entry.x_lo, entry.x_hi, entry.y_from, entry.y_to, bid, y_max)
            )
        for lo in range(0, len(catalog_records), B):
            bid = store.alloc()
            store.write(bid, catalog_records[lo:lo + B])
            self._catalog_bids.append(bid)

    def rebuild(self) -> None:
        """Re-run the sweep construction over the live points (O(B) I/Os)."""
        points = self.all_points()
        self._store.write(self._pending_bid, [])
        self.rebuilds += 1
        self._bulk_build(points)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def is_empty(self) -> bool:
        """True iff nothing is stored."""
        return self._count == 0

    def num_blocks(self) -> int:
        """Blocks owned: data + catalog + pending."""
        return len(self._data_bids) + len(self._catalog_bids) + 1

    def _read_catalog(self) -> List[Tuple]:
        records: List[Tuple] = []
        for bid in self._catalog_bids:
            records.extend(self._store.read(bid).records)
        return records

    def _read_buffer(self) -> Tuple[List[Point], Set[Point]]:
        """(buffered inserts, tombstones); one I/O."""
        plus: List[Point] = []
        minus: Set[Point] = set()
        for tag, p in self._store.read(self._pending_bid).records:
            if tag == "+":
                plus.append(p)
            else:
                minus.add(p)
        return plus, minus

    def _write_buffer(self, plus: List[Point], minus: Set[Point]) -> None:
        records = [("+", p) for p in plus] + [("-", p) for p in minus]
        self._store.write(self._pending_bid, records)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: ThreeSidedQuery) -> List[Point]:
        """All points with ``q.a <= x <= q.b`` and ``y >= q.c``.

        Costs O(1) catalog/buffer I/Os plus one read per candidate block;
        Lemma 1 bounds the candidates by O(1 + T/B).
        """
        with span(self._store, "small.catalog"):
            catalog = self._read_catalog()
            plus, minus = self._read_buffer()
        out: Set[Point] = set()
        with span(self._store, "small.data"):
            for x_lo, x_hi, y_from, y_to, bid, _y_max in catalog:
                if block_live_at(y_from, y_to, q.c) and x_lo <= q.b and x_hi >= q.a:
                    for p in self._store.read(bid).records:
                        if q.contains(p) and p not in minus:
                            out.add(p)
        for p in plus:
            if q.contains(p):
                out.add(p)
        return list(out)

    def report_x_range(self, x_lo: float, x_hi: float) -> List[Point]:
        """Degenerate query: every point with x in [x_lo, x_hi].

        This is the operation the external PST uses to materialize a
        Y-set (at most B points), at O(1) I/O cost.
        """
        return self.query(ThreeSidedQuery(x_lo, x_hi, NEG_INF))

    def top(self) -> Optional[Point]:
        """The point with maximum y (ties by x), or None if empty.

        Reads catalog + buffer + as many data blocks (best y-max first)
        as tombstones force; with < B tombstones between rebuilds this is
        O(1) I/Os amortized.
        """
        if self._count == 0:
            return None
        catalog = self._read_catalog()
        plus, minus = self._read_buffer()
        best: Optional[Point] = None
        for p in plus:
            if best is None or (p[1], p[0]) > (best[1], best[0]):
                best = p
        for entry in sorted(catalog, key=lambda e: e[5], reverse=True):
            # strict: at equal y a larger x inside the block can still win
            if best is not None and best[1] > entry[5]:
                break
            for p in self._store.read(entry[4]).records:
                if p in minus:
                    continue
                if best is None or (p[1], p[0]) > (best[1], best[0]):
                    best = p
        return best

    def top_in_x_range(self, x_lo, x_hi) -> Optional[Point]:
        """The max-y point with ``x_lo <= x <= x_hi`` (ties by x).

        Same best-block-first strategy as :meth:`top`: blocks are probed
        in descending y-max order and the scan stops once no remaining
        block can beat the current best -- typically O(1) I/Os.
        """
        if self._count == 0:
            return None
        catalog = self._read_catalog()
        plus, minus = self._read_buffer()
        best: Optional[Point] = None

        def better(p: Point) -> bool:
            return best is None or (p[1], p[0]) > (best[1], best[0])

        for p in plus:
            if x_lo <= p[0] <= x_hi and better(p):
                best = p
        candidates = [
            e for e in catalog if e[0] <= x_hi and e[1] >= x_lo
        ]
        for entry in sorted(candidates, key=lambda e: e[5], reverse=True):
            # strict: at equal y a larger x inside the block can still win
            if best is not None and best[1] > entry[5]:
                break
            for p in self._store.read(entry[4]).records:
                if p in minus or not (x_lo <= p[0] <= x_hi):
                    continue
                if better(p):
                    best = p
        return best

    def all_points(self) -> List[Point]:
        """Every live point exactly once (O(B) I/Os)."""
        plus, minus = self._read_buffer()
        seen: Set[Point] = set()
        for bid in self._data_bids:
            seen.update(self._store.read(bid).records)
        seen -= minus
        seen.update(plus)
        return list(seen)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, p: Point) -> None:
        """Buffer an insertion; O(1) I/Os amortized (rebuild every ~B).

        The caller must not insert a point that is already present.
        """
        if self.max_points is not None and self._count >= self.max_points:
            raise ValueError("structure at capacity")
        plus, minus = self._read_buffer()
        if p in minus:
            minus.discard(p)  # resurrect a tombstoned point
        else:
            plus.append(p)
        self._count += 1
        self._after_update(plus, minus)

    def delete(self, p: Point) -> bool:
        """Tombstone a point; O(1) I/Os amortized.  True if present."""
        plus, minus = self._read_buffer()
        if p in plus:
            plus.remove(p)
        else:
            # presence check: a live point always matches the degenerate
            # query at its own coordinates (O(1) candidate blocks)
            if p in minus or not self._present_on_disk(p):
                return False
            minus.add(p)
        self._count -= 1
        self._after_update(plus, minus)
        return True

    def _present_on_disk(self, p: Point) -> bool:
        catalog = self._read_catalog()
        for x_lo, x_hi, y_from, y_to, bid, _y_max in catalog:
            if block_live_at(y_from, y_to, p[1]) and x_lo <= p[0] <= x_hi:
                if p in self._store.read(bid).records:
                    return True
        return False

    def _after_update(self, plus: List[Point], minus: Set[Point]) -> None:
        self._updates_since_rebuild += 1
        B = self._store.block_size
        if (
            len(plus) + len(minus) >= B
            or self._updates_since_rebuild >= B
        ):
            self._store.write(self._pending_bid, [])
            self.rebuilds += 1
            counter("rebuilds", structure="small_structure").inc()
            seen: Set[Point] = set()
            for bid in self._data_bids:
                seen.update(self._store.read(bid).records)
            seen -= minus
            seen.update(plus)
            self._bulk_build(list(seen))
        else:
            self._write_buffer(plus, minus)

    # ------------------------------------------------------------------
    # persistence (crash recovery re-attachment; see repro.resilience)
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        """Everything needed to re-attach this structure to its blocks.

        The returned dict is a fresh copy each call: it may be stored
        in a journal superblock and must not alias live mutable state.
        """
        return {
            "alpha": self._alpha,
            "max_points": self.max_points,
            "catalog_bids": list(self._catalog_bids),
            "data_bids": list(self._data_bids),
            "pending_bid": self._pending_bid,
            "count": self._count,
            "updates": self._updates_since_rebuild,
            "rebuilds": self.rebuilds,
        }

    @classmethod
    def attach(cls, store, meta: dict) -> "SmallThreeSidedStructure":
        """Rebuild the in-memory handle over existing blocks.

        Inverse of :meth:`snapshot_meta`; performs no I/O.  Lists are
        copied so the attached instance never aliases the meta dict.
        """
        obj = cls.__new__(cls)
        obj._store = store
        obj._alpha = meta["alpha"]
        obj.max_points = meta["max_points"]
        obj._catalog_bids = list(meta["catalog_bids"])
        obj._data_bids = list(meta["data_bids"])
        obj._pending_bid = meta["pending_bid"]
        obj._count = meta["count"]
        obj._updates_since_rebuild = meta["updates"]
        obj.rebuilds = meta["rebuilds"]
        return obj

    # ------------------------------------------------------------------
    def destroy(self) -> None:
        """Free every block owned by the structure."""
        for bid in self._data_bids:
            self._store.free(bid)
        for bid in self._catalog_bids:
            self._store.free(bid)
        self._store.free(self._pending_bid)
        self._data_bids = []
        self._catalog_bids = []
        self._count = 0

    def check_invariants(self) -> None:
        """Count and coverage agree with the physical blocks."""
        pts = self.all_points()
        assert len(pts) == self._count, (
            f"count {self._count} != stored {len(pts)}"
        )
        catalog = self._read_catalog()
        assert sorted(e[4] for e in catalog) == sorted(self._data_bids)
        B = self._store.block_size
        assert len(self._catalog_bids) <= max(1, -(-len(catalog) // B))
        # buffer never exceeds one block
        plus, minus = self._read_buffer()
        assert len(plus) + len(minus) < B
        # every point is found by a full-range query (x bounds taken from
        # the data so composite tuple x-keys work too)
        if pts:
            x_lo = min(p[0] for p in pts)
            x_hi = max(p[0] for p in pts)
            full = self.query(ThreeSidedQuery(x_lo, x_hi, NEG_INF))
            assert set(full) == set(pts), "full-range query misses points"
