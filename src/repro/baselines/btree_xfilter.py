"""1-D baseline: B+-tree on x, filter on y.

The textbook non-solution for 2-D range search: queries cost
``O(log_B N + X/B)`` I/Os where ``X`` is the number of points in the
query's x-slab regardless of the y-range -- unboundedly worse than
output-sensitive on thin-slab workloads, which E8 demonstrates.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry import FourSidedQuery, Point, ThreeSidedQuery
from repro.substrates.bplus_tree import BPlusTree


class BTreeXFilter:
    """B+-tree keyed on (x, y); range queries filter y in the client."""

    def __init__(self, store, points: Sequence[Point] = ()):
        pairs = sorted((((float(x), float(y)), None) for x, y in points))
        self._tree = BPlusTree.bulk_load(store, pairs)

    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._tree.count

    def insert(self, x: float, y: float) -> None:
        self._tree.insert((float(x), float(y)), None)

    def delete(self, x: float, y: float) -> bool:
        return self._tree.delete((float(x), float(y)), None)

    def query_4sided(self, a: float, b: float, c: float, d: float) -> List[Point]:
        q = FourSidedQuery(a, b, c, d)
        pairs, _ = self._tree.range_scan((a, float("-inf")), (b, float("inf")))
        return [k for k, _v in pairs if q.contains(k)]

    def query_3sided(self, a: float, b: float, c: float) -> List[Point]:
        q = ThreeSidedQuery(a, b, c)
        pairs, _ = self._tree.range_scan((a, float("-inf")), (b, float("inf")))
        return [k for k, _v in pairs if q.contains(k)]

    def all_points(self) -> List[Point]:
        """Every live point (reads the whole structure)."""
        return [k for k, _v in self._tree.items()]

    def check_invariants(self) -> None:
        """Validate structural guarantees; raises AssertionError on breach."""
        self._tree.check_invariants()
