"""Classical range-search structures the paper motivates against.

Section 1 of the paper: grid files, quad/k-d variants, z-orders, and
R-trees "are relatively simple, require linear space, and in practice
perform well most of the time.  However, they all have highly suboptimal
worst-case performance."  Experiment E8 quantifies that claim against
our optimal structures; these baselines all run on the same simulated
block store so the I/O counts are directly comparable.
"""

from repro.baselines.linear_scan import LinearScan
from repro.baselines.btree_xfilter import BTreeXFilter
from repro.baselines.kd_tree import ExternalKDTree
from repro.baselines.rtree import RTree
from repro.baselines.grid_file import GridFile
from repro.baselines.zorder import ZOrderIndex

__all__ = [
    "LinearScan",
    "BTreeXFilter",
    "ExternalKDTree",
    "RTree",
    "GridFile",
    "ZOrderIndex",
]
