"""External k-d tree baseline (the k-d-B-tree family, simplified).

Alternating x/y median splits down to leaf blocks of ``B`` points; one
block per internal node region descriptor is avoided by packing ``B``
node descriptors per block (internal fan-in bookkeeping is the paper's
"relatively simple, linear space" regime).  Queries recurse into every
region intersecting the rectangle: ``O(sqrt(n) + t)`` I/Os on squarish
data/queries, but degenerate on thin slabs -- the worst case E8 probes.

Updates: inserts go to the leaf whose region contains the point,
splitting overfull leaves in place (region splits are local, so the tree
can become unbalanced under skew, exactly the deterioration the paper
describes for this family); deletes remove the point and leave the
region in place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geometry import FourSidedQuery, Point

# node record layouts, packed B-per-block in a node arena:
#   ("X", split, left_id, right_id)  internal split on x
#   ("Y", split, left_id, right_id)  internal split on y
#   ("L", data_bid, count)           leaf


class _NodeArena:
    """Packs node descriptor records B-per-block on the store.

    Reading node ``i`` costs the one block read that holds it, mirroring
    how compact region tables behave on disk.
    """

    def __init__(self, store):
        self._store = store
        self._bids: List[int] = []
        self._n = 0

    def append(self, record: Tuple) -> int:
        B = self._store.block_size
        idx = self._n
        if idx // B >= len(self._bids):
            self._bids.append(self._store.alloc())
            self._store.write(self._bids[-1], [record])
        else:
            bid = self._bids[idx // B]
            records = list(self._store.read(bid).records)
            records.append(record)
            self._store.write(bid, records)
        self._n += 1
        return idx

    def get(self, idx: int) -> Tuple:
        B = self._store.block_size
        return self._store.read(self._bids[idx // B]).records[idx % B]

    def put(self, idx: int, record: Tuple) -> None:
        B = self._store.block_size
        bid = self._bids[idx // B]
        records = list(self._store.read(bid).records)
        records[idx % B] = record
        self._store.write(bid, records)

    def num_blocks(self) -> int:
        """Number of blocks the structure owns."""
        return len(self._bids)


class ExternalKDTree:
    """Bulk-loaded k-d tree over blocks, with local-split inserts."""

    def __init__(self, store, points: Sequence[Point] = ()):
        self._store = store
        self._arena = _NodeArena(store)
        self._count = 0
        pts = [(float(x), float(y)) for x, y in points]
        self._count = len(pts)
        self._root = self._build(pts, axis=0) if pts else None

    def _build(self, pts: List[Point], axis: int) -> int:
        B = self._store.block_size
        if len(pts) <= B:
            bid = self._store.alloc()
            self._store.write(bid, pts)
            return self._arena.append(("L", bid, len(pts)))
        pts = sorted(pts, key=(lambda p: (p[0], p[1])) if axis == 0 else (lambda p: (p[1], p[0])))
        mid = len(pts) // 2
        split = pts[mid - 1][axis]
        left = self._build(pts[:mid], 1 - axis)
        right = self._build(pts[mid:], 1 - axis)
        return self._arena.append(("X" if axis == 0 else "Y", split, left, right))

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        total = self._arena.num_blocks()

        def rec(idx: Optional[int]) -> None:
            nonlocal total
            if idx is None:
                return
            record = self._arena_peek(idx)
            if record[0] == "L":
                total += 1
            else:
                rec(record[2])
                rec(record[3])

        rec(self._root)
        return total

    def _arena_peek(self, idx: int) -> Tuple:
        B = self._store.block_size
        return self._store.peek(self._arena._bids[idx // B])[idx % B]

    # ------------------------------------------------------------------
    def insert(self, x: float, y: float) -> None:
        p = (float(x), float(y))
        if self._root is None:
            self._root = self._build([p], 0)
            self._count = 1
            return
        idx, axis = self._root, 0
        while True:
            record = self._arena.get(idx)
            if record[0] == "L":
                break
            axis = 0 if record[0] == "X" else 1
            idx_next = record[2] if p[axis] <= record[1] else record[3]
            idx, axis = idx_next, 1 - axis
        _tag, bid, cnt = record
        records = list(self._store.read(bid).records)
        records.append(p)
        B = self._store.block_size
        if len(records) <= B:
            self._store.write(bid, records)
            self._arena.put(idx, ("L", bid, len(records)))
        else:
            # local split on the current axis
            records.sort(key=(lambda q: (q[0], q[1])) if axis == 0 else (lambda q: (q[1], q[0])))
            mid = len(records) // 2
            split = records[mid - 1][axis]
            self._store.write(bid, records[:mid])
            bid2 = self._store.alloc()
            self._store.write(bid2, records[mid:])
            left = self._arena.append(("L", bid, mid))
            right = self._arena.append(("L", bid2, len(records) - mid))
            self._arena.put(idx, ("X" if axis == 0 else "Y", split, left, right))
        self._count += 1

    def delete(self, x: float, y: float) -> bool:
        p = (float(x), float(y))
        if self._root is None:
            return False
        # ties on a split coordinate can land on either side of the
        # split, so the search must branch on equality
        stack = [self._root]
        while stack:
            idx = stack.pop()
            record = self._arena.get(idx)
            if record[0] != "L":
                axis = 0 if record[0] == "X" else 1
                if p[axis] <= record[1]:
                    stack.append(record[2])
                if p[axis] >= record[1]:
                    stack.append(record[3])
                continue
            _tag, bid, cnt = record
            records = list(self._store.read(bid).records)
            if p in records:
                records.remove(p)
                self._store.write(bid, records)
                self._arena.put(idx, ("L", bid, len(records)))
                self._count -= 1
                return True
        return False

    # ------------------------------------------------------------------
    def query_4sided(self, a: float, b: float, c: float, d: float) -> List[Point]:
        q = FourSidedQuery(a, b, c, d)
        out: List[Point] = []
        if self._root is None:
            return out
        stack = [self._root]
        while stack:
            record = self._arena.get(stack.pop())
            if record[0] == "L":
                out.extend(p for p in self._store.read(record[1]).records if q.contains(p))
                continue
            _tag, split, left, right = record
            lo, hi = (a, b) if record[0] == "X" else (c, d)
            if lo <= split:
                stack.append(left)
            if hi >= split:   # ties can sit on the right of the split
                stack.append(right)
        return out

    def query_3sided(self, a: float, b: float, c: float) -> List[Point]:
        return self.query_4sided(a, b, c, float("inf"))

    def all_points(self) -> List[Point]:
        """Every live point (reads the whole structure)."""
        return self.query_4sided(
            float("-inf"), float("inf"), float("-inf"), float("inf")
        )
