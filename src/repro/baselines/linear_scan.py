"""The trivial baseline: all points packed into consecutive blocks.

Every query reads everything (``n`` I/Os) but the structure is also the
correctness *oracle*: differential tests compare every other structure's
answers against it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry import FourSidedQuery, Point, ThreeSidedQuery


class LinearScan:
    """Blocked heap file with full-scan queries."""

    def __init__(self, store, points: Sequence[Point] = ()):
        self._store = store
        self._bids: List[int] = []
        self._count = 0
        for p in points:
            self.insert(p[0], p[1])

    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        return len(self._bids)

    def insert(self, x: float, y: float) -> None:
        """Append to the last non-full block: O(1) I/Os."""
        p = (float(x), float(y))
        B = self._store.block_size
        if self._bids:
            last = self._bids[-1]
            records = list(self._store.read(last).records)
            if len(records) < B:
                records.append(p)
                self._store.write(last, records)
                self._count += 1
                return
        bid = self._store.alloc()
        self._store.write(bid, [p])
        self._bids.append(bid)
        self._count += 1

    def delete(self, x: float, y: float) -> bool:
        """Scan for the point and remove it: O(n) I/Os."""
        p = (float(x), float(y))
        for bid in self._bids:
            records = list(self._store.read(bid).records)
            if p in records:
                records.remove(p)
                self._store.write(bid, records)
                self._count -= 1
                return True
        return False

    def all_points(self) -> List[Point]:
        """Every live point (reads the whole structure)."""
        out: List[Point] = []
        for bid in self._bids:
            out.extend(self._store.read(bid).records)
        return out

    def query_3sided(self, a: float, b: float, c: float) -> List[Point]:
        q = ThreeSidedQuery(a, b, c)
        return [p for p in self.all_points() if q.contains(p)]

    def query_4sided(self, a: float, b: float, c: float, d: float) -> List[Point]:
        q = FourSidedQuery(a, b, c, d)
        return [p for p in self.all_points() if q.contains(p)]
