"""Grid file baseline (Nievergelt et al., simplified).

A regular grid over the bounding box with one bucket chain per cell,
sized at build time for ~B points per cell under uniformity.  Uniform
data gives near-optimal queries; skewed data piles points into a few
cells and queries degrade -- the classic failure mode the paper cites.
Directory rows are packed B-per-block and read on demand.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.geometry import FourSidedQuery, Point


class GridFile:
    """Fixed regular grid with chained cell buckets."""

    def __init__(self, store, points: Sequence[Point] = ()):
        self._store = store
        pts = [(float(x), float(y)) for x, y in points]
        self._count = len(pts)
        B = store.block_size
        n_cells = max(1, -(-len(pts) // B))
        self._g = max(1, round(math.sqrt(n_cells)))
        if pts:
            xs = [p[0] for p in pts]
            ys = [p[1] for p in pts]
            self._x0, self._x1 = min(xs), max(xs)
            self._y0, self._y1 = min(ys), max(ys)
        else:
            self._x0 = self._y0 = 0.0
            self._x1 = self._y1 = 1.0
        # cell -> list of bucket block ids
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        for p in pts:
            self._add(p)

    # ------------------------------------------------------------------
    def _cell_of(self, p: Point) -> Tuple[int, int]:
        gx = self._g
        dx = (self._x1 - self._x0) or 1.0
        dy = (self._y1 - self._y0) or 1.0
        cx = min(gx - 1, max(0, int((p[0] - self._x0) / dx * gx)))
        cy = min(gx - 1, max(0, int((p[1] - self._y0) / dy * gx)))
        return cx, cy

    def _add(self, p: Point) -> None:
        B = self._store.block_size
        chain = self._cells.setdefault(self._cell_of(p), [])
        if chain:
            last = chain[-1]
            records = list(self._store.read(last).records)
            if len(records) < B:
                records.append(p)
                self._store.write(last, records)
                return
        bid = self._store.alloc()
        self._store.write(bid, [p])
        chain.append(bid)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        return sum(len(c) for c in self._cells.values())

    def insert(self, x: float, y: float) -> None:
        """Insert; points outside the built bounding box clamp to the
        border cells (a fixed grid cannot grow its domain)."""
        self._add((float(x), float(y)))
        self._count += 1

    def delete(self, x: float, y: float) -> bool:
        p = (float(x), float(y))
        chain = self._cells.get(self._cell_of(p), [])
        for bid in chain:
            records = list(self._store.read(bid).records)
            if p in records:
                records.remove(p)
                self._store.write(bid, records)
                self._count -= 1
                return True
        return False

    # ------------------------------------------------------------------
    def query_4sided(self, a: float, b: float, c: float, d: float) -> List[Point]:
        q = FourSidedQuery(a, b, c, d)
        lo = self._cell_of((max(a, self._x0), max(c, self._y0)))
        hi = self._cell_of((min(b, self._x1), min(d, self._y1)))
        out: List[Point] = []
        for cx in range(lo[0], hi[0] + 1):
            for cy in range(lo[1], hi[1] + 1):
                for bid in self._cells.get((cx, cy), []):
                    out.extend(
                        p for p in self._store.read(bid).records if q.contains(p)
                    )
        return out

    def query_3sided(self, a: float, b: float, c: float) -> List[Point]:
        return self.query_4sided(a, b, c, self._y1)

    def all_points(self) -> List[Point]:
        """Every live point (reads the whole structure)."""
        out: List[Point] = []
        for chain in self._cells.values():
            for bid in chain:
                out.extend(self._store.read(bid).records)
        return out
