"""R-tree baseline: STR bulk load + quadratic-ish inserts.

Guttman-style R-tree on the simulated store: leaf blocks hold up to
``B`` points, internal blocks up to ``B - 1`` bounding-box entries.
Bulk loading uses Sort-Tile-Recursive (STR), the standard packing that
gives near-perfect space utilization; inserts choose the subtree needing
least enlargement and split overfull nodes along the longer MBR axis.
No worst-case query guarantee exists -- the point of experiment E8.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.geometry import FourSidedQuery, Point

# node block layouts:
#   [("L",), (x, y), ...]                                     leaf
#   [("I",), (x_lo, y_lo, x_hi, y_hi, child_bid), ...]        internal


def _mbr_of_points(pts: Sequence[Point]) -> Tuple[float, float, float, float]:
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return min(xs), min(ys), max(xs), max(ys)


def _mbr_union(boxes) -> Tuple[float, float, float, float]:
    return (
        min(b[0] for b in boxes),
        min(b[1] for b in boxes),
        max(b[2] for b in boxes),
        max(b[3] for b in boxes),
    )


def _enlargement(box, p: Point) -> float:
    x_lo, y_lo, x_hi, y_hi = box
    nx_lo, ny_lo = min(x_lo, p[0]), min(y_lo, p[1])
    nx_hi, ny_hi = max(x_hi, p[0]), max(y_hi, p[1])
    return (nx_hi - nx_lo) * (ny_hi - ny_lo) - (x_hi - x_lo) * (y_hi - y_lo)


class RTree:
    """Point R-tree with STR bulk load."""

    def __init__(self, store, points: Sequence[Point] = ()):
        self._store = store
        self._count = 0
        pts = [(float(x), float(y)) for x, y in points]
        self._count = len(pts)
        self._root: Optional[int] = self._bulk_load(pts) if pts else None
        self._height = self._measure_height()

    # ------------------------------------------------------------------
    def _bulk_load(self, pts: List[Point]) -> int:
        """Sort-Tile-Recursive packing."""
        store = self._store
        B = store.block_size
        cap = B - 1
        fill = max(2, (3 * cap) // 4)
        n_leaves = -(-len(pts) // fill)
        slices = max(1, round(math.sqrt(n_leaves)))
        per_slice = -(-len(pts) // slices)
        pts = sorted(pts)  # by x then y
        leaves: List[Tuple[Tuple, int]] = []  # (mbr, bid)
        for s in range(0, len(pts), per_slice):
            stripe = sorted(pts[s:s + per_slice], key=lambda p: (p[1], p[0]))
            for lo in range(0, len(stripe), fill):
                chunk = stripe[lo:lo + fill]
                bid = store.alloc()
                store.write(bid, [("L",)] + chunk)
                leaves.append((_mbr_of_points(chunk), bid))
        level = leaves
        while len(level) > 1:
            nxt: List[Tuple[Tuple, int]] = []
            for lo in range(0, len(level), fill):
                group = level[lo:lo + fill]
                bid = store.alloc()
                store.write(
                    bid,
                    [("I",)] + [(m[0], m[1], m[2], m[3], b) for m, b in group],
                )
                nxt.append((_mbr_union([m for m, _ in group]), bid))
            level = nxt
        return level[0][1]

    def _measure_height(self) -> int:
        if self._root is None:
            return 0
        h, bid = 1, self._root
        while True:
            records = self._store.peek(bid)
            if records[0][0] == "L":
                return h
            bid = records[1][4]
            h += 1

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._count

    def blocks_in_use(self) -> int:
        """Number of blocks the structure owns."""
        total = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            bid = stack.pop()
            total += 1
            records = self._store.peek(bid)
            if records[0][0] == "I":
                stack.extend(e[4] for e in records[1:])
        return total

    # ------------------------------------------------------------------
    def insert(self, x: float, y: float) -> None:
        p = (float(x), float(y))
        self._count += 1
        if self._root is None:
            bid = self._store.alloc()
            self._store.write(bid, [("L",), p])
            self._root = bid
            self._height = 1
            return
        path: List[Tuple[int, int]] = []  # (bid, child slot)
        bid = self._root
        while True:
            records = list(self._store.read(bid).records)
            if records[0][0] == "L":
                break
            entries = records[1:]
            best, best_cost = 0, None
            for i, e in enumerate(entries):
                cost = _enlargement(e[:4], p)
                if best_cost is None or cost < best_cost:
                    best, best_cost = i, cost
            path.append((bid, best))
            bid = entries[best][4]
        leaf_entries = records[1:] + [p]
        self._write_or_split(path, bid, "L", leaf_entries)

    def _write_or_split(self, path, bid: int, kind: str, entries: List) -> None:
        store = self._store
        cap = store.block_size - 1
        if len(entries) <= cap:
            store.write(bid, [(kind,)] + entries)
            self._fix_mbrs(path, bid, entries, kind)
            return
        # split along the longer axis of the MBR
        if kind == "L":
            boxes = [(e[0], e[1], e[0], e[1]) for e in entries]
        else:
            boxes = [e[:4] for e in entries]
        mbr = _mbr_union(boxes)
        axis = 0 if (mbr[2] - mbr[0]) >= (mbr[3] - mbr[1]) else 1
        order = sorted(
            range(len(entries)),
            key=lambda i: (boxes[i][axis] + boxes[i][axis + 2]),
        )
        half = len(entries) // 2
        left = [entries[i] for i in order[:half]]
        right = [entries[i] for i in order[half:]]
        store.write(bid, [(kind,)] + left)
        bid2 = store.alloc()
        store.write(bid2, [(kind,)] + right)
        lbox = _mbr_union([boxes[i] for i in order[:half]])
        rbox = _mbr_union([boxes[i] for i in order[half:]])
        if not path:
            root = store.alloc()
            store.write(root, [("I",), (*lbox, bid), (*rbox, bid2)])
            self._root = root
            self._height += 1
            return
        pbid, slot = path[-1]
        precords = list(store.read(pbid).records)
        pentries = precords[1:]
        pentries[slot] = (*lbox, bid)
        pentries.insert(slot + 1, (*rbox, bid2))
        self._write_or_split(path[:-1], pbid, "I", pentries)

    def _fix_mbrs(self, path, child_bid: int, entries: List, kind: str) -> None:
        if not path:
            return
        if kind == "L":
            box = _mbr_of_points(entries) if entries else (0.0, 0.0, 0.0, 0.0)
        else:
            box = _mbr_union([e[:4] for e in entries])
        for pbid, slot in reversed(path):
            records = list(self._store.read(pbid).records)
            pentries = records[1:]
            old = pentries[slot]
            if old[:4] == box and old[4] == child_bid:
                return
            pentries[slot] = (*box, old[4])
            self._store.write(pbid, [("I",)] + pentries)
            box = _mbr_union([e[:4] for e in pentries])
            child_bid = pbid

    def delete(self, x: float, y: float) -> bool:
        """Find-and-remove (no condense step; MBRs stay as upper bounds)."""
        p = (float(x), float(y))
        if self._root is None:
            return False
        stack = [self._root]
        while stack:
            bid = stack.pop()
            records = list(self._store.read(bid).records)
            if records[0][0] == "L":
                entries = records[1:]
                if p in entries:
                    entries.remove(p)
                    self._store.write(bid, [("L",)] + entries)
                    self._count -= 1
                    return True
                continue
            for e in records[1:]:
                if e[0] <= p[0] <= e[2] and e[1] <= p[1] <= e[3]:
                    stack.append(e[4])
        return False

    # ------------------------------------------------------------------
    def query_4sided(self, a: float, b: float, c: float, d: float) -> List[Point]:
        q = FourSidedQuery(a, b, c, d)
        out: List[Point] = []
        if self._root is None:
            return out
        stack = [self._root]
        while stack:
            records = self._store.read(stack.pop()).records
            if records[0][0] == "L":
                out.extend(p for p in records[1:] if q.contains(p))
                continue
            for e in records[1:]:
                if e[0] <= b and e[2] >= a and e[1] <= d and e[3] >= c:
                    stack.append(e[4])
        return out

    def query_3sided(self, a: float, b: float, c: float) -> List[Point]:
        return self.query_4sided(a, b, c, float("inf"))

    def all_points(self) -> List[Point]:
        """Every live point (reads the whole structure)."""
        inf = float("inf")
        return self.query_4sided(-inf, inf, -inf, inf)
