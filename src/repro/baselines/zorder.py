"""Z-order (Morton curve) baseline: space-filling curve over a B+-tree.

Coordinates are quantized to a 2^bits grid, interleaved into a Morton
code, and stored in a B+-tree keyed on the code.  A rectangle query
scans the code range between the query corners' codes and filters --
the standard UB-tree-style approach without range decomposition, whose
over-scan on elongated rectangles is one of the paper's motivating
failure modes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import FourSidedQuery, Point
from repro.substrates.bplus_tree import BPlusTree

BITS = 16


def _interleave(v: int) -> int:
    """Spread the low 16 bits of v to even bit positions."""
    v &= (1 << BITS) - 1
    v = (v | (v << 8)) & 0x00FF00FF
    v = (v | (v << 4)) & 0x0F0F0F0F
    v = (v | (v << 2)) & 0x33333333
    v = (v | (v << 1)) & 0x55555555
    return v


def morton(ix: int, iy: int) -> int:
    """Morton code of quantized coordinates."""
    return (_interleave(iy) << 1) | _interleave(ix)


class ZOrderIndex:
    """Morton-code B+-tree with scan-and-filter range queries."""

    def __init__(self, store, points: Sequence[Point] = ()):
        pts = [(float(x), float(y)) for x, y in points]
        if pts:
            xs = [p[0] for p in pts]
            ys = [p[1] for p in pts]
            self._x0, self._x1 = min(xs), max(xs)
            self._y0, self._y1 = min(ys), max(ys)
        else:
            self._x0 = self._y0 = 0.0
            self._x1 = self._y1 = 1.0
        pairs = sorted((self._key(p), p) for p in pts)
        self._tree = BPlusTree.bulk_load(store, pairs)

    # ------------------------------------------------------------------
    def _quant(self, p: Point) -> Tuple[int, int]:
        scale = (1 << BITS) - 1
        dx = (self._x1 - self._x0) or 1.0
        dy = (self._y1 - self._y0) or 1.0
        ix = int(max(0.0, min(1.0, (p[0] - self._x0) / dx)) * scale)
        iy = int(max(0.0, min(1.0, (p[1] - self._y0) / dy)) * scale)
        return ix, iy

    def _key(self, p: Point) -> Tuple[int, float, float]:
        ix, iy = self._quant(p)
        # exact coordinates break ties among same-cell points
        return (morton(ix, iy), p[0], p[1])

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of live records stored."""
        return self._tree.count

    def insert(self, x: float, y: float) -> None:
        p = (float(x), float(y))
        self._tree.insert(self._key(p), p)

    def delete(self, x: float, y: float) -> bool:
        p = (float(x), float(y))
        return self._tree.delete(self._key(p), p)

    def query_4sided(self, a: float, b: float, c: float, d: float) -> List[Point]:
        q = FourSidedQuery(a, b, c, d)
        lo_corner = (max(a, self._x0), max(c, self._y0))
        hi_corner = (min(b, self._x1), min(d, self._y1))
        if lo_corner[0] > hi_corner[0] or lo_corner[1] > hi_corner[1]:
            return []
        lo_key = (morton(*self._quant(lo_corner)), float("-inf"), float("-inf"))
        hi_key = (morton(*self._quant(hi_corner)), float("inf"), float("inf"))
        pairs, _ = self._tree.range_scan(lo_key, hi_key)
        return [p for _k, p in pairs if q.contains(p)]

    def query_3sided(self, a: float, b: float, c: float) -> List[Point]:
        return self.query_4sided(a, b, c, self._y1)

    def all_points(self) -> List[Point]:
        """Every live point (reads the whole structure)."""
        return [p for _k, p in self._tree.items()]
