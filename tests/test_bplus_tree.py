"""Tests for the external B+-tree substrate."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.substrates.bplus_tree import BPlusTree


class TestBuild:
    def test_empty_tree(self, store):
        t = BPlusTree(store)
        assert t.count == 0
        assert t.search(5) == []
        t.check_invariants()

    def test_block_size_floor(self):
        with pytest.raises(ValueError):
            BPlusTree(BlockStore(3))

    def test_bulk_load_round_trip(self, store):
        pairs = [(i, str(i)) for i in range(500)]
        t = BPlusTree.bulk_load(store, pairs)
        t.check_invariants()
        assert t.items() == pairs

    def test_bulk_load_requires_sorted(self, store):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load(store, [(2, 0), (1, 0)])

    def test_bulk_load_empty(self, store):
        t = BPlusTree.bulk_load(store, [])
        assert t.count == 0


class TestInsertSearch:
    def test_insert_and_search(self, store, rng):
        t = BPlusTree(store)
        data = {}
        for i in range(800):
            k = rng.randrange(200)
            t.insert(k, i)
            data.setdefault(k, []).append(i)
        t.check_invariants()
        for k, vals in data.items():
            assert sorted(t.search(k)) == sorted(vals)

    def test_height_grows_logarithmically(self, rng):
        store = BlockStore(16)
        t = BPlusTree(store)
        for i in range(3000):
            t.insert(rng.random(), i)
        assert t.height <= 5

    def test_insert_io_logarithmic(self, rng):
        store = BlockStore(32)
        t = BPlusTree.bulk_load(store, [(i, i) for i in range(5000)])
        with Meter(store) as m:
            t.insert(2500.5, 0)
        assert m.delta.ios <= 3 * t.height + 3

    def test_monotone_inserts(self, store):
        t = BPlusTree(store)
        for i in range(500):
            t.insert(i, i)
        t.check_invariants()
        assert [k for k, _ in t.items()] == list(range(500))

    def test_reverse_inserts(self, store):
        t = BPlusTree(store)
        for i in range(499, -1, -1):
            t.insert(i, i)
        t.check_invariants()
        assert [k for k, _ in t.items()] == list(range(500))


class TestRangeScan:
    def test_range_scan_exact(self, store, rng):
        keys = sorted(rng.sample(range(10000), 600))
        t = BPlusTree.bulk_load(store, [(k, -k) for k in keys])
        for _ in range(50):
            lo = rng.randrange(10000)
            hi = lo + rng.randrange(2000)
            got, _ = t.range_scan(lo, hi)
            assert [k for k, _v in got] == [k for k in keys if lo <= k <= hi]

    def test_range_scan_io_output_sensitive(self, rng):
        store = BlockStore(32)
        t = BPlusTree.bulk_load(store, [(i, i) for i in range(5000)])
        with Meter(store) as m:
            got, reads = t.range_scan(1000, 1100)
        assert m.delta.reads == reads
        assert reads <= t.height + len(got) // (store.block_size // 2) + 2

    def test_scan_from_stops_at_predicate(self, store):
        t = BPlusTree.bulk_load(store, [(i, i) for i in range(200)])
        got, _ = t.scan_from(50, lambda k, v: k <= 70)
        assert [k for k, _v in got] == list(range(50, 71))

    def test_range_scan_with_duplicates_across_leaves(self, store):
        t = BPlusTree(store)
        for i in range(100):
            t.insert(7, i)
        t.insert(6, -1)
        t.insert(8, -2)
        got, _ = t.range_scan(7, 7)
        assert len(got) == 100
        t.check_invariants()


class TestDelete:
    def test_delete_specific_pair(self, store):
        t = BPlusTree(store)
        t.insert(1, "a")
        t.insert(1, "b")
        assert t.delete(1, "a")
        assert t.search(1) == ["b"]
        assert not t.delete(1, "a")

    def test_delete_across_duplicate_leaves(self, store):
        t = BPlusTree(store)
        for i in range(200):
            t.insert(5, i)
        for i in range(200):
            assert t.delete(5, i)
        assert t.count == 0
        t.check_invariants()

    def test_lazy_delete_keeps_structure_valid(self, store, rng):
        keys = list(range(400))
        t = BPlusTree.bulk_load(store, [(k, k) for k in keys])
        removed = set(rng.sample(keys, 300))
        for k in removed:
            assert t.delete(k, k)
        t.check_invariants()
        got, _ = t.range_scan(0, 400)
        assert [k for k, _v in got] == [k for k in keys if k not in removed]
        assert t.count == 100

    def test_delete_then_reinsert(self, store):
        t = BPlusTree.bulk_load(store, [(i, i) for i in range(100)])
        assert t.delete(50, 50)
        t.insert(50, 99)
        assert t.search(50) == [99]
        t.check_invariants()


class TestPrefixScan:
    def test_prefix_scan_from_head(self, store):
        t = BPlusTree.bulk_load(store, [(i, -i) for i in range(300)])
        got, reads = t.prefix_scan(lambda k, v: k < 40)
        assert [k for k, _v in got] == list(range(40))
        # head-first: no descent, so reads ~ prefix/leaf_fill
        assert reads <= 40 // 2 + 2

    def test_prefix_scan_survives_leaf_splits(self, store):
        """The leftmost leaf keeps its identity through every split."""
        t = BPlusTree(store)
        for i in range(500, 0, -1):       # reverse order: head splits often
            t.insert(i, i)
        got, _ = t.prefix_scan(lambda k, v: k <= 10)
        assert [k for k, _v in got] == list(range(1, 11))

    def test_prefix_scan_whole_tree(self, store):
        t = BPlusTree(store)
        for i in range(100):
            t.insert(i, None)
        got, _ = t.prefix_scan(lambda k, v: True)
        assert len(got) == 100

    def test_prefix_scan_empty(self, store):
        t = BPlusTree(store)
        got, reads = t.prefix_scan(lambda k, v: True)
        assert got == [] and reads == 1
