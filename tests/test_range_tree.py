"""Tests for the Section 4 dynamic 4-sided structure (Theorem 7)."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.core.range_tree import ExternalRangeTree
from repro.analysis.bounds import log_b
from tests.conftest import brute_4sided, make_points


def _mk(rng, n, B=16, **kw):
    store = BlockStore(B)
    pts = make_points(rng, n)
    rt = ExternalRangeTree(store, pts, **kw)
    return store, pts, rt


class TestConstruction:
    def test_empty(self):
        store = BlockStore(16)
        rt = ExternalRangeTree(store)
        assert rt.count == 0
        assert rt.query(0, 1, 0, 1) == []

    def test_duplicates_rejected(self):
        store = BlockStore(16)
        with pytest.raises(ValueError):
            ExternalRangeTree(store, [(0, 0), (0, 0)])

    def test_rho_default_is_log_B_N(self, rng):
        store = BlockStore(16)
        pts = make_points(rng, 2000)
        rt = ExternalRangeTree(store, pts)
        assert rt.rho == max(2, round(__import__("math").log(2000) / __import__("math").log(16)))

    def test_invariants_after_build(self, rng):
        _, _, rt = _mk(rng, 1000)
        rt.check_invariants()

    def test_space_superlinear_by_levels(self, rng):
        """Each level stores every point in three linear structures, so
        blocks ~ levels * O(n)."""
        B = 16
        store, pts, rt = _mk(rng, 1500, B=B)
        blocks = rt.blocks_in_use()
        n_blocks = len(pts) / B
        levels = rt.num_levels()
        assert blocks >= n_blocks * levels          # at least one copy per level
        assert blocks <= 60 * n_blocks * levels     # and linear per level


class TestQueries:
    def test_differential_random(self, rng):
        store, pts, rt = _mk(rng, 900)
        for _ in range(100):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 500)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 500)
            assert sorted(rt.query(a, b, c, d)) == brute_4sided(pts, a, b, c, d)

    def test_full_domain(self, rng):
        store, pts, rt = _mk(rng, 400)
        assert sorted(rt.query(-1, 1001, -1, 1001)) == sorted(pts)

    def test_thin_slabs_both_axes(self, rng):
        store, pts, rt = _mk(rng, 700)
        xs = sorted(p[0] for p in pts)
        ys = sorted(p[1] for p in pts)
        # tall thin query
        q1 = (xs[300], xs[310], -1.0, 1001.0)
        assert sorted(rt.query(*q1)) == brute_4sided(pts, *q1)
        # wide flat query
        q2 = (-1.0, 1001.0, ys[300], ys[310])
        assert sorted(rt.query(*q2)) == brute_4sided(pts, *q2)

    def test_point_queries(self, rng):
        store, pts, rt = _mk(rng, 500)
        for p in rng.sample(pts, 15):
            assert rt.query(p[0], p[0], p[1], p[1]) == [p]

    def test_query_io_tracks_bound(self, rng):
        B = 32
        store = BlockStore(B)
        pts = make_points(rng, 3000)
        rt = ExternalRangeTree(store, pts)
        worst = 0.0
        for _ in range(40):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 300)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 300)
            with Meter(store) as m:
                got = rt.query(a, b, c, d)
            bound = rt.rho * log_b(len(pts), B) + len(got) / B + rt.rho
            worst = max(worst, m.delta.ios / bound)
        assert worst < 40, worst


class TestUpdates:
    def test_insert_visible(self, rng):
        store, pts, rt = _mk(rng, 300)
        p = (2000.0, 2000.0)
        rt.insert(*p)
        assert rt.query(1999, 2001, 1999, 2001) == [p]
        rt.check_invariants()

    def test_insert_differential(self, rng):
        store, pts, rt = _mk(rng, 400)
        live = set(pts)
        for p in make_points(rng, 120, lo=200, hi=800):
            if p in live:
                continue
            rt.insert(*p)
            live.add(p)
        rt.check_invariants()
        for _ in range(40):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 400)
            assert sorted(rt.query(a, b, c, d)) == brute_4sided(live, a, b, c, d)

    def test_delete_differential(self, rng):
        store, pts, rt = _mk(rng, 500)
        live = set(pts)
        for p in rng.sample(pts, 150):
            assert rt.delete(*p)
            live.discard(p)
        rt.check_invariants()
        for _ in range(40):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 400)
            assert sorted(rt.query(a, b, c, d)) == brute_4sided(live, a, b, c, d)

    def test_delete_absent(self, rng):
        store, pts, rt = _mk(rng, 100)
        assert not rt.delete(-1, -1)
        assert rt.count == 100

    def test_global_rebuild_triggers_and_preserves(self, rng):
        store, pts, rt = _mk(rng, 300)
        live = set(pts)
        # enough updates to cross the N/2 threshold
        for p in make_points(rng, 200, lo=2000, hi=3000):
            rt.insert(*p)
            live.add(p)
        assert rt.rebuilds >= 1
        rt.check_invariants()
        assert sorted(rt.all_points()) == sorted(live)

    def test_update_io_bound(self, rng):
        """Insert cost ~ log_B N per level."""
        B = 32
        store = BlockStore(B)
        pts = make_points(rng, 2000)
        rt = ExternalRangeTree(store, pts)
        costs = []
        for p in make_points(rng, 30, lo=2000, hi=3000):
            with Meter(store) as m:
                rt.insert(*p)
            costs.append(m.delta.ios)
        bound = rt.num_levels() * log_b(len(pts), B)
        assert sum(costs) / len(costs) <= 60 * bound
