"""Self-healing replicated serving: checksums, failover, scrub, deadlines.

The correctness standard for every chaos test is the fault-free oracle:
a replicated engine under injected faults must be *observationally
identical* to the same engine with no faults -- zero wrong answers,
zero lost acknowledged writes -- because every fault is either healed
in place, rolled back, or failed over.
"""

import random
import threading

import pytest

from tests.conftest import brute_4sided, make_points
from repro.io import BlockStore, ChecksummedStore, CorruptBlockError
from repro.io.checksum import record_crc
from repro.resilience import FaultSchedule
from repro.serve import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    PartialResult,
    ReadWriteLock,
    ReplicaSetExhausted,
    Scrubber,
    ServingEngine,
    Shard,
)

CHAOS_RATES = {
    "corrupt_rate": 0.02,
    "read_error_rate": 0.02,
    "write_error_rate": 0.02,
    "transient_fraction": 0.5,
}


def make_shard(pts, factor=2, seed=None, rates=None, **kw):
    schedules = None
    if seed is not None:
        schedules = [
            FaultSchedule(seed=seed, stream=j, **(rates or CHAOS_RATES))
            for j in range(factor)
        ]
    return Shard(
        0, float("-inf"), float("inf"), block_size=16, backend="log",
        points=pts, replication_factor=factor, fault_schedules=schedules,
        **kw,
    )


def replica_image(r):
    """(bid -> payload) map of one replica's disk."""
    return {
        bid: r.base_store.peek(bid) for bid in r.base_store.block_ids()
    }


# ----------------------------------------------------------------------
# checksummed blocks
# ----------------------------------------------------------------------
class TestChecksummedStore:
    def test_detects_scribbled_rot(self):
        base = BlockStore(8)
        cs = ChecksummedStore(base)
        bid = cs.alloc()
        cs.write(bid, [1, 2, 3])
        assert cs.read(bid).records == [1, 2, 3]
        base.scribble(bid, [9, 9])
        with pytest.raises(CorruptBlockError) as exc:
            cs.read(bid)
        assert exc.value.bid == bid
        assert cs.mismatches == 1

    def test_verify_is_free_and_never_raises(self):
        base = BlockStore(8)
        cs = ChecksummedStore(base)
        bid = cs.alloc()
        cs.write(bid, ["x"])
        reads_before = base.stats.reads
        assert cs.verify(bid) is True
        base.scribble(bid, ["y"])
        assert cs.verify(bid) is False
        assert cs.verify(9999) is True  # unknown block: not the scrubber's call
        assert base.stats.reads == reads_before

    def test_place_with_crc_override_keeps_rot_detectable(self):
        base = BlockStore(8)
        cs = ChecksummedStore(base)
        good_crc = record_crc(["good"])
        cs.place(0, ["rotten"], crc=good_crc)
        assert cs.crc_of(0) == good_crc
        assert cs.verify(0) is False

    def test_trust_on_first_read(self):
        base = BlockStore(8)
        base.alloc()
        base.write(0, [5])
        cs = ChecksummedStore(base)
        assert cs.crc_of(0) is None
        cs.read(0)
        assert cs.crc_of(0) == record_crc([5])


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, probe_after=2)
        for _ in range(2):
            br.record_failure()
        assert br.state == CircuitBreaker.CLOSED
        br.record_success()
        for _ in range(2):
            br.record_failure()
        assert br.state == CircuitBreaker.CLOSED  # success reset the count
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert br.times_opened == 1

    def test_half_open_probe_closes_or_reopens(self):
        br = CircuitBreaker(failure_threshold=1, probe_after=2)
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert not br.allow()         # refusal 1
        assert br.allow()             # refusal 2 flips to half-open: probe
        assert br.state == CircuitBreaker.HALF_OPEN
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert not br.allow()
        assert br.allow()             # the next probe
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED


# ----------------------------------------------------------------------
# replica sets: mirrors, transactions, failover, rebuild
# ----------------------------------------------------------------------
class TestReplicaSet:
    def test_replicas_are_bid_mirrors(self, rng):
        sh = make_shard(make_points(rng, 120), factor=3)
        for i in range(60):
            sh.insert((rng.uniform(0, 1000), rng.uniform(0, 1000)))
        images = [replica_image(r) for r in sh.replica_set.replicas]
        assert images[0] == images[1] == images[2]

    def test_write_fans_out_read_falls_back(self, rng):
        pts = make_points(rng, 100)
        sh = make_shard(pts, factor=2)
        sh.insert((1.0, 2.0))
        live = {(1.0, 2.0)} | set(pts)
        want = brute_4sided(live, 0, 1000, 0, 1000)
        assert sorted(sh.query4(0, 1000, 0, 1000)) == want
        sh.replica_set.kill(0, "test kill")
        assert sorted(sh.query4(0, 1000, 0, 1000)) == want  # replica 1 serves
        assert sh.replica_set.stats()["failovers"] == 1

    def test_abort_rolls_back_to_pre_op_image(self, rng):
        sh = make_shard(make_points(rng, 80), factor=2)
        rs = sh.replica_set
        before = replica_image(rs.replicas[0])

        def doomed(structure):
            structure.insert(1.0, 1.0)
            raise CorruptBlockError(0, 1, 2)

        with pytest.raises(ReplicaSetExhausted):
            rs.apply_write(doomed)
        # both replicas rolled back: same blocks, same payloads, and a
        # retried clean op re-allocates the very same ids (mirror kept)
        assert replica_image(rs.replicas[0]) == before
        assert replica_image(rs.replicas[1]) == before
        rs.apply_write(lambda s: s.insert(2.0, 2.0))
        assert replica_image(rs.replicas[0]) == replica_image(rs.replicas[1])

    def test_rejected_write_is_not_visible(self, rng):
        pts = make_points(rng, 60)
        sh = make_shard(pts, factor=2)

        def doomed(structure):
            structure.insert(123.0, 456.0)
            raise CorruptBlockError(0, 1, 2)

        with pytest.raises(ReplicaSetExhausted):
            sh.replica_set.apply_write(doomed)
        assert (123.0, 456.0) not in sh.query4(0, 1000, 0, 1000)

    def test_kill_and_rebuild_restores_mirror(self, rng):
        sh = make_shard(make_points(rng, 100), factor=2)
        rs = sh.replica_set
        rs.kill(0, "chaos")
        for i in range(20):
            sh.insert((rng.uniform(0, 1000), rng.uniform(0, 1000)))
        assert rs.rebuild_dead() == 0  # auto_rebuild already healed it
        assert len(rs.live) == 2
        assert rs.rebuilds >= 1
        assert replica_image(rs.replicas[0]) == replica_image(rs.replicas[1])

    def test_repair_block_from_peer(self, rng):
        sh = make_shard(make_points(rng, 80), factor=2)
        rs = sh.replica_set
        r0 = rs.replicas[0]
        bid = sorted(r0.base_store.block_ids())[0]
        r0.checksummed.read(bid)  # learn the CRC
        r0.base_store.scribble(bid, ["rot"])
        assert not r0.checksummed.verify(bid)
        assert rs.repair_block(r0, bid)
        assert r0.checksummed.verify(bid)
        assert replica_image(r0)[bid] == replica_image(rs.replicas[1])[bid]

    def test_silent_write_rot_never_acked(self, rng):
        """Pre-ack CRC sweep: an acked op leaves no latent rot behind."""
        sh = make_shard(
            make_points(rng, 80), factor=2, seed=11,
            rates={"corrupt_rate": 0.2},
        )
        for i in range(40):
            sh.insert((rng.uniform(0, 1000), rng.uniform(0, 1000)))
        for r in sh.replica_set.replicas:
            r.flush()
            for bid in sorted(r.checksummed.block_ids()):
                assert r.checksummed.verify(bid), (r.replica_id, bid)


# ----------------------------------------------------------------------
# scrubbing
# ----------------------------------------------------------------------
class TestScrubber:
    def test_repairs_all_injected_rot(self, rng):
        sh = make_shard(make_points(rng, 150), factor=2)
        r0 = sh.replica_set.replicas[0]
        bids = sorted(r0.base_store.block_ids())[:5]
        for bid in bids:
            r0.checksummed.read(bid)
            r0.base_store.scribble(bid, ["rot", bid])
        scrubber = Scrubber([sh])
        out = scrubber.scrub_once()
        assert out["repairs"] == len(bids)
        assert out["unrepaired"] == 0
        for bid in bids:
            assert r0.checksummed.verify(bid)

    def test_scrub_rebuilds_dead_replicas(self, rng):
        sh = make_shard(make_points(rng, 100), factor=2, auto_rebuild=False)
        sh.replica_set.kill(1, "chaos")
        assert len(sh.replica_set.live) == 1
        Scrubber([sh]).scrub_once()
        assert len(sh.replica_set.live) == 2

    def test_bounded_lock_wait_skips_busy_shard(self, rng):
        sh = make_shard(make_points(rng, 50), factor=2)
        scrubber = Scrubber([sh])
        assert sh.lock.acquire_write(timeout=1.0)
        try:
            out = scrubber.scrub_once(lock_timeout=0.01)
        finally:
            sh.lock.release_write()
        assert out["shards_skipped"] == 1
        assert out["blocks_checked"] == 0

    def test_background_thread_start_stop(self, rng):
        sh = make_shard(make_points(rng, 50), factor=2)
        scrubber = Scrubber([sh])
        scrubber.start(interval=0.01)
        assert scrubber.running
        deadline = Deadline.after(5.0)
        while scrubber.cycles == 0 and not deadline.expired:
            pass
        scrubber.stop()
        assert not scrubber.running
        assert scrubber.cycles >= 1


# ----------------------------------------------------------------------
# deadlines and degraded reads
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_deadline_gives_empty_partial(self, rng):
        eng = ServingEngine(make_points(rng, 100), n_shards=2,
                            block_size=16, backend="log")
        out = eng.execute([("q4", (0, 1000, 0, 1000))],
                          deadline=Deadline(0.0))
        assert isinstance(out, PartialResult)
        assert not out.complete and out.deadline_expired
        assert out.served_slabs == []
        assert sorted(out.missing_slabs) == out.missing_slabs
        eng.close()

    def test_generous_deadline_matches_plain_result(self, rng):
        pts = make_points(rng, 150)
        eng = ServingEngine(pts, n_shards=3, block_size=16, backend="log")
        ops = [("q4", (0, 1000, 0, 1000)), ("ins", (5.0, 5.0)),
               ("q3", (0, 1000, 0))]
        plain = eng.execute(ops)
        eng2 = ServingEngine(pts, n_shards=3, block_size=16, backend="log")
        timed = eng2.execute(ops, deadline=Deadline.after(60.0))
        assert isinstance(timed, PartialResult) and timed.complete
        assert timed.results == plain.results
        assert timed.missing_slabs == []
        eng.close()
        eng2.close()

    def test_mutations_on_missing_slabs_unacked(self, rng):
        eng = ServingEngine(make_points(rng, 100), n_shards=2,
                            block_size=16, backend="log")
        out = eng.execute([("ins", (1.0, 1.0))], deadline=Deadline(0.0))
        assert not out.complete
        assert out.results == [None]
        # the insert was never applied: the point must not be served later
        assert (1.0, 1.0) not in eng.execute(
            [("q4", (0, 1000, 0, 1000))]
        ).results[0]
        eng.close()


# ----------------------------------------------------------------------
# lock timeouts and admission shedding (satellites)
# ----------------------------------------------------------------------
class TestLockTimeouts:
    def test_read_times_out_under_writer(self):
        lock = ReadWriteLock()
        assert lock.acquire_write(timeout=1.0)
        try:
            assert lock.acquire_read(timeout=0.01) is False
        finally:
            lock.release_write()
        assert lock.acquire_read(timeout=0.01) is True
        lock.release_read()

    def test_write_times_out_under_reader(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            assert lock.acquire_write(timeout=0.01) is False
        assert lock.acquire_write(timeout=0.01) is True
        lock.release_write()

    def test_timed_out_writer_does_not_starve_readers(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            assert lock.acquire_write(timeout=0.01) is False
            # the withdrawn writer preference must not block new readers
            got = []
            t = threading.Thread(
                target=lambda: got.append(lock.acquire_read(timeout=1.0))
            )
            t.start()
            t.join(timeout=5.0)
            assert got == [True]
            lock.release_read()  # the thread's hold


class TestAdmissionShedding:
    def test_block_policy_sheds_past_max_wait(self):
        ac = AdmissionController(max_inflight=1, max_queue=0,
                                 policy="block", max_wait=0.02)
        assert ac.acquire()
        assert ac.acquire() is False  # timed out, shed
        ac.release()
        st = ac.snapshot()
        assert st["shed"] == 1
        assert st["shed_rate"] == pytest.approx(0.5)
        assert st["max_wait"] == pytest.approx(0.02)

    def test_shed_rate_in_engine_stats(self, rng):
        eng = ServingEngine(make_points(rng, 60), n_shards=2,
                            block_size=16, backend="log",
                            admission_max_wait=0.05)
        eng.execute([("q3", (0, 1000, 0))])
        st = eng.stats()
        assert st["shed_rate"] == 0.0
        assert st["admission"]["max_wait"] == pytest.approx(0.05)
        eng.close()


# ----------------------------------------------------------------------
# engine-level chaos: the oracle equivalence standard
# ----------------------------------------------------------------------
class TestEngineChaos:
    def _trace_run(self, factor, seed, kill=False):
        rng = random.Random(7)
        pts = [(rng.uniform(0, 1000), rng.uniform(0, 1000))
               for _ in range(200)]
        kw = {}
        if seed is not None:
            kw = dict(fault_seed=seed, fault_rates=dict(CHAOS_RATES))
        eng = ServingEngine(pts, n_shards=2, block_size=16, backend="log",
                            replication_factor=factor, **kw)
        answers = []
        acked = list(pts)
        for i in range(150):
            p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            eng.insert(*p)
            acked.append(p)
            if i % 5 == 0:
                a, c = rng.uniform(0, 900), rng.uniform(0, 900)
                res = eng.execute([("q4", (a, a + 100, c, c + 100))])
                answers.append(res.results[0])
            if kill and i == 60:
                eng.kill_replica(0, 0, "chaos monkey")
                eng.heal()
            if seed is not None and i % 25 == 24:
                eng.scrub()
        final = eng.execute([("q4", (0, 1000, 0, 1000))]).results[0]
        stats = eng.stats()
        eng.close()
        return answers, final, acked, stats

    def test_chaos_run_matches_fault_free_oracle(self):
        oracle_answers, oracle_final, _, _ = self._trace_run(1, None)
        answers, final, acked, stats = self._trace_run(2, 3, kill=True)
        assert answers == oracle_answers           # zero wrong answers
        assert final == oracle_final
        assert final == sorted(set(acked))         # zero lost acked writes
        assert stats["replication"]["live_replicas"] == 4
        assert stats["replication"]["failovers"] >= 1
        assert stats["replication"]["rebuilds"] >= 1

    def test_chaos_run_is_deterministic(self):
        a1 = self._trace_run(2, 3, kill=True)
        a2 = self._trace_run(2, 3, kill=True)
        assert a1[0] == a2[0] and a1[1] == a2[1]

    def test_replication_factor_one_matches_plain_engine(self, rng):
        pts = make_points(rng, 150)
        e1 = ServingEngine(pts, n_shards=2, block_size=16, backend="log")
        e2 = ServingEngine(pts, n_shards=2, block_size=16, backend="log",
                           replication_factor=1)
        ops = [("ins", (1.0, 1.0)), ("q4", (0, 1000, 0, 1000)),
               ("q3", (0, 500, 100))]
        r1, r2 = e1.execute(ops), e2.execute(ops)
        assert r1.results == r2.results
        assert e1.stats()["total_reads"] == e2.stats()["total_reads"]
        assert e1.stats()["total_writes"] == e2.stats()["total_writes"]
        e1.close()
        e2.close()

    def test_stats_expose_breakers_scrub_and_replica_totals(self, rng):
        eng = ServingEngine(make_points(rng, 80), n_shards=2,
                            block_size=16, backend="log",
                            replication_factor=2)
        eng.insert(1.0, 2.0)
        eng.scrub()
        st = eng.stats()
        assert st["replication"]["factor"] == 2
        assert st["scrub"]["cycles"] == 1
        assert st["total_replica_writes"] > st["total_writes"]
        eng.close()
