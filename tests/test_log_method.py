"""Tests for the logarithmic-method dynamization."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.core.log_method import LogMethodThreeSidedIndex
from repro.core.external_pst import ExternalPrioritySearchTree
from tests.conftest import brute_3sided, make_points


class TestBuild:
    def test_empty(self, store):
        idx = LogMethodThreeSidedIndex(store)
        assert idx.count == 0
        assert idx.query(0, 1, 0) == []
        idx.check_invariants()

    def test_bulk_build_binary_decomposition(self, rng):
        B = 16
        store = BlockStore(B)
        pts = make_points(rng, 5 * B + 3)   # 101 in binary units + 3 buffered
        idx = LogMethodThreeSidedIndex(store, pts)
        idx.check_invariants()
        assert idx.num_levels() == 2        # levels 0 and 2

    def test_duplicates_rejected(self, store):
        with pytest.raises(ValueError):
            LogMethodThreeSidedIndex(store, [(1, 1), (1, 1)])


class TestQueries:
    def test_differential(self, store, rng):
        pts = make_points(rng, 700)
        idx = LogMethodThreeSidedIndex(store, pts)
        for _ in range(60):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            assert sorted(idx.query(a, b, c)) == brute_3sided(pts, a, b, c)

    def test_agrees_with_pst(self, rng):
        pts = make_points(rng, 900)
        lm = LogMethodThreeSidedIndex(BlockStore(16), pts)
        pst = ExternalPrioritySearchTree(BlockStore(16), pts)
        for _ in range(30):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 300)
            c = rng.uniform(0, 1000)
            assert sorted(lm.query(a, b, c)) == sorted(pst.query(a, b, c))


class TestUpdates:
    def test_incremental_inserts(self, store, rng):
        idx = LogMethodThreeSidedIndex(store)
        live = []
        for p in make_points(rng, 400):
            idx.insert(*p)
            live.append(p)
        idx.check_invariants()
        assert idx.carries > 0
        for _ in range(30):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            assert sorted(idx.query(a, b, c)) == brute_3sided(live, a, b, c)

    def test_insert_amortized_io_cheap(self, rng):
        """The log-method's selling point: amortized insert beats the
        PST's on the same workload."""
        B = 32
        pts = make_points(rng, 3000)
        s1, s2 = BlockStore(B), BlockStore(B)
        lm = LogMethodThreeSidedIndex(s1)
        pst = ExternalPrioritySearchTree(s2)
        with Meter(s1) as m1:
            for p in pts:
                lm.insert(*p)
        with Meter(s2) as m2:
            for p in pts:
                pst.insert(*p)
        assert m1.delta.ios < m2.delta.ios

    def test_deletes_and_tombstones(self, store, rng):
        pts = make_points(rng, 300)
        idx = LogMethodThreeSidedIndex(store, pts)
        live = set(pts)
        for p in rng.sample(pts, 120):
            assert idx.delete(*p)
            live.discard(p)
        for _ in range(20):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            assert sorted(idx.query(a, b, c)) == brute_3sided(live, a, b, c)
        idx.check_invariants()

    def test_delete_absent(self, store, rng):
        idx = LogMethodThreeSidedIndex(store, make_points(rng, 64))
        assert not idx.delete(-9, -9)

    def test_delete_then_reinsert(self, store, rng):
        pts = make_points(rng, 100)
        idx = LogMethodThreeSidedIndex(store, pts)
        p = pts[0]
        assert idx.delete(*p)
        idx.insert(*p)          # resurrect from the tombstone set
        assert p in idx.query(p[0], p[0], p[1])
        assert idx.count == 100

    def test_rebuild_triggers(self, store, rng):
        pts = make_points(rng, 200)
        idx = LogMethodThreeSidedIndex(store, pts)
        for p in rng.sample(pts, 150):
            idx.delete(*p)
        assert idx.rebuilds >= 1
        idx.check_invariants()

    def test_mixed_churn(self, store, rng):
        idx = LogMethodThreeSidedIndex(store)
        live = set()
        for i in range(600):
            r = rng.random()
            if r < 0.35 and live:
                p = rng.choice(sorted(live))
                assert idx.delete(*p)
                live.discard(p)
            else:
                p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                if p not in live:
                    idx.insert(*p)
                    live.add(p)
        idx.check_invariants()
        a, b, c = 100.0, 800.0, 300.0
        assert sorted(idx.query(a, b, c)) == brute_3sided(live, a, b, c)


class TestSpace:
    def test_space_linear(self, rng):
        B = 16
        ratios = []
        for n in (500, 2000):
            store = BlockStore(B)
            idx = LogMethodThreeSidedIndex(store, make_points(rng, n))
            ratios.append(idx.blocks_in_use() / (n / B))
        assert ratios[1] <= ratios[0] * 1.5 + 1


class TestPersistence:
    """snapshot_meta()/attach() parity with the external PST."""

    def test_round_trip(self, store, rng):
        pts = make_points(rng, 150)
        idx = LogMethodThreeSidedIndex(store, pts)
        meta = idx.snapshot_meta()
        again = LogMethodThreeSidedIndex.attach(store, meta)
        assert again.count == idx.count
        for _ in range(15):
            a, b = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
            c = rng.uniform(0, 1000)
            assert sorted(again.query(a, b, c)) == brute_3sided(pts, a, b, c)
        again.check_invariants()

    def test_attach_costs_no_io(self, store, rng):
        idx = LogMethodThreeSidedIndex(store, make_points(rng, 100))
        meta = idx.snapshot_meta()
        with Meter(store) as m:
            LogMethodThreeSidedIndex.attach(store, meta)
        assert m.delta.ios == 0

    def test_attached_handle_keeps_updating(self, store, rng):
        """Carries through an attached level read points from disk."""
        pts = make_points(rng, 80)
        idx = LogMethodThreeSidedIndex(store, pts)
        again = LogMethodThreeSidedIndex.attach(store, idx.snapshot_meta())
        extra = [(2000.0 + i, float(i)) for i in range(3 * store.block_size)]
        for p in extra:
            again.insert(*p)
        deleted = pts[0]
        assert again.delete(*deleted)
        live = (set(pts) | set(extra)) - {deleted}
        assert sorted(again.all_points()) == sorted(live)
        again.check_invariants()

    def test_meta_does_not_alias_live_state(self, store, rng):
        idx = LogMethodThreeSidedIndex(store, make_points(rng, 50))
        meta = idx.snapshot_meta()
        idx.insert(5000.0, 5000.0)
        assert meta["count"] == idx.count - 1
