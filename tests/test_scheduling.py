"""Tests for the Section 3.3.3 bubble-up schedulers."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.scheduling import (
    ALL_SCHEDULERS,
    ChildSplitScheduler,
    CreditScheduler,
    EagerScheduler,
    HeavyLeafScheduler,
)
from tests.conftest import brute_3sided, make_points

DEFERRED = [HeavyLeafScheduler, CreditScheduler, ChildSplitScheduler]


class TestRegistry:
    def test_all_schedulers_registered(self):
        assert set(ALL_SCHEDULERS) == {
            "eager", "heavy-leaf", "credit", "child-split"
        }

    def test_names_match_keys(self):
        for name, cls in ALL_SCHEDULERS.items():
            assert cls().name == name


class TestEager:
    def test_eager_keeps_strict_ysets(self, rng):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store, scheduler=EagerScheduler())
        for p in make_points(rng, 800):
            pst.insert(*p)
        pst.check_invariants(strict_ysets=True)
        assert len(pst.scheduler.pending) == 0


@pytest.mark.parametrize("sched_cls", DEFERRED)
class TestDeferredCorrectness:
    def test_queries_exact_during_rebuilding(self, rng, sched_cls):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store, scheduler=sched_cls())
        live = set()
        for i, p in enumerate(make_points(rng, 900)):
            pst.insert(*p)
            live.add(p)
            if i % 150 == 149:
                a = rng.uniform(0, 1000)
                b = a + rng.uniform(0, 300)
                c = rng.uniform(0, 1000)
                assert sorted(pst.query(a, b, c)) == brute_3sided(live, a, b, c)
        pst.check_invariants(strict_ysets=False)

    def test_mixed_ops_stay_correct(self, rng, sched_cls):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store, scheduler=sched_cls())
        live = set()
        for i in range(700):
            r = rng.random()
            if r < 0.3 and live:
                p = rng.choice(sorted(live))
                assert pst.delete(*p)
                live.discard(p)
            else:
                p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                if p not in live:
                    pst.insert(*p)
                    live.add(p)
        pst.check_invariants(strict_ysets=False)
        assert sorted(pst.all_points()) == sorted(live)

    def test_promotions_happen(self, rng, sched_cls):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store, scheduler=sched_cls())
        for p in make_points(rng, 1200):
            pst.insert(*p)
        assert pst.scheduler.promotions > 0


class TestPacing:
    def _insert_costs(self, rng, sched_cls, n=1200, B=16):
        store = BlockStore(B)
        pst = ExternalPrioritySearchTree(store, scheduler=sched_cls())
        costs = []
        for p in make_points(rng, n):
            with Meter(store) as m:
                pst.insert(*p)
            costs.append(m.delta.ios)
        return costs

    def test_deferred_reduces_worst_case_promotion_spikes(self, rng):
        """The refill component of the worst insert should shrink under a
        pacing scheduler relative to eager.  (The structural split cost is
        shared by both, so compare high percentiles rather than max.)"""
        eager = sorted(self._insert_costs(rng, EagerScheduler))
        credit = sorted(self._insert_costs(rng, CreditScheduler))
        p999_eager = eager[int(len(eager) * 0.999)]
        p999_credit = credit[int(len(credit) * 0.999)]
        assert p999_credit <= p999_eager * 1.2

    def test_total_promotion_work_bounded(self, rng):
        """Paced promotions never exceed what eager would have done plus
        outstanding pendings."""
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store, scheduler=HeavyLeafScheduler())
        pts = make_points(rng, 1000)
        for p in pts:
            pst.insert(*p)
        # every pending node's deficit is bounded by B/2
        assert all(isinstance(b, int) for b in pst.scheduler.pending)


class TestSchedulerBookkeeping:
    def test_rebuild_clears_state(self, rng):
        store = BlockStore(16)
        sched = CreditScheduler()
        pst = ExternalPrioritySearchTree(store, scheduler=sched)
        pts = make_points(rng, 700)
        for p in pts:
            pst.insert(*p)
        pst.rebuild()
        assert len(sched.pending) == 0
        assert len(sched._credit) == 0
        pst.check_invariants(strict_ysets=True)

    def test_child_split_beta_parameter(self):
        s = ChildSplitScheduler(beta=7)
        assert s.beta == 7

    def test_promote_on_unknown_pair_is_noop(self, rng):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store, make_points(rng, 300))
        assert not pst.promote_once(10 ** 9, 10 ** 9 + 1)
