"""Tests for the weight-balanced B-tree (Section 3.2, Lemmas 2-3)."""

import math

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.substrates.wb_btree import WeightBalancedBTree


class TestBasics:
    def test_parameter_validation(self):
        store = BlockStore(16)
        with pytest.raises(ValueError):
            WeightBalancedBTree(store, a=8)   # 4a+1 > B
        with pytest.raises(ValueError):
            WeightBalancedBTree(store, a=1)

    def test_insert_search(self, rng):
        store = BlockStore(16)
        t = WeightBalancedBTree(store)
        keys = [rng.uniform(0, 1000) for _ in range(500)]
        for k in keys:
            t.insert(k)
        assert t.count == 500
        for k in rng.sample(keys, 40):
            assert t.search(k)
        assert not t.search(-1.0)
        t.check_invariants()

    def test_keys_sorted(self, rng):
        store = BlockStore(16)
        t = WeightBalancedBTree(store)
        keys = [rng.uniform(0, 100) for _ in range(300)]
        for k in keys:
            t.insert(k)
        assert t.keys() == sorted(keys)

    def test_duplicate_keys_allowed(self):
        store = BlockStore(16)
        t = WeightBalancedBTree(store)
        for _ in range(100):
            t.insert(5.0)
        t.check_invariants()
        assert t.count == 100

    def test_range_count(self, rng):
        store = BlockStore(16)
        t = WeightBalancedBTree(store)
        keys = [rng.uniform(0, 100) for _ in range(400)]
        for k in keys:
            t.insert(k)
        for _ in range(20):
            lo = rng.uniform(0, 100)
            hi = lo + rng.uniform(0, 30)
            assert t.range_count(lo, hi) == sum(1 for k in keys if lo <= k <= hi)


class TestWeightBalance:
    def test_invariants_maintained_throughout(self, rng):
        store = BlockStore(16)
        t = WeightBalancedBTree(store)
        for i in range(1500):
            t.insert(rng.uniform(0, 1000))
            if i % 250 == 249:
                t.check_invariants()

    def test_monotone_inserts_stay_balanced(self):
        store = BlockStore(16)
        t = WeightBalancedBTree(store)
        for i in range(1200):
            t.insert(float(i))
        t.check_invariants()
        # height O(log_a(N/k)) with a=2, k=8
        assert t.height() <= math.log2(1200 / 8) + 4

    def test_level_capacity(self):
        store = BlockStore(16)
        t = WeightBalancedBTree(store, a=2, k=4)
        assert t.level_capacity(0) == 8
        assert t.level_capacity(1) == 16
        assert t.level_capacity(2) == 32

    def test_lemma2_split_spacing(self, rng):
        """Lemma 2: after a level-l node splits, Omega(a^l k) inserts must
        pass through a half before it splits again.  Verify globally: the
        number of level-l splits over N inserts is O(N / (a^l k))."""
        store = BlockStore(16)
        t = WeightBalancedBTree(store)
        n = 2000
        for i in range(n):
            t.insert(rng.uniform(0, 1000))
        by_level = {}
        for level, _w in t.split_log:
            by_level[level] = by_level.get(level, 0) + 1
        for level, count in by_level.items():
            cap = t.level_capacity(level)
            # each split consumes ~cap/2 fresh inserts through that node
            assert count <= 4 * n / cap + 2, (level, count)

    def test_lemma3_insert_io(self, rng):
        """Lemma 3: inserts cost O(log_B N) I/Os away from splits and
        amortized overall."""
        store = BlockStore(32)
        t = WeightBalancedBTree(store)
        n = 1500
        with Meter(store) as m:
            for _ in range(n):
                t.insert(rng.uniform(0, 1000))
        per_op = m.delta.ios / n
        assert per_op <= 6 * t.height() + 6

    def test_split_weights_recorded_near_capacity(self, rng):
        store = BlockStore(16)
        t = WeightBalancedBTree(store)
        for _ in range(1500):
            t.insert(rng.uniform(0, 1000))
        for level, w in t.split_log:
            assert w >= t.level_capacity(level)

    def test_space_linear(self, rng):
        B = 16
        store = BlockStore(B)
        t = WeightBalancedBTree(store)
        n = 2000
        for _ in range(n):
            t.insert(rng.uniform(0, 1000))
        assert store.blocks_in_use <= 6 * n / B + 10
