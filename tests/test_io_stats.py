"""Unit tests for I/O accounting (repro.io.stats)."""

from repro.io import BlockStore, IOStats
from repro.io.stats import Meter


class TestIOStats:
    def test_defaults_zero(self):
        s = IOStats()
        assert s.reads == s.writes == s.allocs == s.frees == 0
        assert s.ios == 0

    def test_subtraction(self):
        a = IOStats(10, 5, 2, 1)
        b = IOStats(4, 2, 1, 0)
        d = a - b
        assert (d.reads, d.writes, d.allocs, d.frees) == (6, 3, 1, 1)

    def test_addition(self):
        a = IOStats(1, 2, 3, 4) + IOStats(10, 20, 30, 40)
        assert (a.reads, a.writes, a.allocs, a.frees) == (11, 22, 33, 44)

    def test_copy_is_independent(self):
        a = IOStats(1, 1, 1, 1)
        b = a.copy()
        b.reads = 99
        assert a.reads == 1

    def test_reset(self):
        a = IOStats(1, 2, 3, 4)
        a.reset()
        assert a.ios == 0 and a.allocs == 0

    def test_reset_zeroes_every_field(self):
        a = IOStats(1, 2, 3, 4)
        a.reset()
        assert (a.reads, a.writes, a.allocs, a.frees) == (0, 0, 0, 0)
        assert a == IOStats()

    def test_as_dict(self):
        d = IOStats(2, 1, 4, 3).as_dict()
        assert d == {"reads": 2, "writes": 1, "ios": 3,
                     "allocs": 4, "frees": 3}

    def test_str_mentions_totals(self):
        assert "ios=3" in str(IOStats(1, 2, 0, 0))


class TestMeter:
    def test_meter_captures_delta(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [1])
        with Meter(store) as m:
            store.read(bid)
            store.read(bid)
        assert m.delta.reads == 2
        assert m.delta.writes == 0

    def test_meter_excludes_prior_traffic(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [1])
        store.read(bid)
        with Meter(store) as m:
            pass
        assert m.delta.ios == 0

    def test_nested_meters_measure_independently(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [1])
        with Meter(store) as outer:
            store.read(bid)
            with Meter(store) as inner:
                store.read(bid)
                store.read(bid)
            store.read(bid)
        assert inner.delta.reads == 2
        assert outer.delta.reads == 4

    def test_overlapping_meters_on_same_store(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [1])
        m1, m2 = Meter(store), Meter(store)
        m1.__enter__()
        store.read(bid)
        m2.__enter__()
        store.read(bid)
        m1.__exit__(None, None, None)
        store.read(bid)
        m2.__exit__(None, None, None)
        assert m1.delta.reads == 2
        assert m2.delta.reads == 2

    def test_current_reads_live_then_freezes(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [1])
        with Meter(store) as m:
            store.read(bid)
            assert m.current.reads == 1
            store.read(bid)
            assert m.current.reads == 2
        assert m.current == m.delta
        store.read(bid)
        assert m.current.reads == 2     # frozen after exit

    def test_meter_is_reusable(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [1])
        m = Meter(store)
        with m:
            store.read(bid)
        assert m.delta.reads == 1
        with m:
            store.read(bid)
            store.read(bid)
        assert m.delta.reads == 2       # fresh snapshot, not cumulative
