"""Tests for the slab-based Arge-Vitter interval tree."""

import random

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.analysis.bounds import log_b
from repro.substrates.av_interval_tree import SlabIntervalTree
from repro.substrates.interval_tree import ExternalIntervalTree


def _intervals(rng, n, span=1000.0, mean_len=40.0):
    out = set()
    while len(out) < n:
        l = rng.uniform(0, span)
        out.add((round(l, 4), round(l + rng.expovariate(1 / mean_len), 4)))
    return sorted(out)


class TestBuild:
    def test_empty(self, store):
        t = SlabIntervalTree(store)
        assert t.stab(5.0) == []
        assert t.count == 0

    def test_single(self, store):
        t = SlabIntervalTree(store, [(1.0, 4.0)])
        assert t.stab(2.0) == [(1.0, 4.0)]
        assert t.stab(5.0) == []

    def test_validation(self, store):
        with pytest.raises(ValueError):
            SlabIntervalTree(store, [(3.0, 1.0)])
        with pytest.raises(ValueError):
            SlabIntervalTree(store, [(0.0, 1.0), (0.0, 1.0)])
        with pytest.raises(ValueError):
            SlabIntervalTree(BlockStore(4), [(0.0, 1.0)])

    def test_invariants_after_build(self, store, rng):
        ivs = _intervals(rng, 800)
        t = SlabIntervalTree(store, ivs)
        t.check_invariants()

    def test_space_linear(self, rng):
        B = 16
        ratios = []
        for n in (400, 1600):
            store = BlockStore(B)
            t = SlabIntervalTree(store, _intervals(rng, n))
            ratios.append(t.blocks_in_use() / (n / B))
        assert ratios[1] <= ratios[0] * 1.5 + 1

    def test_dense_multislabs_created(self, rng):
        """Long intervals spanning the structure force dense lists."""
        store = BlockStore(16)
        long_ivs = [(float(i) / 100, 900.0 + i) for i in range(200)]
        short = _intervals(rng, 400, span=800.0, mean_len=5.0)
        ivs = sorted(set(long_ivs) | set(short))
        t = SlabIntervalTree(store, ivs)
        t.check_invariants()
        got = sorted(t.stab(450.0))
        want = sorted((l, r) for l, r in ivs if l <= 450.0 <= r)
        assert got == want


class TestStab:
    def test_differential(self, store, rng):
        ivs = _intervals(rng, 700)
        t = SlabIntervalTree(store, ivs)
        for _ in range(80):
            q = rng.uniform(-20, 1300)
            got = sorted(t.stab(q))
            assert got == sorted((l, r) for l, r in ivs if l <= q <= r)

    def test_endpoint_stabs(self, store):
        t = SlabIntervalTree(store, [(1.0, 5.0), (5.0, 9.0)])
        assert sorted(t.stab(5.0)) == [(1.0, 5.0), (5.0, 9.0)]

    def test_stab_io_bound(self, rng):
        B = 32
        store = BlockStore(B)
        ivs = _intervals(rng, 2500)
        t = SlabIntervalTree(store, ivs)
        for _ in range(25):
            q = rng.uniform(0, 1100)
            with Meter(store) as m:
                got = t.stab(q)
            bound = log_b(len(ivs), B) + len(got) / B
            assert m.delta.ios <= 40 * bound + 10, (m.delta.ios, bound)


class TestDynamic:
    def test_mixed_ops(self, store, rng):
        ivs = _intervals(rng, 400)
        t = SlabIntervalTree(store, ivs)
        live = set(ivs)
        for i in range(300):
            r = rng.random()
            if r < 0.45 and live:
                iv = rng.choice(sorted(live))
                assert t.delete(*iv)
                live.discard(iv)
            else:
                l = rng.uniform(-100, 1200)
                iv = (round(l, 4), round(l + rng.uniform(0, 400), 4))
                if iv not in live:
                    t.insert(*iv)
                    live.add(iv)
        t.check_invariants()
        for _ in range(30):
            q = rng.uniform(-150, 1700)
            assert sorted(t.stab(q)) == sorted(
                (l, r) for l, r in live if l <= q <= r
            )

    def test_delete_absent(self, store, rng):
        t = SlabIntervalTree(store, _intervals(rng, 100))
        assert not t.delete(-5.0, -1.0)

    def test_sparse_to_dense_promotion(self, rng):
        """Inserting > B spanning intervals into one multislab promotes
        it out of the corner structure."""
        B = 16
        store = BlockStore(B)
        base = _intervals(rng, 300, mean_len=3.0)
        t = SlabIntervalTree(store, base)
        live = set(base)
        for i in range(2 * B):
            iv = (0.5 + i * 1e-6, 999.0 + i * 1e-6)
            t.insert(*iv)
            live.add(iv)
        t.check_invariants()
        q = 500.0
        assert sorted(t.stab(q)) == sorted(
            (l, r) for l, r in live if l <= q <= r
        )

    def test_global_rebuild(self, rng):
        store = BlockStore(16)
        ivs = _intervals(rng, 200)
        t = SlabIntervalTree(store, ivs)
        for i in range(150):
            t.insert(2000.0 + i, 2010.0 + i)
        assert t.rebuilds >= 1
        t.check_invariants()

    def test_out_of_range_inserts(self, store, rng):
        """The root slab is (-inf, inf], so any interval routes."""
        t = SlabIntervalTree(store, _intervals(rng, 150))
        t.insert(-1e6, -9e5)
        t.insert(1e7, 2e7)
        assert t.stab(-9.5e5) == [(-1e6, -9e5)]
        assert t.stab(1.5e7) == [(1e7, 2e7)]


class TestAgainstReduction:
    def test_both_substrates_agree(self, rng):
        """The slab tree and the diagonal-corner reduction answer every
        stab identically."""
        ivs = _intervals(rng, 900)
        slab = SlabIntervalTree(BlockStore(16), ivs)
        redu = ExternalIntervalTree(BlockStore(16), ivs)
        for _ in range(40):
            q = rng.uniform(-10, 1300)
            assert sorted(slab.stab(q)) == sorted(redu.stab(q))
