"""Tests for the static variants (Section 5's practical recommendation)."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.core.static_index import StaticFourSidedIndex, StaticThreeSidedIndex
from repro.core.external_pst import ExternalPrioritySearchTree
from tests.conftest import brute_3sided, brute_4sided, make_points


class TestStaticThreeSided:
    def test_query_differential(self, store, rng):
        pts = make_points(rng, 500)
        idx = StaticThreeSidedIndex(store, pts)
        idx.check_invariants()
        for _ in range(80):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            got = idx.query(x_lo=a, x_hi=b, y_lo=c)
            assert sorted(got) == brute_3sided(pts, a, b, c)

    @pytest.mark.parametrize("side,kwargs,pred", [
        ("left", dict(x_hi=600.0, y_lo=200.0, y_hi=700.0),
         lambda p: p[0] <= 600 and 200 <= p[1] <= 700),
        ("right", dict(x_lo=300.0, y_lo=200.0, y_hi=700.0),
         lambda p: p[0] >= 300 and 200 <= p[1] <= 700),
        ("down", dict(x_lo=100.0, x_hi=800.0, y_hi=450.0),
         lambda p: 100 <= p[0] <= 800 and p[1] <= 450),
    ])
    def test_orientations(self, store, rng, side, kwargs, pred):
        pts = make_points(rng, 300)
        idx = StaticThreeSidedIndex(store, pts, orientation=side)
        got = idx.query(**kwargs)
        assert sorted(got) == sorted(p for p in pts if pred(p))

    def test_query_io_is_candidates_only(self, rng):
        """No search I/O: reads == candidate blocks exactly."""
        B = 16
        store = BlockStore(B)
        pts = make_points(rng, 600)
        idx = StaticThreeSidedIndex(store, pts)
        for _ in range(30):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 300)
            c = rng.uniform(0, 1000)
            expected = idx.candidate_blocks(x_lo=a, x_hi=b, y_lo=c)
            with Meter(store) as m:
                idx.query(x_lo=a, x_hi=b, y_lo=c)
            assert m.delta.reads == expected
            assert m.delta.writes == 0

    def test_query_io_beats_pst_constant(self, rng):
        """The static trade: fewer I/Os per query than the dynamic PST."""
        B = 32
        pts = make_points(rng, 2000)
        s1, s2 = BlockStore(B), BlockStore(B)
        static = StaticThreeSidedIndex(s1, pts)
        pst = ExternalPrioritySearchTree(s2, pts)
        static_io = pst_io = 0
        for _ in range(25):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 300)
            c = rng.uniform(0, 1000)
            with Meter(s1) as m1:
                g1 = static.query(x_lo=a, x_hi=b, y_lo=c)
            with Meter(s2) as m2:
                g2 = pst.query(a, b, c)
            assert sorted(g1) == sorted(g2)
            static_io += m1.delta.ios
            pst_io += m2.delta.ios
        assert static_io < pst_io

    def test_space_matches_scheme(self, store, rng):
        pts = make_points(rng, 400)
        idx = StaticThreeSidedIndex(store, pts, alpha=2)
        # ~2n blocks for alpha = 2
        assert idx.blocks_in_use() <= 2 * (len(pts) // store.block_size) + 3
        assert idx.memory_catalog_entries() == idx.blocks_in_use()

    def test_destroy(self, rng):
        store = BlockStore(16)
        idx = StaticThreeSidedIndex(store, make_points(rng, 100))
        idx.destroy()
        assert store.blocks_in_use == 0


class TestStaticFourSided:
    def test_query_differential(self, store, rng):
        pts = make_points(rng, 600)
        idx = StaticFourSidedIndex(store, pts, rho=4)
        idx.check_invariants()
        for _ in range(60):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 400)
            got = idx.query(a, b, c, d)
            assert sorted(got) == brute_4sided(pts, a, b, c, d)

    def test_query_io_matches_directory(self, rng):
        B = 16
        store = BlockStore(B)
        pts = make_points(rng, 600)
        idx = StaticFourSidedIndex(store, pts, rho=4)
        for _ in range(20):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 400)
            expected = idx.blocks_for_query(a, b, c, d)
            with Meter(store) as m:
                idx.query(a, b, c, d)
            assert m.delta.reads == expected

    def test_space_tracks_levels(self, store, rng):
        pts = make_points(rng, 500)
        idx = StaticFourSidedIndex(store, pts, rho=2)
        per_level = 2 * 2.2 * (len(pts) / store.block_size)  # 2 sides x r<=2.2
        assert idx.blocks_in_use() <= per_level * idx.num_levels() + 10

    def test_destroy(self, rng):
        store = BlockStore(16)
        idx = StaticFourSidedIndex(store, make_points(rng, 200))
        idx.destroy()
        assert store.blocks_in_use == 0


class TestStaticPersistence:
    """snapshot_meta()/attach() for the static 3-sided index."""

    def test_round_trip(self, store, rng):
        pts = make_points(rng, 200)
        idx = StaticThreeSidedIndex(store, pts)
        again = StaticThreeSidedIndex.attach(store, idx.snapshot_meta())
        assert again.count == len(pts)
        for _ in range(15):
            a, b = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
            c = rng.uniform(0, 1000)
            got = again.query(x_lo=a, x_hi=b, y_lo=c)
            assert sorted(got) == brute_3sided(pts, a, b, c)
        again.check_invariants()

    def test_attach_is_lazy_then_reads_blocks(self, store, rng):
        pts = make_points(rng, 120)
        idx = StaticThreeSidedIndex(store, pts)
        meta = idx.snapshot_meta()
        with Meter(store) as m:
            again = StaticThreeSidedIndex.attach(store, meta)
        assert m.delta.ios == 0            # attach itself is free
        with Meter(store) as m:
            assert sorted(again.points()) == sorted(pts)
        assert m.delta.reads > 0           # point reload is honest I/O
