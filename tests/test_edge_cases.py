"""Cross-cutting edge cases and adversarial inputs for every structure."""

import pytest

from repro.io import BlockStore
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.range_tree import ExternalRangeTree
from repro.core.small_structure import SmallThreeSidedStructure
from repro.core.threesided_scheme import ThreeSidedSweepIndex
from repro.core.scheduling import HeavyLeafScheduler
from repro.geometry import ThreeSidedQuery
from repro.substrates.interval_tree import ExternalIntervalTree
from tests.conftest import brute_3sided, brute_4sided


def diag(n):
    return [(float(i), float(i)) for i in range(n)]


def antidiag(n):
    return [(float(i), float(n - i)) for i in range(n)]


def rows_of_ties(cols, rows):
    return [(float(i), float(j)) for i in range(cols) for j in range(rows)]


class TestDegenerateGeometries:
    @pytest.mark.parametrize("pts_fn", [diag, antidiag])
    def test_pst_on_diagonals(self, pts_fn, rng):
        pts = pts_fn(300)
        pst = ExternalPrioritySearchTree(BlockStore(16), pts)
        pst.check_invariants()
        for _ in range(30):
            a = rng.uniform(-10, 310)
            b = a + rng.uniform(0, 150)
            c = rng.uniform(-10, 310)
            assert sorted(pst.query(a, b, c)) == brute_3sided(pts, a, b, c)

    def test_pst_on_tie_grid(self, rng):
        """Many duplicate x columns and duplicate y rows simultaneously."""
        pts = rows_of_ties(20, 20)
        pst = ExternalPrioritySearchTree(BlockStore(16), pts)
        pst.check_invariants()
        for _ in range(30):
            a, b = sorted((rng.randrange(20), rng.randrange(20)))
            c = rng.randrange(20)
            assert sorted(pst.query(a, b, c)) == brute_3sided(pts, a, b, c)

    def test_range_tree_on_tie_grid(self, rng):
        pts = rows_of_ties(18, 18)
        rt = ExternalRangeTree(BlockStore(16), pts)
        rt.check_invariants()
        for _ in range(30):
            a, b = sorted((rng.randrange(18), rng.randrange(18)))
            c, d = sorted((rng.randrange(18), rng.randrange(18)))
            assert sorted(rt.query(a, b, c, d)) == brute_4sided(pts, a, b, c, d)

    def test_sweep_scheme_on_single_column(self):
        pts = [(5.0, float(i)) for i in range(100)]
        idx = ThreeSidedSweepIndex(pts, 8)
        idx.check_invariants()
        got, _ = idx.query(ThreeSidedQuery(5, 5, 50))
        assert len(set(got)) == 50


class TestExtremeCoordinates:
    def test_pst_huge_and_tiny_values(self, rng):
        pts = (
            [(1e15 + i, 1e-15 * i) for i in range(50)]
            + [(-1e15 - i, -1e-15 * i) for i in range(1, 50)]
            + [(float(i), float(i)) for i in range(50, 100)]
        )
        pst = ExternalPrioritySearchTree(BlockStore(16), pts)
        pst.check_invariants()
        got = pst.query(-2e15, 2e15, -1.0)
        assert len(got) == len(pts)
        got = pst.query(1e15, 2e15, 0.0)
        assert sorted(got) == sorted(p for p in pts if p[0] >= 1e15)

    def test_small_structure_negative_domain(self, rng):
        pts = [(-float(i) - 1, -float(i * 7 % 50)) for i in range(100)]
        s = SmallThreeSidedStructure(BlockStore(16), pts)
        s.check_invariants()
        got = s.query(ThreeSidedQuery(-60, -10, -25))
        assert sorted(got) == brute_3sided(pts, -60, -10, -25)

    def test_interval_tree_point_intervals_everywhere(self):
        ivs = [(float(i), float(i)) for i in range(200)]
        it = ExternalIntervalTree(BlockStore(16), ivs)
        assert it.stab(57.0) == [(57.0, 57.0)]
        assert it.stab(57.5) == []


class TestAdversarialUpdateOrders:
    def test_pst_sawtooth_inserts(self, rng):
        """Alternate extreme-low and extreme-high x inserts: both flanks
        split continuously."""
        pst = ExternalPrioritySearchTree(BlockStore(16))
        live = []
        for i in range(400):
            p = (float(-i), float(i % 37)) if i % 2 else (float(i), float(i % 41))
            pst.insert(*p)
            live.append(p)
        pst.check_invariants()
        assert sorted(pst.query(-500, 500, 0)) == sorted(live)

    def test_pst_descending_y_inserts(self, rng):
        """Each new point is the global minimum: always sinks to a leaf."""
        pst = ExternalPrioritySearchTree(BlockStore(16))
        pts = [(rng.uniform(0, 100), 1000.0 - i) for i in range(400)]
        for p in pts:
            pst.insert(*p)
        pst.check_invariants()
        assert pst.count == 400

    def test_pst_ascending_y_inserts(self, rng):
        """Each new point is the global maximum: always lands in a root
        Y-set and evicts."""
        pst = ExternalPrioritySearchTree(BlockStore(16))
        pts = [(rng.uniform(0, 100), float(i)) for i in range(400)]
        for p in pts:
            pst.insert(*p)
        pst.check_invariants()
        got = pst.query(-1, 101, 395.0)
        assert sorted(got) == sorted(p for p in pts if p[1] >= 395.0)

    def test_delete_reinsert_same_point_repeatedly(self, rng):
        pst = ExternalPrioritySearchTree(
            BlockStore(16), [(float(i), float(i % 7)) for i in range(100)]
        )
        p = (50.0, 1.0)
        for _ in range(30):
            assert pst.delete(*p)
            pst.insert(*p)
        pst.check_invariants()
        assert pst.count == 100


class TestHeavyLeafProperRegime:
    def test_lemma7_regime(self, rng):
        """Heavy-leaf scheduling with k = Theta(B log_B N), the regime
        Lemma 7 assumes: queries stay exact, promotions happen, and
        rebuilding nodes keep draining."""
        B = 16
        store = BlockStore(B)
        import math
        k = B * max(2, math.ceil(math.log(3000) / math.log(B)))
        pst = ExternalPrioritySearchTree(
            store, k=k, scheduler=HeavyLeafScheduler()
        )
        live = set()
        for i in range(2000):
            p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            if p in live:
                continue
            pst.insert(*p)
            live.add(p)
        pst.check_invariants(strict_ysets=False)
        assert pst.scheduler.promotions > 0
        for _ in range(25):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 300)
            c = rng.uniform(0, 1000)
            assert sorted(pst.query(a, b, c)) == brute_3sided(live, a, b, c)


class TestRangeTreeEdges:
    def test_rho_two_minimum(self, rng):
        pts = [(float(i), float((i * 13) % 101)) for i in range(300)]
        rt = ExternalRangeTree(BlockStore(16), pts, rho=2)
        rt.check_invariants()
        assert sorted(rt.query(-1, 301, -1, 102)) == sorted(pts)

    def test_inserting_far_outside_domain(self, rng):
        pts = [(float(i), float(i % 11)) for i in range(200)]
        rt = ExternalRangeTree(BlockStore(16), pts)
        rt.insert(-1e9, 5.0)
        rt.insert(1e9, 5.0)
        rt.check_invariants()
        assert (-1e9, 5.0) in rt.query(-2e9, -1e8, 0, 10)
        assert (1e9, 5.0) in rt.query(1e8, 2e9, 0, 10)

    def test_single_point_tree(self):
        rt = ExternalRangeTree(BlockStore(16), [(1.0, 2.0)])
        assert rt.query(0, 2, 1, 3) == [(1.0, 2.0)]
        assert rt.delete(1.0, 2.0)
        assert rt.query(0, 2, 1, 3) == []
