"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.io import BlockStore


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def store():
    """Default simulated disk with B = 16."""
    return BlockStore(16)


@pytest.fixture
def store32():
    return BlockStore(32)


def make_points(rng, n, lo=0.0, hi=1000.0):
    """n distinct random points in [lo, hi)^2."""
    out = set()
    while len(out) < n:
        out.add((rng.uniform(lo, hi), rng.uniform(lo, hi)))
    return list(out)


def brute_3sided(points, a, b, c):
    return sorted(p for p in points if a <= p[0] <= b and p[1] >= c)


def brute_4sided(points, a, b, c, d):
    return sorted(p for p in points if a <= p[0] <= b and c <= p[1] <= d)
