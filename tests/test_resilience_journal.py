"""JournaledStore: atomicity, the C-record commit point, recovery.

The crash tests inject ``SimulatedCrash`` at exact operation indices by
appending to the schedule's ``crash_at_ops`` mid-run: the ops counter
of the live schedule tells us where the next commit's journal append
will land, so each test dies at a *chosen* step of the commit protocol.
"""

import pytest

from repro.io import BlockStore
from repro.io.blockstore import BlockCapacityError, StorageError
from repro.resilience import (
    FaultSchedule,
    FaultyStore,
    JournaledStore,
    RecoveryError,
    SimulatedCrash,
)


def make_stack(B=16, **schedule_kw):
    raw = BlockStore(B)
    schedule = FaultSchedule(0, **schedule_kw)
    faulty = FaultyStore(raw, schedule)
    js = JournaledStore(faulty)
    return raw, schedule, faulty, js


class TestTransactions:
    def test_writes_buffered_until_commit(self):
        raw, _, _, js = make_stack()
        b = js.alloc()
        js.write(b, ["committed"])
        js.begin()
        js.write(b, ["pending"])
        assert raw.peek(b) == ["committed"]        # disk unchanged
        assert list(js.read(b).records) == ["pending"]  # read-your-writes
        assert js.peek(b) == ["pending"]
        js.commit()
        assert raw.peek(b) == ["pending"]

    def test_meta_travels_with_commit(self):
        _, _, faulty, js = make_stack()
        anchor = js.anchor_bids
        js.begin()
        b = js.alloc()
        js.write(b, [1])
        js.commit({"root": b, "count": 1})
        js2 = JournaledStore.attach(faulty, anchor)
        assert js2.recover() == {"root": b, "count": 1}

    def test_free_deferred_and_enforced(self):
        raw, _, _, js = make_stack()
        b = js.alloc()
        js.write(b, [1])
        js.begin()
        js.free(b)
        assert raw.peek(b) == [1]  # still on disk mid-transaction
        with pytest.raises(StorageError):
            js.read(b)
        with pytest.raises(StorageError):
            js.free(b)  # double free
        js.commit()
        with pytest.raises(StorageError):
            raw.peek(b)  # applied at commit

    def test_abort_leaves_disk_untouched_and_reclaims_allocs(self):
        raw, _, _, js = make_stack()
        b = js.alloc()
        js.write(b, ["keep"])
        in_use = raw.blocks_in_use
        js.begin()
        js.write(b, ["discard"])
        extra = js.alloc()
        js.write(extra, ["discard too"])
        js.abort()
        assert raw.peek(b) == ["keep"]
        assert raw.blocks_in_use == in_use  # extra reclaimed

    def test_no_nesting_and_no_blind_commit(self):
        _, _, _, js = make_stack()
        js.begin()
        with pytest.raises(RuntimeError):
            js.begin()
        js.abort()
        with pytest.raises(RuntimeError):
            js.commit()

    def test_capacity_error_surfaces_in_transaction(self):
        _, _, _, js = make_stack(B=4)
        b = js.alloc()
        js.begin()
        with pytest.raises(BlockCapacityError):
            js.write(b, [1, 2, 3, 4, 5])
        js.abort()

    def test_transaction_contextmanager(self):
        raw, _, faulty, js = make_stack()
        b = js.alloc()
        with js.transaction(meta=lambda: "after"):
            js.write(b, ["done"])
        assert raw.peek(b) == ["done"]
        js2 = JournaledStore.attach(faulty, js.anchor_bids)
        assert js2.recover() == "after"
        # a plain exception aborts
        with pytest.raises(ValueError):
            with js.transaction():
                js.write(b, ["nope"])
                raise ValueError("boom")
        assert raw.peek(b) == ["done"]


class TestCrashRecovery:
    def _committed_setup(self):
        """A store with one committed transaction: block b == ['v1']."""
        raw, schedule, faulty, js = make_stack()
        js.begin()
        b = js.alloc()
        js.write(b, ["v1"])
        js.commit({"b": b, "v": 1})
        return raw, schedule, faulty, js, b

    def test_crash_mid_transaction_discards_buffer(self):
        raw, schedule, faulty, js, b = self._committed_setup()
        anchor = js.anchor_bids
        js.begin()
        js.write(b, ["v2"])
        # the process dies here; the buffered write never hits the disk
        js2 = JournaledStore.attach(faulty, anchor)
        assert js2.recover() == {"b": b, "v": 1}
        assert raw.peek(b) == ["v1"]

    def test_crash_before_commit_record_discards(self):
        raw, schedule, faulty, js, b = self._committed_setup()
        anchor = js.anchor_bids
        js.begin()
        js.write(b, ["v2"])
        # die on the journal-block write: alloc(jb) is the next op, the
        # write carrying the records (and C) is the one after
        schedule.crash_at_ops.add(schedule.ops_seen + 1)
        with pytest.raises(SimulatedCrash):
            js.commit({"b": b, "v": 2})
        js2 = JournaledStore.attach(faulty, anchor)
        assert js2.recover() == {"b": b, "v": 1}  # v2 never committed
        assert raw.peek(b) == ["v1"]

    def test_crash_after_commit_record_redoes(self):
        raw, schedule, faulty, js, b = self._committed_setup()
        anchor = js.anchor_bids
        js.begin()
        js.write(b, ["v2"])
        # ops at commit: alloc(jb), write(jb with W..C), write(anchor),
        # then the apply phase; dying on the first apply write leaves C
        # durable but the main block stale
        schedule.crash_at_ops.add(schedule.ops_seen + 3)
        with pytest.raises(SimulatedCrash):
            js.commit({"b": b, "v": 2})
        assert raw.peek(b) == ["v1"]  # apply never reached the block
        js2 = JournaledStore.attach(faulty, anchor)
        assert js2.recover() == {"b": b, "v": 2}  # C durable => redo
        assert raw.peek(b) == ["v2"]

    def test_crash_during_recovery_is_recoverable(self):
        raw, schedule, faulty, js, b = self._committed_setup()
        anchor = js.anchor_bids
        js.begin()
        js.write(b, ["v2"])
        schedule.crash_at_ops.add(schedule.ops_seen + 3)
        with pytest.raises(SimulatedCrash):
            js.commit({"b": b, "v": 2})
        # first recovery attempt dies mid-replay; sites are one-shot
        schedule.crash_at_ops.add(schedule.ops_seen + 2)
        with pytest.raises(SimulatedCrash):
            JournaledStore.attach(faulty, anchor).recover()
        js2 = JournaledStore.attach(faulty, anchor)
        assert js2.recover() == {"b": b, "v": 2}  # idempotent redo
        assert raw.peek(b) == ["v2"]

    def test_torn_anchor_slot_survived_by_dual_slot(self):
        raw, schedule, faulty, js, b = self._committed_setup()
        anchor = js.anchor_bids
        version = js._anchor_version
        # destroy the slot holding the NEWEST anchor (a torn superblock
        # write): attach must fall back to the surviving older slot
        raw.write(anchor[version % 2], [("JUNK",)])
        js2 = JournaledStore.attach(faulty, anchor)
        # the journal was checkpointed, so the older anchor still leads
        # to the committed meta block
        assert js2.recover() == {"b": b, "v": 1}

    def test_both_anchors_gone_is_fatal(self):
        raw, schedule, faulty, js, b = self._committed_setup()
        anchor = js.anchor_bids
        for slot in anchor:
            raw.write(slot, [("JUNK",)])
        with pytest.raises(RecoveryError):
            JournaledStore.attach(faulty, anchor)

    def test_logged_allocs_reclaimed_on_recovery(self):
        raw = BlockStore(16)
        faulty = FaultyStore(raw, FaultSchedule(0))
        js = JournaledStore(faulty, log_allocs=True)
        anchor = js.anchor_bids
        js.begin()
        b = js.alloc()
        js.write(b, [1])
        js.commit({"b": b})
        in_use = raw.blocks_in_use
        js.begin()
        leak1 = js.alloc()
        leak2 = js.alloc()
        js.write(leak1, ["lost"])
        # crash (abandon): allocs of the open txn are journaled as A
        # records with no C, so recovery must free them
        js2 = JournaledStore.attach(faulty, anchor, log_allocs=True)
        assert js2.recover() == {"b": b}
        assert raw.blocks_in_use == in_use
        with pytest.raises(StorageError):
            raw.peek(leak2)

    def test_recover_twice_is_clean(self):
        raw, schedule, faulty, js, b = self._committed_setup()
        js2 = JournaledStore.attach(faulty, js.anchor_bids)
        m1 = js2.recover()
        m2 = js2.recover()
        assert m1 == m2 == {"b": b, "v": 1}


class TestZeroOverhead:
    def test_passthrough_without_transactions(self):
        """After init, a transaction-free JournaledStore adds zero I/O."""
        plain = BlockStore(16)
        raw = BlockStore(16)
        js = JournaledStore(FaultyStore(raw, FaultSchedule(0)))
        base_reads, base_writes = raw.stats.reads, raw.stats.writes

        def workload(store):
            bids = [store.alloc() for _ in range(10)]
            for i, b in enumerate(bids):
                store.write(b, [i])
            for b in bids:
                store.read(b)

        workload(plain)
        workload(js)
        assert raw.stats.reads - base_reads == plain.stats.reads
        assert raw.stats.writes - base_writes == plain.stats.writes
