"""Cross-module integration tests: the paper's pieces working together."""


from repro.io import BlockStore, BufferPool
from repro.io.stats import Meter
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.range_tree import ExternalRangeTree
from repro.core.foursided_scheme import FourSidedLayeredIndex
from repro.core.threesided_scheme import ThreeSidedSweepIndex
from repro.substrates.interval_tree import ExternalIntervalTree
from repro.baselines import BTreeXFilter, RTree
from repro.indexability import access_overhead, redundancy
from repro.indexability.workload import RangeWorkload
from repro.workloads import (
    clustered_points,
    diagonal_points,
    four_sided_queries,
    three_sided_queries,
    uniform_points,
)


class TestSchemeVsStructure:
    """The indexing scheme (search cost ignored) and the PST (search cost
    included) must agree on every answer."""

    def test_scheme_and_pst_agree(self):
        pts = uniform_points(800, seed=11)
        scheme = ThreeSidedSweepIndex(pts, 16)
        pst = ExternalPrioritySearchTree(BlockStore(16), pts)
        for q in three_sided_queries(pts, 40, seed=12, target_frac=0.02):
            a, b = scheme.query(q)[0], pst.query(q.a, q.b, q.c)
            assert sorted(set(a)) == sorted(b)

    def test_layered_scheme_and_range_tree_agree(self):
        pts = uniform_points(700, seed=13)
        scheme = FourSidedLayeredIndex(pts, 16, rho=4)
        rt = ExternalRangeTree(BlockStore(16), pts)
        for q in four_sided_queries(pts, 30, seed=14, target_frac=0.02):
            a = scheme.query(q)[0]
            b = rt.query(q.a, q.b, q.c, q.d)
            assert sorted(set(a)) == sorted(b)


class TestOptimalVsBaselines:
    def test_all_structures_agree_on_answers(self):
        pts = clustered_points(600, seed=15)
        store1, store2, store3 = BlockStore(16), BlockStore(16), BlockStore(16)
        rt = ExternalRangeTree(store1, pts)
        bt = BTreeXFilter(store2, pts)
        r = RTree(store3, pts)
        for q in four_sided_queries(pts, 25, seed=16):
            want = sorted(q.filter(pts))
            assert sorted(rt.query(q.a, q.b, q.c, q.d)) == want
            assert sorted(set(bt.query_4sided(q.a, q.b, q.c, q.d))) == want
            assert sorted(set(r.query_4sided(q.a, q.b, q.c, q.d))) == want

    def test_pst_beats_btree_filter_on_thin_slabs(self):
        """The paper's motivating separation, end to end in I/Os: a wide
        x-slab whose 3-sided threshold admits only a few points.  The
        B-tree must scan the whole slab; the PST pays log_B N + t."""
        B = 16
        pts = uniform_points(3000, seed=17)
        store_pst, store_bt = BlockStore(B), BlockStore(B)
        pst = ExternalPrioritySearchTree(store_pst, pts)
        bt = BTreeXFilter(store_bt, pts)
        xs = sorted(p[0] for p in pts)
        ys = sorted(p[1] for p in pts)
        pst_io = bt_io = 0
        for i in range(8):
            a, b = xs[50 + 20 * i], xs[2400 + 20 * i]   # ~80% of x-extent
            c = ys[-10]                                  # ~10-point output
            with Meter(store_pst) as m1:
                got1 = pst.query(a, b, c)
            with Meter(store_bt) as m2:
                got2 = bt.query_3sided(a, b, c)
            assert sorted(got1) == sorted(set(got2))
            pst_io += m1.delta.ios
            bt_io += m2.delta.ios
        assert pst_io * 2 < bt_io, (pst_io, bt_io)


class TestIntervalManagement:
    """Figure 1(a): dynamic interval management via diagonal corners."""

    def test_session_timeline(self):
        # sessions (start, end); queries: who is online at time t?
        sessions = [(float(s), float(s + d)) for s, d in
                    [(0, 10), (2, 3), (5, 20), (7, 1), (8, 2), (15, 5)]]
        it = ExternalIntervalTree(BlockStore(16), sessions)
        assert sorted(it.stab(2.5)) == [(0.0, 10.0), (2.0, 5.0)]
        it.delete(0.0, 10.0)
        assert sorted(it.stab(2.5)) == [(2.0, 5.0)]
        it.insert(2.4, 2.6)
        assert sorted(it.stab(2.5)) == [(2.0, 5.0), (2.4, 2.6)]

    def test_interval_tree_agrees_with_scan(self):
        ivs = [(x, x + abs(y - x)) for x, y in diagonal_points(300, seed=19)]
        ivs = sorted(set(ivs))
        it = ExternalIntervalTree(BlockStore(32), ivs)
        for t in [100.0, 5000.0, 999999.0]:
            want = sorted((l, r) for l, r in ivs if l <= t <= r)
            assert sorted(it.stab(t)) == want


class TestIndexabilityMeasuresOnRealSchemes:
    def test_sweep_scheme_measured_ao(self):
        """Measured access overhead of the Theorem 4 scheme stays O(1)
        (charging the scheme's own covers)."""
        pts = uniform_points(600, seed=20)
        idx = ThreeSidedSweepIndex(pts, 16, alpha=2)
        qs = three_sided_queries(pts, 25, seed=21, target_frac=0.05)
        rects = [q.as_rect() for q in qs]
        w = RangeWorkload(pts, rects)
        covers = [idx.query(q)[1] for q in qs]
        scheme = idx.as_indexing_scheme()
        ao = access_overhead(scheme, w, covers=covers)
        assert ao <= 8.0   # alpha^2 + alpha + 2 with alpha = 2
        assert redundancy(scheme, w) <= 2.2

    def test_layered_scheme_redundancy_tradeoff(self):
        pts = uniform_points(900, seed=22)
        w = RangeWorkload(pts, [])
        r_by_rho = {}
        for rho in (2, 8):
            idx = FourSidedLayeredIndex(pts, 8, rho=rho)
            r_by_rho[rho] = redundancy(idx.as_indexing_scheme(), w)
        assert r_by_rho[8] < r_by_rho[2]


class TestBufferPoolIntegration:
    def test_pst_under_buffer_pool(self):
        """The PST runs unchanged over a pool; results identical, physical
        I/O reduced."""
        B = 16
        pts = uniform_points(800, seed=23)
        raw = BlockStore(B)
        pst_raw = ExternalPrioritySearchTree(raw, pts)
        disk = BlockStore(B)
        pool = BufferPool(disk, capacity=64)
        pst_pool = ExternalPrioritySearchTree(pool, pts)
        qs = three_sided_queries(pts, 20, seed=24)
        raw_before = raw.stats.copy()
        disk_before = disk.stats.copy()
        for q in qs:
            assert sorted(pst_raw.query(q.a, q.b, q.c)) == sorted(
                pst_pool.query(q.a, q.b, q.c)
            )
        assert (disk.stats - disk_before).reads < (raw.stats - raw_before).reads


class TestEndToEndLifecycle:
    def test_build_update_rebuild_query(self):
        """A full lifecycle: bulk build, heavy churn, rebuild, verify."""
        pts = uniform_points(500, seed=25)
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store, pts)
        live = set(pts)
        import random
        r = random.Random(26)
        for _ in range(600):
            if r.random() < 0.5 and live:
                p = r.choice(sorted(live))
                assert pst.delete(*p)
                live.discard(p)
            else:
                p = (r.uniform(0, 1000), r.uniform(0, 1000))
                if p not in live:
                    pst.insert(*p)
                    live.add(p)
        pst.rebuild()
        pst.check_invariants()
        for q in three_sided_queries(sorted(live), 20, seed=27):
            assert sorted(pst.query(q.a, q.b, q.c)) == sorted(q.filter(live))
