"""Unit tests for repro.geometry: queries of Figure 1 and orientations."""

import pytest

from repro.geometry import (
    INF,
    DiagonalCornerQuery,
    FourSidedQuery,
    Orientation,
    Rect,
    ThreeSidedQuery,
    TwoSidedQuery,
    sort_by_x,
    sort_by_y,
)

PTS = [(0.0, 0.0), (1.0, 5.0), (2.0, 2.0), (5.0, 1.0), (3.0, 3.0)]


class TestRect:
    def test_contains_boundary_closed(self):
        r = Rect(0, 2, 0, 2)
        assert r.contains((0, 0)) and r.contains((2, 2))
        assert not r.contains((2.0001, 1))

    def test_empty_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(2, 1, 0, 0)

    def test_area_and_dims(self):
        r = Rect(1, 4, 2, 8)
        assert r.width == 3 and r.height == 6 and r.area == 18

    def test_intersects(self):
        a = Rect(0, 2, 0, 2)
        assert a.intersects(Rect(2, 3, 2, 3))      # corner touch
        assert not a.intersects(Rect(2.1, 3, 0, 2))

    def test_filter(self):
        assert Rect(0, 2, 0, 2).filter(PTS) == [(0.0, 0.0), (2.0, 2.0)]


class TestQueries:
    def test_three_sided_semantics(self):
        q = ThreeSidedQuery(1, 3, 2)
        assert q.filter(PTS) == [(1.0, 5.0), (2.0, 2.0), (3.0, 3.0)]

    def test_three_sided_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            ThreeSidedQuery(3, 1, 0)

    def test_three_sided_as_rect(self):
        r = ThreeSidedQuery(1, 3, 2).as_rect()
        assert r.y_hi == INF

    def test_four_sided_semantics(self):
        q = FourSidedQuery(1, 3, 2, 3)
        assert q.filter(PTS) == [(2.0, 2.0), (3.0, 3.0)]

    def test_four_sided_validation(self):
        with pytest.raises(ValueError):
            FourSidedQuery(0, 1, 3, 2)

    def test_two_sided_is_special_three_sided(self):
        q = TwoSidedQuery(b=2, c=1)
        q3 = q.as_three_sided()
        assert q.filter(PTS) == q3.filter(PTS)

    def test_diagonal_corner_is_stabbing(self):
        # intervals [0,3], [2,5] as points (l, r); stab at 2.5
        intervals = [(0.0, 3.0), (2.0, 5.0), (4.0, 6.0)]
        q = DiagonalCornerQuery(2.5)
        assert q.filter(intervals) == [(0.0, 3.0), (2.0, 5.0)]
        assert q.as_three_sided().filter(intervals) == [(0.0, 3.0), (2.0, 5.0)]


class TestOrientation:
    @pytest.mark.parametrize("side", ["up", "down", "left", "right"])
    def test_transform_round_trips(self, side):
        o = Orientation(side)
        for p in PTS:
            assert o.from_canonical(o.to_canonical(p)) == p

    def test_unknown_orientation_rejected(self):
        with pytest.raises(ValueError):
            Orientation("sideways")

    @pytest.mark.parametrize(
        "side,kwargs,pred",
        [
            ("up", dict(x_lo=1, x_hi=3, y_lo=2),
             lambda p: 1 <= p[0] <= 3 and p[1] >= 2),
            ("down", dict(x_lo=1, x_hi=3, y_hi=2),
             lambda p: 1 <= p[0] <= 3 and p[1] <= 2),
            ("right", dict(x_lo=2, y_lo=1, y_hi=3),
             lambda p: p[0] >= 2 and 1 <= p[1] <= 3),
            ("left", dict(x_hi=2, y_lo=1, y_hi=3),
             lambda p: p[0] <= 2 and 1 <= p[1] <= 3),
        ],
    )
    def test_query_transform_matches_semantics(self, side, kwargs, pred):
        o = Orientation(side)
        q = o.query_to_canonical(**kwargs)
        got = sorted(
            o.from_canonical(cp)
            for cp in (o.to_canonical(p) for p in PTS)
            if q.contains(cp)
        )
        assert got == sorted(p for p in PTS if pred(p))

    def test_open_side_must_be_unbounded(self):
        with pytest.raises(ValueError):
            Orientation("up").query_to_canonical(x_lo=0, x_hi=1, y_lo=0, y_hi=5)
        with pytest.raises(ValueError):
            Orientation("right").query_to_canonical(x_lo=0, x_hi=1, y_lo=0, y_hi=5)


class TestSorts:
    def test_sort_by_x_breaks_ties_by_y(self):
        pts = [(1.0, 2.0), (1.0, 1.0), (0.0, 9.0)]
        assert sort_by_x(pts) == [(0.0, 9.0), (1.0, 1.0), (1.0, 2.0)]

    def test_sort_by_y_breaks_ties_by_x(self):
        pts = [(2.0, 1.0), (1.0, 1.0), (0.0, 0.0)]
        assert sort_by_y(pts) == [(0.0, 0.0), (1.0, 1.0), (2.0, 1.0)]
