"""White-box tests for external-PST internals: the machinery the paper's
Section 3.3 proofs lean on, exercised directly."""

import pytest

from repro.io import BlockStore
from repro.core.external_pst import MAX_KEY, MIN_KEY, ExternalPrioritySearchTree
from repro.core.scheduling import CreditScheduler
from repro.core.small_structure import SmallThreeSidedStructure
from tests.conftest import make_points


def _mk(rng, n, B=16, **kw):
    store = BlockStore(B)
    pts = make_points(rng, n)
    return store, pts, ExternalPrioritySearchTree(store, pts, **kw)


class TestTakeTop:
    def test_take_top_extracts_in_y_order(self, rng):
        store, pts, pst = _mk(rng, 400)
        ordered = sorted(pts, key=lambda p: (-p[1], p[0]))
        for want in ordered[:50]:
            got = pst._take_top(pst._root)
            assert got is not None
            assert got[1] == want[1]
            # removing the root's top shrinks the live set
        # state note: _take_top on the root leaves the records "promoted
        # out" of the structure entirely (no parent Q to receive them),
        # so rebuild before invariant checks
        remaining = pst.all_points()
        assert len(remaining) == 350

    def test_take_top_empty_tree(self):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        pst.insert(1.0, 1.0)
        assert pst._take_top(pst._root) == ((1.0, 1.0), 1.0)
        assert pst._take_top(pst._root) is None

    def test_peek_top_does_not_mutate(self, rng):
        store, pts, pst = _mk(rng, 300)
        want = max(pts, key=lambda p: (p[1], p[0]))
        r1 = pst._peek_top(pst._root)
        r2 = pst._peek_top(pst._root)
        assert r1 == r2
        assert r1[1] == want[1]
        pst.check_invariants()


class TestPromotionMachinery:
    def test_refill_deficit_zero_when_full(self, rng):
        store, pts, pst = _mk(rng, 800)
        records = pst._read(pst._root)
        if pst._is_leaf(records):
            pytest.skip("tree too small")
        for e in records[1:]:
            deficit = pst.refill_deficit(pst._root, e[1])
            # eager scheduler: no child may have content below with a
            # Y-set under half
            if e[6] > 0:
                assert deficit == 0

    def test_promote_once_skips_saturated_child(self, rng):
        store, pts, pst = _mk(rng, 800)
        records = pst._read(pst._root)
        full = next(
            (e for e in records[1:] if e[4] >= pst.y_cap), None
        )
        if full is not None:
            assert not pst.promote_once(pst._root, full[1])

    def test_promote_on_freed_parent_is_noop(self, rng):
        store, pts, pst = _mk(rng, 100)
        assert not pst.promote_once(10 ** 8, 10 ** 8 + 1)
        assert pst.refill_deficit(10 ** 8, 10 ** 8 + 1) == 0

    def test_deferred_depletion_then_manual_drain(self, rng):
        """Under a deferred scheduler, manually draining the pending set
        restores strict Y-set invariants."""
        store = BlockStore(16)
        sched = CreditScheduler()
        pst = ExternalPrioritySearchTree(store, scheduler=sched)
        for p in make_points(rng, 900):
            pst.insert(*p)
        # drain every pending refill by walking parent/child pairs
        guard = 0
        while sched.pending and guard < 10_000:
            guard += 1
            progressed = False
            def walk(bid):
                nonlocal progressed
                records = pst._read(bid)
                if pst._is_leaf(records):
                    return
                for e in records[1:]:
                    if e[1] in sched.pending:
                        if pst.promote_once(bid, e[1]):
                            progressed = True
                        if pst.refill_deficit(bid, e[1]) <= 0:
                            sched.pending.discard(e[1])
                    walk(e[1])
            walk(pst._root)
            if not progressed and sched.pending:
                break
        pst.check_invariants(strict_ysets=not sched.pending)


class TestNodeLayout:
    def test_fanout_fits_one_block(self, rng):
        """Every internal node's record list fits its block (4a+2 <= B)."""
        B = 16
        store, pts, pst = _mk(rng, 2000, B=B)

        def walk(bid):
            records = store.peek(bid)
            assert len(records) <= B
            if records[0][0] == "I":
                for e in records[1:]:
                    walk(e[1])

        walk(pst._root)

    def test_min_max_key_sentinels(self):
        assert MIN_KEY < (0.0, 0.0) < MAX_KEY
        assert MIN_KEY < (-1e300, -1e300)
        assert (1e300, 1e300) < MAX_KEY

    def test_route_semantics(self):
        entries = [
            ("C", 1, (5.0, 0.0), 0, 0, None, 0),
            ("C", 2, (9.0, 0.0), 0, 0, None, 0),
        ]
        route = ExternalPrioritySearchTree._route
        assert route(entries, (4.0, 0.0)) == 0
        assert route(entries, (5.0, 0.0)) == 0       # inclusive upper
        assert route(entries, (5.0, 0.1)) == 1
        assert route(entries, (99.0, 0.0)) == 1      # beyond: last child


class TestSmallStructureRangeTop:
    def test_top_in_x_range_matches_brute(self, rng):
        store = BlockStore(16)
        pts = make_points(rng, 200)
        s = SmallThreeSidedStructure(store, pts)
        for _ in range(40):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            got = s.top_in_x_range(a, b)
            cand = [p for p in pts if a <= p[0] <= b]
            want = max(cand, key=lambda p: (p[1], p[0])) if cand else None
            assert got == want

    def test_top_in_x_range_respects_buffer(self, rng):
        store = BlockStore(16)
        pts = make_points(rng, 60)
        s = SmallThreeSidedStructure(store, pts)
        s.insert((500.0, 10_000.0))          # buffered, highest overall
        assert s.top_in_x_range(400, 600) == (500.0, 10_000.0)
        top_before = s.top_in_x_range(0, 1000)
        assert s.delete(top_before)
        assert s.top_in_x_range(0, 1000) != top_before

    def test_top_in_x_range_tie_breaking(self):
        store = BlockStore(16)
        pts = [(float(i), 5.0) for i in range(40)]
        s = SmallThreeSidedStructure(store, pts)
        assert s.top_in_x_range(10, 30) == (30.0, 5.0)  # max x among ties

    def test_top_in_x_range_empty(self, rng):
        store = BlockStore(16)
        s = SmallThreeSidedStructure(store, make_points(rng, 30))
        assert s.top_in_x_range(5000, 6000) is None
        empty = SmallThreeSidedStructure(BlockStore(16))
        assert empty.top_in_x_range(0, 1) is None
