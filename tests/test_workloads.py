"""Tests for the workload generators."""

import pytest

from repro.workloads import (
    aspect_sweep_queries,
    clustered_points,
    diagonal_points,
    four_sided_queries,
    grid_points,
    skyline_points,
    stabbing_points,
    thin_slab_queries,
    three_sided_queries,
    uniform_points,
)


class TestGenerators:
    @pytest.mark.parametrize("gen", [
        uniform_points, clustered_points, diagonal_points, skyline_points,
    ])
    def test_count_and_distinctness(self, gen):
        pts = gen(500, seed=1)
        assert len(pts) == 500
        assert len(set(pts)) == 500

    @pytest.mark.parametrize("gen", [
        uniform_points, clustered_points, diagonal_points, skyline_points,
    ])
    def test_deterministic_by_seed(self, gen):
        assert gen(100, seed=3) == gen(100, seed=3)
        assert gen(100, seed=3) != gen(100, seed=4)

    def test_grid_points(self):
        pts = grid_points(10)
        assert len(pts) == 100
        assert len(set(pts)) == 100

    def test_diagonal_points_hug_diagonal(self):
        pts = diagonal_points(300, seed=2, jitter=0.001, extent=1000.0)
        assert sum(abs(x - y) <= 20 for x, y in pts) >= 250

    def test_clustered_points_are_clustered(self):
        pts = clustered_points(500, seed=5, clusters=2, spread=0.001)
        xs = sorted(p[0] for p in pts)
        # two tight clusters: large gap somewhere in the sorted xs
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert max(gaps) > 50 * (sum(gaps) / len(gaps))


class TestQueryGenerators:
    def test_three_sided_selectivity(self):
        pts = uniform_points(2000, seed=1)
        qs = three_sided_queries(pts, 30, seed=2, target_frac=0.02)
        sel = [len(q.filter(pts)) / len(pts) for q in qs]
        assert 0.0 <= sum(sel) / len(sel) <= 0.2

    def test_four_sided_selectivity(self):
        pts = uniform_points(2000, seed=1)
        qs = four_sided_queries(pts, 30, seed=2, target_frac=0.02)
        sel = [len(q.filter(pts)) / len(pts) for q in qs]
        assert 0.0 < sum(sel) / len(sel) < 0.2

    def test_aspect_sweep_areas_comparable(self):
        pts = uniform_points(3000, seed=1)
        qs = aspect_sweep_queries(pts, 10, aspects=(1.0, 16.0), seed=2)
        by_aspect = {}
        for aspect, q in qs:
            by_aspect.setdefault(aspect, []).append(len(q.filter(pts)))
        means = {a: sum(v) / len(v) for a, v in by_aspect.items()}
        # same target area -> comparable output sizes across aspects
        assert means[16.0] <= 6 * means[1.0] + 20
        assert means[1.0] <= 6 * means[16.0] + 20

    def test_thin_slab_is_adversarial(self):
        pts = uniform_points(3000, seed=1)
        qs = thin_slab_queries(pts, 10, seed=2, x_frac=0.5, out_frac=0.002)
        for q in qs:
            in_slab = sum(1 for p in pts if q.a <= p[0] <= q.b)
            output = len(q.filter(pts))
            assert in_slab > 25 * max(1, output)

    def test_stabbing_points_in_span(self):
        ivs = [(0.0, 10.0), (50.0, 60.0)]
        stabs = stabbing_points(ivs, 50, seed=3)
        assert all(0.0 <= s <= 60.0 for s in stabs)
        assert len(stabs) == 50
