"""Tests for the bound formulas and reporting helpers."""


import pytest

from repro.analysis import (
    fit_linear,
    format_table,
    log_b,
    pst_query_bound,
    pst_space_bound,
    pst_update_bound,
    range_tree_space_bound,
    range_tree_update_bound,
)
from repro.analysis.bounds import correlation


class TestBounds:
    def test_log_b(self):
        assert log_b(64 ** 3, 64) == pytest.approx(3.0)
        assert log_b(1, 64) == 1.0
        assert log_b(10, 64) == 1.0  # clamped

    def test_pst_bounds_monotone(self):
        assert pst_query_bound(10 ** 6, 64, 0) < pst_query_bound(10 ** 6, 64, 10 ** 4)
        assert pst_update_bound(10 ** 6, 64) > pst_update_bound(10 ** 3, 64)
        assert pst_space_bound(10 ** 6, 64) == pytest.approx(10 ** 6 / 64)

    def test_range_tree_space_superlinear(self):
        n, B = 2 ** 20, 64
        assert range_tree_space_bound(n, B) > pst_space_bound(n, B)

    def test_range_tree_update_exceeds_pst(self):
        n, B = 2 ** 20, 64
        assert range_tree_update_bound(n, B) >= pst_update_bound(n, B)

    def test_degenerate_sizes(self):
        assert range_tree_space_bound(10, 64) >= 0
        assert range_tree_update_bound(10, 64) > 0


class TestFits:
    def test_fit_linear_recovers_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2 * x + 1 for x in xs]
        a, b = fit_linear(xs, ys)
        assert a == pytest.approx(2.0)
        assert b == pytest.approx(1.0)

    def test_fit_linear_constant(self):
        a, b = fit_linear([1, 1, 1], [5, 5, 5])
        assert a == 0.0 and b == 5.0

    def test_fit_linear_validation(self):
        with pytest.raises(ValueError):
            fit_linear([], [])
        with pytest.raises(ValueError):
            fit_linear([1], [1, 2])

    def test_correlation_perfect(self):
        xs = [1, 2, 3, 4]
        assert correlation(xs, [3 * x - 1 for x in xs]) == pytest.approx(1.0)

    def test_correlation_anti(self):
        xs = [1, 2, 3, 4]
        assert correlation(xs, [-x for x in xs]) == pytest.approx(-1.0)

    def test_correlation_degenerate(self):
        assert correlation([1, 1], [2, 3]) == 0.0


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "val"], [["a", 1.5], ["bbbb", 123456.0]], title="T"
        )
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "name" in lines[1] and "val" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000001], [12345678.0], [3.14159], [0]])
        assert "1e-06" in out
        assert "3.14" in out
