"""Tests for the Theorem 5 layered 4-sided indexing scheme."""

import math

import pytest

from repro.geometry import FourSidedQuery
from repro.core.foursided_scheme import FourSidedLayeredIndex
from tests.conftest import brute_4sided, make_points


class TestConstruction:
    def test_empty(self):
        idx = FourSidedLayeredIndex([], 8)
        assert idx.query(FourSidedQuery(0, 1, 0, 1)) == ([], [])

    def test_tiny_set_single_level(self, rng):
        pts = make_points(rng, 10)
        idx = FourSidedLayeredIndex(pts, 8, rho=4)
        assert idx.num_levels == 1
        idx.check_invariants()

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            FourSidedLayeredIndex([(0, 0)], 8, rho=1)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            FourSidedLayeredIndex([(0, 0), (0, 0)], 8)

    @pytest.mark.parametrize("rho", [2, 4, 8])
    def test_level_count_matches_log_rho(self, rng, rho):
        B = 8
        pts = make_points(rng, 600)
        idx = FourSidedLayeredIndex(pts, B, rho=rho)
        idx.check_invariants()
        leaves = math.ceil(len(pts) / (rho * B))
        expect = 1 + max(0, math.ceil(math.log(leaves, rho))) if leaves > 1 else 1
        assert abs(idx.num_levels - expect) <= 1

    def test_redundancy_shrinks_with_rho(self, rng):
        """Theorem 5: r = O(log n / log rho)."""
        pts = make_points(rng, 800)
        r2 = FourSidedLayeredIndex(pts, 8, rho=2).redundancy
        r8 = FourSidedLayeredIndex(pts, 8, rho=8).redundancy
        assert r8 < r2

    def test_redundancy_within_bound(self, rng):
        pts = make_points(rng, 500)
        idx = FourSidedLayeredIndex(pts, 8, rho=4)
        assert idx.redundancy <= idx.redundancy_bound()


class TestQueries:
    def test_differential_random(self, rng):
        pts = make_points(rng, 400)
        idx = FourSidedLayeredIndex(pts, 8, rho=4)
        for _ in range(150):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 500)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 500)
            got, _ = idx.query(FourSidedQuery(a, b, c, d))
            assert sorted(set(got)) == brute_4sided(pts, a, b, c, d)

    def test_full_domain_query(self, rng):
        pts = make_points(rng, 200)
        idx = FourSidedLayeredIndex(pts, 8, rho=2)
        got, _ = idx.query(FourSidedQuery(-1, 1001, -1, 1001))
        assert sorted(set(got)) == sorted(pts)

    def test_point_query(self, rng):
        pts = make_points(rng, 200)
        idx = FourSidedLayeredIndex(pts, 8, rho=4)
        for p in rng.sample(pts, 15):
            got, _ = idx.query(FourSidedQuery(p[0], p[0], p[1], p[1]))
            assert got == [p]

    def test_empty_region(self, rng):
        pts = make_points(rng, 100, lo=0, hi=100)
        idx = FourSidedLayeredIndex(pts, 8)
        got, used = idx.query(FourSidedQuery(500, 600, 500, 600))
        assert got == []

    @pytest.mark.parametrize("rho", [2, 4])
    def test_access_bound_theorem5(self, rng, rho):
        """Blocks read = O(rho + t): measured against an explicit envelope."""
        B = 16
        alpha = 2
        pts = make_points(rng, 1024)
        idx = FourSidedLayeredIndex(pts, B, rho=rho, alpha=alpha)
        # per 3-sided subquery: alpha^2 t_i + alpha + 2 blocks; there are
        # at most rho subqueries, and sum t_i <= t + rho.
        for _ in range(100):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 500)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 500)
            got, blocks = idx.query(FourSidedQuery(a, b, c, d))
            T = len(set(got))
            envelope = alpha ** 2 * (T / B + rho) + rho * (alpha + 2) + rho
            assert len(blocks) <= envelope, (len(blocks), T)

    def test_aspect_ratio_robustness(self, rng):
        """Thin/wide rectangles still answered exactly (the workload the
        Fibonacci lower bound says is hard)."""
        pts = make_points(rng, 500)
        idx = FourSidedLayeredIndex(pts, 8, rho=4)
        for aspect in (100.0, 0.01):
            w = 500 * math.sqrt(aspect)
            h = 500 / math.sqrt(aspect)
            a, c = 100.0, 100.0
            q = FourSidedQuery(a, min(1000, a + w), c, min(1000, c + h))
            got, _ = idx.query(q)
            assert sorted(set(got)) == sorted(q.filter(pts))


class TestIndexabilityView:
    def test_scheme_covers_points(self, rng):
        pts = make_points(rng, 300)
        idx = FourSidedLayeredIndex(pts, 8, rho=4)
        scheme = idx.as_indexing_scheme()
        covered = set()
        for blk in scheme.blocks:
            covered |= blk
        assert covered == set(pts)

    def test_scheme_block_count_matches(self, rng):
        pts = make_points(rng, 300)
        idx = FourSidedLayeredIndex(pts, 8, rho=4)
        assert idx.as_indexing_scheme().num_blocks == idx.num_blocks
