"""Tests for the access-trace recorder and the self-test harness."""

import pytest

from repro.io import BlockStore
from repro.io.trace import TraceRecorder
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.selftest import run_selftest
from tests.conftest import make_points


class TestTraceRecorder:
    def test_protocol_passthrough(self):
        store = BlockStore(8)
        rec = TraceRecorder(store)
        bid = rec.alloc()
        rec.write(bid, [1, 2])
        assert rec.read(bid).records == [1, 2]
        assert rec.block_size == 8
        assert rec.blocks_in_use == 1
        rec.free(bid)
        assert rec.blocks_in_use == 0

    def test_trace_order(self):
        store = BlockStore(8)
        rec = TraceRecorder(store)
        a = rec.alloc()
        rec.write(a, [1])
        rec.read(a)
        assert rec.trace == [("a", a), ("w", a), ("r", a)]

    def test_summary_counts(self):
        store = BlockStore(8)
        rec = TraceRecorder(store)
        bids = [rec.alloc() for _ in range(3)]
        for b in bids:
            rec.write(b, [b])
        rec.clear()
        rec.read(bids[0])
        rec.read(bids[1])       # sequential (bid + 1)
        rec.read(bids[0])       # repeat, non-sequential
        s = rec.summary()
        assert s.reads == 3
        assert s.distinct_blocks == 2
        assert s.sequential_reads == 1
        assert s.repeat_reads == 1
        assert 0 < s.sequential_fraction < 1
        assert s.reread_fraction == pytest.approx(1 / 3)

    def test_run_lengths(self):
        store = BlockStore(8)
        rec = TraceRecorder(store)
        bids = [rec.alloc() for _ in range(6)]
        for b in bids:
            rec.write(b, [b])
        rec.clear()
        for b in bids[:4]:
            rec.read(b)         # run of 4
        rec.read(bids[0])       # run of 1
        rec.read(bids[5])       # run of 1
        assert rec.read_run_lengths() == [4, 1, 1]

    def test_empty_summary(self):
        rec = TraceRecorder(BlockStore(8))
        s = rec.summary()
        assert s.reads == 0 and s.sequential_fraction == 0.0

    def test_structures_run_over_recorder(self, rng):
        """Any structure runs unchanged over the recorder."""
        store = BlockStore(16)
        rec = TraceRecorder(store)
        pts = make_points(rng, 300)
        pst = ExternalPrioritySearchTree(rec, pts)
        rec.clear()
        got = pst.query(100, 600, 500)
        want = sorted(p for p in pts if 100 <= p[0] <= 600 and p[1] >= 500)
        assert sorted(got) == want
        s = rec.summary()
        assert s.reads > 0
        assert s.distinct_blocks <= s.reads
        assert s.writes == 0   # queries never write


class TestSelftest:
    def test_selftest_passes(self):
        assert run_selftest(n=250, seed=1) == []

    def test_selftest_deterministic(self):
        assert run_selftest(n=150, seed=2) == run_selftest(n=150, seed=2)
