"""RetryPolicy / RetryingStore: backoff, modes, metrics, store recovery."""

import pytest

from repro.io import BlockStore
from repro.obs.metrics import counter
from repro.resilience import (
    FaultSchedule,
    FaultyStore,
    PermanentIOError,
    RetryExhaustedError,
    RetryingStore,
    RetryPolicy,
    TransientIOError,
)


def flaky(n_failures, exc=TransientIOError):
    """A callable that fails ``n_failures`` times, then returns 'ok'."""
    state = {"left": n_failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise exc("injected")
        return "ok"

    return fn


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(0)
        with pytest.raises(ValueError):
            RetryPolicy(mode="explode")

    def test_backoff_sequence_capped_exponential(self):
        p = RetryPolicy(5, base_delay=0.01, max_delay=0.05, multiplier=2.0)
        assert p.delays() == [0.01, 0.02, 0.04, 0.05]

    def test_transient_then_success(self):
        p = RetryPolicy(4, base_delay=0.01, max_delay=1.0)
        assert p.call(flaky(2)) == "ok"
        assert p.attempts == 3
        # two retries happened: backoff 0.01 + 0.02 simulated seconds
        assert p.total_backoff == pytest.approx(0.03)

    def test_exhaustion_raises_chained(self):
        p = RetryPolicy(3)
        with pytest.raises(RetryExhaustedError) as ei:
            p.call(flaky(99))
        assert isinstance(ei.value.__cause__, TransientIOError)
        assert p.attempts == 3

    def test_fail_fast_permanent_raises_immediately(self):
        p = RetryPolicy(5)
        with pytest.raises(PermanentIOError):
            p.call(flaky(99, PermanentIOError))
        assert p.attempts == 1  # no retries on permanent errors

    def test_degrade_returns_fallback_on_permanent(self):
        p = RetryPolicy(5, mode="degrade")
        assert p.call(flaky(99, PermanentIOError), fallback=[]) == []
        assert p.attempts == 1

    def test_degrade_returns_fallback_on_exhaustion(self):
        p = RetryPolicy(2, mode="degrade")
        assert p.call(flaky(99), fallback="partial") == "partial"

    def test_degrade_without_fallback_still_raises(self):
        p = RetryPolicy(2, mode="degrade")
        with pytest.raises(RetryExhaustedError):
            p.call(flaky(99))
        with pytest.raises(PermanentIOError):
            p.call(flaky(99, PermanentIOError))

    def test_custom_sleep_called(self):
        slept = []
        p = RetryPolicy(3, base_delay=0.5, max_delay=9.9, sleep=slept.append)
        assert p.call(flaky(2)) == "ok"
        assert slept == [0.5, 1.0]

    def test_metrics_outcomes(self):
        rec = counter("retries", layer="retry", outcome="recovered")
        gave = counter("retries", layer="retry", outcome="gave_up")
        r0, g0 = rec.value, gave.value
        RetryPolicy(4).call(flaky(1))
        assert rec.value == r0 + 1
        with pytest.raises(RetryExhaustedError):
            RetryPolicy(2).call(flaky(99))
        assert gave.value == g0 + 1


class TestRetryingStore:
    def test_recovers_transient_faults_transparently(self):
        raw = BlockStore(8)
        schedule = FaultSchedule(0, read_error_rate=1.0, max_faults=3)
        store = RetryingStore(FaultyStore(raw, schedule), RetryPolicy(5))
        b = store.alloc()
        store.write(b, [1, 2])
        # all three budgeted transient read faults burn inside one call
        assert list(store.read(b).records) == [1, 2]
        assert len(schedule.events) == 3

    def test_exhaustion_surfaces(self):
        raw = BlockStore(8)
        schedule = FaultSchedule(0, read_error_rate=1.0)  # unbounded
        store = RetryingStore(FaultyStore(raw, schedule), RetryPolicy(3))
        b = store.alloc()
        raw.write(b, [1])
        with pytest.raises(RetryExhaustedError):
            store.read(b)

    def test_permanent_fault_never_degrades_silently(self):
        raw = BlockStore(8)
        schedule = FaultSchedule(
            0, read_error_rate=1.0, transient_fraction=0.0, max_faults=1
        )
        policy = RetryPolicy(3, mode="degrade")  # even in degrade mode
        store = RetryingStore(FaultyStore(raw, schedule), policy)
        b = store.alloc()
        raw.write(b, [1])
        with pytest.raises(PermanentIOError):
            store.read(b)

    def test_protocol_passthrough(self):
        raw = BlockStore(16)
        store = RetryingStore(FaultyStore(raw, FaultSchedule(0)))
        assert store.block_size == 16
        assert store.physical_store is raw
        b = store.alloc()
        store.write(b, ["x"])
        assert store.peek(b) == ["x"]
        assert store.blocks_in_use == 1
        store.free(b)
        assert store.blocks_in_use == 0

    def test_zero_added_physical_io(self):
        plain = BlockStore(16)
        raw = BlockStore(16)
        stack = RetryingStore(FaultyStore(raw, FaultSchedule(0)))
        for store in (plain, stack):
            bids = [store.alloc() for _ in range(10)]
            for i, b in enumerate(bids):
                store.write(b, [i])
            for b in bids:
                store.read(b)
        assert (raw.stats.reads, raw.stats.writes) == (
            plain.stats.reads,
            plain.stats.writes,
        )
