"""Tests for the Lemma 1 structure (Section 3.1)."""

import pytest

from repro.geometry import NEG_INF, ThreeSidedQuery
from repro.io import BlockStore, BufferPool
from repro.io.stats import Meter
from repro.core.small_structure import SmallThreeSidedStructure
from tests.conftest import brute_3sided, make_points


class TestConstruction:
    def test_empty(self, store):
        s = SmallThreeSidedStructure(store)
        assert s.is_empty()
        assert s.query(ThreeSidedQuery(0, 1, 0)) == []
        assert s.top() is None
        s.check_invariants()

    def test_bulk_build(self, store, rng):
        pts = make_points(rng, 16 * 16)
        s = SmallThreeSidedStructure(store, pts)
        assert s.count == len(pts)
        s.check_invariants()

    def test_capacity_enforced(self, store):
        with pytest.raises(ValueError):
            SmallThreeSidedStructure(
                store, [(float(i), 0.0 + i) for i in range(10)], max_points=5
            )

    def test_space_is_O_B_blocks(self, store, rng):
        """B^2 points occupy O(B) blocks (Lemma 1's space bound)."""
        B = store.block_size
        pts = make_points(rng, B * B)
        s = SmallThreeSidedStructure(store, pts)
        # 2n data blocks + catalog + pending, with n = B
        assert s.num_blocks() <= 3 * B + 4

    def test_construction_io_linear_in_B(self, rng):
        """Writing out the structure costs O(B) I/Os, not O(B^3)."""
        B = 16
        store = BlockStore(B)
        pts = make_points(rng, B * B)
        with Meter(store) as m:
            SmallThreeSidedStructure(store, pts)
        assert m.delta.writes <= 3 * B + 4
        assert m.delta.reads == 0


class TestQueries:
    def test_differential(self, store, rng):
        pts = make_points(rng, 200)
        s = SmallThreeSidedStructure(store, pts)
        for _ in range(120):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            got = s.query(ThreeSidedQuery(a, b, c))
            assert sorted(got) == brute_3sided(pts, a, b, c)

    def test_query_io_bound(self, rng):
        """Query cost <= catalog + buffer + (alpha^2 t + alpha + 2) blocks."""
        B = 16
        alpha = 2
        store = BlockStore(B)
        pts = make_points(rng, B * B)
        s = SmallThreeSidedStructure(store, pts, alpha=alpha)
        catalog_blocks = len(s._catalog_bids)
        for _ in range(100):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            with Meter(store) as m:
                got = s.query(ThreeSidedQuery(a, b, c))
            T = len(got)
            limit = catalog_blocks + 1 + (alpha ** 2 * T / B + alpha + 2)
            assert m.delta.reads <= limit, (m.delta.reads, T)

    def test_report_x_range(self, store, rng):
        pts = make_points(rng, 150)
        s = SmallThreeSidedStructure(store, pts)
        got = s.report_x_range(200, 600)
        assert sorted(got) == sorted(p for p in pts if 200 <= p[0] <= 600)

    def test_top_tracks_max(self, store, rng):
        pts = make_points(rng, 100)
        s = SmallThreeSidedStructure(store, pts)
        assert s.top() == max(pts, key=lambda p: (p[1], p[0]))


class TestUpdates:
    def test_insert_visible_immediately(self, store):
        s = SmallThreeSidedStructure(store, [(1.0, 1.0)])
        s.insert((2.0, 5.0))
        assert sorted(s.query(ThreeSidedQuery(0, 10, 0))) == [(1.0, 1.0), (2.0, 5.0)]
        assert s.top() == (2.0, 5.0)

    def test_delete_hides_all_copies(self, store, rng):
        """Deleting must hide every redundant copy at every query level."""
        pts = make_points(rng, 128)
        s = SmallThreeSidedStructure(store, pts)
        victim = max(pts, key=lambda p: p[1])   # most-copied candidate
        assert s.delete(victim)
        for c in [NEG_INF, 0.0, victim[1] - 1, victim[1]]:
            got = s.query(ThreeSidedQuery(victim[0], victim[0], c))
            assert victim not in got

    def test_delete_absent_returns_false(self, store, rng):
        pts = make_points(rng, 50)
        s = SmallThreeSidedStructure(store, pts)
        assert not s.delete((-5.0, -5.0))
        assert s.count == 50

    def test_delete_then_reinsert(self, store, rng):
        pts = make_points(rng, 60)
        s = SmallThreeSidedStructure(store, pts)
        p = pts[0]
        assert s.delete(p)
        s.insert(p)
        assert p in s.query(ThreeSidedQuery(p[0], p[0], p[1]))
        s.check_invariants()

    def test_update_io_constant(self, rng):
        """A single buffered update costs O(1) I/Os (away from rebuilds)."""
        B = 32
        store = BlockStore(B)
        pts = make_points(rng, B * 4)
        s = SmallThreeSidedStructure(store, pts)
        p = (5000.0, 5000.0)
        with Meter(store) as m:
            s.insert(p)
        # read buffer + write buffer only
        assert m.delta.ios <= 4

    def test_amortized_update_io(self, rng):
        """Across many updates the average cost stays O(1)-ish (catalog +
        rebuild amortization)."""
        B = 16
        store = BlockStore(B)
        pts = make_points(rng, B * B // 2)
        s = SmallThreeSidedStructure(store, pts)
        extra = make_points(rng, 300, lo=2000, hi=3000)
        with Meter(store) as m:
            for p in extra:
                s.insert(p)
        per_op = m.delta.ios / len(extra)
        assert per_op <= 3 * B  # rebuild every B ops, each O(B) I/Os

    def test_mixed_update_differential(self, store, rng):
        pts = make_points(rng, 100)
        s = SmallThreeSidedStructure(store, pts)
        live = set(pts)
        for i in range(400):
            r = rng.random()
            if r < 0.4 and live:
                p = rng.choice(sorted(live))
                assert s.delete(p)
                live.discard(p)
            elif r < 0.7:
                p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                if p not in live:
                    s.insert(p)
                    live.add(p)
            else:
                a = rng.uniform(0, 1000)
                b = a + rng.uniform(0, 300)
                c = rng.uniform(0, 1000)
                got = s.query(ThreeSidedQuery(a, b, c))
                assert sorted(got) == brute_3sided(live, a, b, c)
        s.check_invariants()
        assert s.count == len(live)

    def test_rebuild_resets_buffer(self, store, rng):
        pts = make_points(rng, 64)
        s = SmallThreeSidedStructure(store, pts)
        before = s.rebuilds
        for i in range(store.block_size + 1):
            s.insert((2000.0 + i, float(i)))
        assert s.rebuilds > before
        s.check_invariants()

    def test_destroy_frees_blocks(self, rng):
        store = BlockStore(16)
        pts = make_points(rng, 100)
        s = SmallThreeSidedStructure(store, pts)
        s.destroy()
        assert store.blocks_in_use == 0


class TestWithBufferPool:
    def test_pool_reduces_io_not_results(self, rng):
        B = 16
        pts = make_points(rng, B * B // 2)
        raw = BlockStore(B)
        s1 = SmallThreeSidedStructure(raw, pts)
        pooled_store = BlockStore(B)
        pool = BufferPool(pooled_store, capacity=8)
        s2 = SmallThreeSidedStructure(pool, pts)
        qs = [
            ThreeSidedQuery(a, a + 200, c)
            for a, c in [(0, 0), (100, 500), (400, 900), (100, 500)]
        ]
        raw_before = raw.stats.copy()
        pooled_before = pooled_store.stats.copy()
        for q in qs:
            assert sorted(s1.query(q)) == sorted(s2.query(q))
        raw_ios = (raw.stats - raw_before).ios
        pooled_ios = (pooled_store.stats - pooled_before).ios
        assert pooled_ios <= raw_ios
