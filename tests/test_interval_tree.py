"""Tests for interval management via the diagonal-corner reduction."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.substrates.interval_tree import ExternalIntervalTree
from repro.analysis.bounds import log_b


def _intervals(rng, n, span=1000.0):
    out = set()
    while len(out) < n:
        l = rng.uniform(0, span)
        out.add((l, l + rng.expovariate(1 / (span / 20))))
    return list(out)


class TestBasics:
    def test_empty(self, store):
        it = ExternalIntervalTree(store)
        assert it.stab(5.0) == []
        assert it.count == 0

    def test_invalid_interval_rejected(self, store):
        it = ExternalIntervalTree(store)
        with pytest.raises(ValueError):
            it.insert(5, 4)
        with pytest.raises(ValueError):
            ExternalIntervalTree(BlockStore(16), [(3, 1)])

    def test_stab_differential(self, store, rng):
        ivs = _intervals(rng, 600)
        it = ExternalIntervalTree(store, ivs)
        it.check_invariants()
        for _ in range(80):
            q = rng.uniform(0, 1200)
            got = it.stab(q)
            assert sorted(got) == sorted((l, r) for l, r in ivs if l <= q <= r)

    def test_stab_at_endpoints_inclusive(self, store):
        it = ExternalIntervalTree(store, [(1.0, 3.0)])
        assert it.stab(1.0) == [(1.0, 3.0)]
        assert it.stab(3.0) == [(1.0, 3.0)]
        assert it.stab(3.0001) == []

    def test_degenerate_point_interval(self, store):
        it = ExternalIntervalTree(store, [(2.0, 2.0)])
        assert it.stab(2.0) == [(2.0, 2.0)]

    def test_nested_intervals(self, store):
        ivs = [(float(i), float(100 - i)) for i in range(40)]
        it = ExternalIntervalTree(store, ivs)
        assert sorted(it.stab(50.0)) == sorted(ivs)
        assert sorted(it.stab(99.0)) == [(0.0, 100.0), (1.0, 99.0)]
        assert sorted(it.stab(99.5)) == [(0.0, 100.0)]

    def test_containing_range(self, store, rng):
        ivs = _intervals(rng, 200)
        it = ExternalIntervalTree(store, ivs)
        got = it.intervals_containing_range(100.0, 150.0)
        assert sorted(got) == sorted(
            (l, r) for l, r in ivs if l <= 100.0 and r >= 150.0
        )


class TestDynamic:
    def test_insert_delete_cycle(self, store, rng):
        it = ExternalIntervalTree(store)
        live = set()
        for i in range(400):
            r = rng.random()
            if r < 0.4 and live:
                iv = rng.choice(sorted(live))
                assert it.delete(*iv)
                live.discard(iv)
            else:
                l = rng.uniform(0, 1000)
                iv = (l, l + rng.uniform(0, 100))
                if iv not in live:
                    it.insert(*iv)
                    live.add(iv)
        it.check_invariants()
        for _ in range(30):
            q = rng.uniform(0, 1100)
            assert sorted(it.stab(q)) == sorted(
                (l, r) for l, r in live if l <= q <= r
            )

    def test_delete_absent(self, store):
        it = ExternalIntervalTree(store, [(0.0, 1.0)])
        assert not it.delete(5.0, 6.0)

    def test_stab_io_bound(self, rng):
        """Stabbing costs O(log_B N + t) I/Os through the reduction."""
        B = 32
        store = BlockStore(B)
        ivs = _intervals(rng, 2000)
        it = ExternalIntervalTree(store, ivs)
        for _ in range(30):
            q = rng.uniform(0, 1200)
            with Meter(store) as m:
                got = it.stab(q)
            bound = log_b(len(ivs), B) + len(got) / B
            assert m.delta.ios <= 60 * bound, (m.delta.ios, bound)

    def test_space_linear(self, rng):
        B = 16
        store = BlockStore(B)
        ivs = _intervals(rng, 1500)
        it = ExternalIntervalTree(store, ivs)
        assert it.blocks_in_use() <= 20 * len(ivs) / B
