"""Smoke tests: every example script runs end-to-end (shrunken sizes).

The examples are executed via runpy with their module-level size
constants patched down, then their ``main()`` is invoked -- so the exact
code paths users run are exercised, just on smaller inputs.
"""

import runpy
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, **overrides):
    gl = runpy.run_path(str(EXAMPLES / script))
    for name, value in overrides.items():
        assert name in gl, f"{script} lost its {name} constant"
        gl[name] = value
    gl["main"]()


def test_quickstart(capsys):
    _run("quickstart.py", N=2000, B=32)
    out = capsys.readouterr().out
    assert "verified" in out
    assert "3-sided queries" in out


def test_temporal_sessions(capsys):
    _run("temporal_sessions.py", N_SESSIONS=2000, N_CHURN=150, B=32)
    out = capsys.readouterr().out
    assert "Stabbing queries" in out
    assert "verified" in out


def test_spatial_analytics(capsys):
    _run("spatial_analytics.py", N=2000, B=32)
    out = capsys.readouterr().out
    assert "Space" in out
    assert "adversarial" in out


def test_indexability_explorer(capsys):
    _run("indexability_explorer.py", K_FIB=16, B=8)
    out = capsys.readouterr().out
    assert "Proposition 1" in out
    assert "Theorem 5" in out
