"""End-to-end crash-recovery verification of the external PST.

These are the acceptance tests of the resilience layer: an insert
workload of N >= 2000 points at B in {8, 16}, crashed at two dozen
sites (half between storage operations, half at named crash points in
the PST's own update paths), recovered after every crash, and the
recovered state checked with ``check_invariants()`` plus a 3-sided
query diff against an in-memory oracle.
"""

import random

import pytest

from repro.core.scheduling import CreditScheduler
from repro.io import BlockStore, BufferPool, ChecksummedStore
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.resilience import pst_adapter, verify_recovery
from repro.resilience.verifier import StructureAdapter
from repro.serve import SnapshotStore

N_POINTS = 2000


def workload(seed=2026, n=N_POINTS):
    rng = random.Random(seed)
    pts = dict.fromkeys(
        (round(rng.uniform(0, 5000), 3), round(rng.uniform(0, 5000), 3))
        for _ in range(n + 200)
    )
    return list(pts)[:n]


def _pooled_pst_adapter(capacity=8):
    """PST over a full cache stack (2q + readahead + coalescing) over
    whatever store the verifier supplies.  The pool is rebuilt at every
    (re-)attachment -- cache contents are process memory and die with
    the crash -- and ``snapshot`` flushes dirty frames so they land
    inside the journaled transaction before its commit."""

    def wrap(store):
        return BufferPool(
            store, capacity, policy="2q",
            readahead_window=2, coalesce_writes=True,
        )

    def snapshot(s):
        s._store.flush()
        return s.snapshot_meta()

    return StructureAdapter(
        build=lambda store: ExternalPrioritySearchTree(
            wrap(store), allow_spill=True
        ),
        attach=lambda store, meta: ExternalPrioritySearchTree.attach(
            wrap(store), meta
        ),
        snapshot=snapshot,
        insert=lambda s, p: s.insert(*p),
        query=lambda s, a, b, c: s.query(a, b, c),
        check=lambda s: s.check_invariants(),
    )


def _serving_chain_pst_adapter(capacity=8):
    """PST over the replicated serving tier's full per-replica chain --
    ``Checksummed -> Snapshot -> BufferPool`` -- over whatever
    (journaled) store the verifier supplies.  Every wrapper is process
    memory: a crash discards the pool's frames, the snapshot layer's
    open epochs and the CRC side table alike, and re-attachment builds
    a fresh chain whose checksums are re-learned trust-on-first-read.
    ``snapshot`` flushes the pool so dirty frames land inside the
    journaled transaction before its commit, exactly as
    ``Replica.flush`` does before an op is acked."""

    def wrap(store):
        return BufferPool(
            SnapshotStore(ChecksummedStore(store)), capacity,
            policy="2q", readahead_window=2, coalesce_writes=True,
        )

    def snapshot(s):
        s._store.flush()
        return s.snapshot_meta()

    return StructureAdapter(
        build=lambda store: ExternalPrioritySearchTree(
            wrap(store), allow_spill=True
        ),
        attach=lambda store, meta: ExternalPrioritySearchTree.attach(
            wrap(store), meta
        ),
        snapshot=snapshot,
        insert=lambda s, p: s.insert(*p),
        query=lambda s, a, b, c: s.query(a, b, c),
        check=lambda s: s.check_invariants(),
    )


class TestVerifyRecovery:
    @pytest.mark.parametrize("block_size", [8, 16])
    def test_insert_workload_recovers_everywhere(self, block_size):
        pts = workload()
        report = verify_recovery(
            pts, block_size=block_size, seed=11, n_crashes=24, n_queries=6
        )
        assert report.n_points == N_POINTS
        # the run must actually have been stressed, not trivially clean
        assert report.crashes >= 16
        assert report.recoveries == report.crashes - report.recovery_retries
        assert report.checks == report.recoveries + 1  # + the final check
        assert report.queries_diffed > report.checks  # oracle diffs ran
        kinds = {line.split(" kind=")[1].split(" ")[0] for line in report.fault_log}
        # both site families fired: between-op crashes AND named points
        assert kinds == {"crash-op", "crash-point"}

    def test_verifier_is_deterministic(self):
        """Same seed => byte-identical fault log AND identical report."""
        pts = workload(seed=7, n=600)
        a = verify_recovery(pts, block_size=16, seed=3, n_crashes=12)
        b = verify_recovery(pts, block_size=16, seed=3, n_crashes=12)
        assert a.fault_log == b.fault_log
        assert "\n".join(a.fault_log).encode() == "\n".join(b.fault_log).encode()
        assert (a.crashes, a.recoveries, a.commits, a.queries_diffed) == (
            b.crashes,
            b.recoveries,
            b.commits,
            b.queries_diffed,
        )

    def test_different_seed_schedules_different_crashes(self):
        pts = workload(seed=7, n=600)
        a = verify_recovery(pts, block_size=16, seed=3, n_crashes=12)
        b = verify_recovery(pts, block_size=16, seed=4, n_crashes=12)
        assert a.fault_log != b.fault_log

    def test_deferred_scheduler_adapter(self):
        """Recovery also holds under a pacing (credit) scheduler, whose
        Y-sets may legitimately be under-full at commit boundaries."""
        pts = workload(seed=5, n=600)
        adapter = pst_adapter(
            scheduler_factory=CreditScheduler, strict_ysets=False
        )
        report = verify_recovery(
            pts, block_size=16, seed=9, n_crashes=10, adapter=adapter
        )
        assert report.crashes >= 6
        assert report.recoveries >= 6

    def test_pooled_pst_with_coalescing_recovers_everywhere(self):
        """Crash consistency must survive the full cache stack: a 2Q
        pool with readahead and write coalescing between the PST and the
        journal.  The pool is volatile state -- every crash discards it
        -- and the snapshot flushes dirty frames into the transaction,
        so commit durability is unchanged."""
        pts = workload(seed=6, n=600)
        report = verify_recovery(
            pts, block_size=16, seed=13, n_crashes=10,
            adapter=_pooled_pst_adapter(),
        )
        assert report.n_points == 600
        assert report.crashes >= 6
        assert report.recoveries >= 6
        assert report.checks == report.recoveries + 1

    def test_serving_chain_recovers_everywhere(self):
        """Crash consistency must survive the *serving* chain too: the
        checksum layer, the copy-on-write snapshot layer and a 2Q pool
        with readahead and write coalescing stacked between the PST and
        the journal -- the exact per-replica chain the replicated
        engine runs in production."""
        pts = workload(seed=8, n=600)
        report = verify_recovery(
            pts, block_size=16, seed=17, n_crashes=10,
            adapter=_serving_chain_pst_adapter(),
        )
        assert report.n_points == 600
        assert report.crashes >= 6
        assert report.recoveries >= 6
        assert report.checks == report.recoveries + 1

    def test_report_summary_mentions_the_essentials(self):
        pts = workload(seed=7, n=300)
        report = verify_recovery(pts, block_size=16, seed=3, n_crashes=6)
        s = report.summary()
        assert "B=16" in s and "seed=3" in s and "crashes" in s


class TestSpillMode:
    """allow_spill: the PST at B < 4a+2 via node continuation blocks."""

    def test_b8_requires_spill(self):
        with pytest.raises(ValueError):
            ExternalPrioritySearchTree(BlockStore(8))

    def test_b8_spill_full_lifecycle(self):
        store = BlockStore(8)
        pst = ExternalPrioritySearchTree(store, allow_spill=True)
        rng = random.Random(1)
        model = set()
        for _ in range(500):
            p = (round(rng.uniform(0, 100), 2), round(rng.uniform(0, 100), 2))
            if p in model:
                continue
            pst.insert(*p)
            model.add(p)
        pst.check_invariants()
        for p in list(model)[::5]:
            assert pst.delete(*p)
            model.discard(p)
        pst.check_invariants()
        got = sorted(pst.query(20.0, 80.0, 30.0))
        want = sorted(p for p in model if 20 <= p[0] <= 80 and p[1] >= 30)
        assert got == want

    def test_spill_attach_roundtrip(self):
        store = BlockStore(8)
        pst = ExternalPrioritySearchTree(store, allow_spill=True)
        for i in range(300):
            pst.insert(float(i * 17 % 301), float(i * 13 % 97))
        meta = pst.snapshot_meta()
        again = ExternalPrioritySearchTree.attach(store, meta)
        again.check_invariants()
        assert again.count == pst.count
        assert sorted(again.query(0.0, 301.0, 50.0)) == sorted(
            pst.query(0.0, 301.0, 50.0)
        )

    def test_spill_space_accounted(self):
        """blocks_in_use must count continuation blocks (no leaks)."""
        store = BlockStore(8)
        pst = ExternalPrioritySearchTree(store, allow_spill=True)
        for i in range(400):
            pst.insert(float(i * 7 % 401), float(i * 31 % 89))
        pst.check_invariants()
        # every allocated block is owned by the structure
        assert pst.blocks_in_use() == store.blocks_in_use
