"""Hypothesis property tests for the dynamic structures (Sections 3-4).

Stateful-style sequences of operations are generated and checked against
a sorted-list model after every phase.
"""

from hypothesis import given, settings, strategies as st

from repro.io import BlockStore
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.small_structure import SmallThreeSidedStructure
from repro.core.range_tree import ExternalRangeTree
from repro.geometry import ThreeSidedQuery
from repro.substrates.bplus_tree import BPlusTree
from repro.substrates.interval_tree import ExternalIntervalTree

coords = st.integers(min_value=0, max_value=40)
point = st.tuples(coords, coords).map(lambda p: (float(p[0]), float(p[1])))

# an op is ("ins", p) / ("del", p) / ("q", (a, b, c))
ops = st.lists(
    st.one_of(
        st.tuples(st.just("ins"), point),
        st.tuples(st.just("del"), point),
        st.tuples(st.just("q"), st.tuples(coords, coords, coords)),
    ),
    min_size=1,
    max_size=60,
)


def _run_model(structure, insert, delete, query, op_list):
    """Drive a structure and a set model through the same ops."""
    live = set()
    for op, arg in op_list:
        if op == "ins":
            if arg not in live:
                insert(arg)
                live.add(arg)
        elif op == "del":
            present = delete(arg)
            assert present == (arg in live)
            live.discard(arg)
        else:
            a, b, c = arg
            if a > b:
                a, b = b, a
            got = query((float(a), float(b), float(c)))
            want = sorted(
                p for p in live if a <= p[0] <= b and p[1] >= c
            )
            assert sorted(got) == want
    return live


class TestSmallStructureModel:
    @settings(max_examples=80, deadline=None)
    @given(op_list=ops, B=st.integers(4, 16))
    def test_matches_set_model(self, op_list, B):
        store = BlockStore(B)
        s = SmallThreeSidedStructure(store)
        live = _run_model(
            s,
            insert=lambda p: s.insert(p),
            delete=lambda p: s.delete(p),
            query=lambda q: s.query(ThreeSidedQuery(*q)),
            op_list=op_list,
        )
        s.check_invariants()
        assert s.count == len(live)


class TestExternalPSTModel:
    @settings(max_examples=50, deadline=None)
    @given(op_list=ops, B=st.integers(12, 24))  # PST needs B >= 4a+2 = 10
    def test_matches_set_model(self, op_list, B):
        store = BlockStore(B)
        pst = ExternalPrioritySearchTree(store)

        def ins(p):
            pst.insert(*p)

        live = _run_model(
            pst,
            insert=ins,
            delete=lambda p: pst.delete(*p),
            query=lambda q: pst.query(*q),
            op_list=op_list,
        )
        pst.check_invariants()
        assert pst.count == len(live)

    @settings(max_examples=25, deadline=None)
    @given(pts=st.sets(point, min_size=1, max_size=100))
    def test_bulk_equals_incremental(self, pts):
        pts = sorted(pts)
        bulk = ExternalPrioritySearchTree(BlockStore(16), pts)
        inc = ExternalPrioritySearchTree(BlockStore(16))
        for p in pts:
            inc.insert(*p)
        assert sorted(bulk.all_points()) == sorted(inc.all_points())
        lo = min(p[0] for p in pts)
        hi = max(p[0] for p in pts)
        mid_y = sorted(p[1] for p in pts)[len(pts) // 2]
        assert sorted(bulk.query(lo, hi, mid_y)) == sorted(
            inc.query(lo, hi, mid_y)
        )


class TestRangeTreeModel:
    @settings(max_examples=30, deadline=None)
    @given(
        pts=st.sets(point, min_size=1, max_size=80),
        qs=st.lists(st.tuples(coords, coords, coords, coords), max_size=8),
    )
    def test_queries_exact(self, pts, qs):
        rt = ExternalRangeTree(BlockStore(16), sorted(pts))
        for a, b, c, d in qs:
            if a > b:
                a, b = b, a
            if c > d:
                c, d = d, c
            got = rt.query(a, b, c, d)
            want = sorted(
                p for p in pts if a <= p[0] <= b and c <= p[1] <= d
            )
            assert sorted(got) == want


class TestBPlusTreeModel:
    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 30), min_size=1, max_size=120),
        B=st.integers(4, 16),
    )
    def test_multimap_semantics(self, keys, B):
        t = BPlusTree(BlockStore(B))
        model = {}
        for i, k in enumerate(keys):
            t.insert(k, i)
            model.setdefault(k, []).append(i)
        t.check_invariants()
        for k in set(keys):
            assert sorted(t.search(k)) == sorted(model[k])
        got, _ = t.range_scan(5, 20)
        want = sorted(
            (k, v) for k, vs in model.items() if 5 <= k <= 20 for v in vs
        )
        assert sorted(got) == want


class TestIntervalTreeModel:
    @settings(max_examples=50, deadline=None)
    @given(
        ivs=st.sets(
            st.tuples(coords, st.integers(0, 20)).map(
                lambda t: (float(t[0]), float(t[0] + t[1]))
            ),
            min_size=1,
            max_size=60,
        ),
        stabs=st.lists(coords, max_size=6),
    )
    def test_stabbing_exact(self, ivs, stabs):
        it = ExternalIntervalTree(BlockStore(16), sorted(ivs))
        for q in stabs:
            got = it.stab(float(q))
            want = sorted((l, r) for l, r in ivs if l <= q <= r)
            assert sorted(got) == want
