"""Hypothesis stateful (rule-based) machines for the dynamic structures.

These generate arbitrary interleavings of inserts, deletes, queries and
maintenance operations and compare every observable against a model,
catching interaction bugs that fixed scenarios miss.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.io import BlockStore
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.small_structure import SmallThreeSidedStructure
from repro.geometry import INF, NEG_INF, ThreeSidedQuery
from repro.resilience import (
    FaultSchedule,
    FaultyStore,
    JournaledStore,
    RetryPolicy,
    RetryingStore,
    SimulatedCrash,
)
from repro.substrates.av_interval_tree import SlabIntervalTree

coord = st.integers(min_value=0, max_value=25).map(float)
point = st.tuples(coord, coord)


class PSTMachine(RuleBasedStateMachine):
    """External priority search tree vs. a set model."""

    def __init__(self):
        super().__init__()
        self.pst = ExternalPrioritySearchTree(BlockStore(16))
        self.model = set()
        self.ops = 0

    @rule(p=point)
    def insert(self, p):
        if p in self.model:
            return
        self.pst.insert(*p)
        self.model.add(p)
        self.ops += 1

    @rule(p=point)
    def delete(self, p):
        assert self.pst.delete(*p) == (p in self.model)
        self.model.discard(p)
        self.ops += 1

    @rule(a=coord, b=coord, c=coord)
    def query(self, a, b, c):
        if a > b:
            a, b = b, a
        got = sorted(self.pst.query(a, b, c))
        want = sorted(
            p for p in self.model if a <= p[0] <= b and p[1] >= c
        )
        assert got == want

    @rule(b=coord, c=coord)
    def two_sided(self, b, c):
        got = sorted(self.pst.query_two_sided(b, c))
        want = sorted(p for p in self.model if p[0] <= b and p[1] >= c)
        assert got == want

    @rule(a=coord, b=coord, k=st.integers(1, 8))
    def top_k(self, a, b, k):
        if a > b:
            a, b = b, a
        got = self.pst.top_k(a, b, k)
        want = sorted(
            (p for p in self.model if a <= p[0] <= b),
            key=lambda p: (-p[1], p[0]),
        )[:k]
        assert got == want

    @precondition(lambda self: self.ops > 0 and self.ops % 7 == 0)
    @rule()
    def force_rebuild(self):
        self.pst.rebuild()

    @invariant()
    def counts_agree(self):
        assert self.pst.count == len(self.model)


class SmallStructureMachine(RuleBasedStateMachine):
    """Lemma 1 structure vs. a set model."""

    def __init__(self):
        super().__init__()
        self.s = SmallThreeSidedStructure(BlockStore(8))
        self.model = set()

    @rule(p=point)
    def insert(self, p):
        if p in self.model:
            return
        self.s.insert(p)
        self.model.add(p)

    @rule(p=point)
    def delete(self, p):
        assert self.s.delete(p) == (p in self.model)
        self.model.discard(p)

    @rule(a=coord, b=coord, c=coord)
    def query(self, a, b, c):
        if a > b:
            a, b = b, a
        got = sorted(self.s.query(ThreeSidedQuery(a, b, c)))
        want = sorted(
            p for p in self.model if a <= p[0] <= b and p[1] >= c
        )
        assert got == want

    @rule()
    def top(self):
        want = max(self.model, key=lambda p: (p[1], p[0])) if self.model else None
        assert self.s.top() == want

    @invariant()
    def structure_sound(self):
        assert self.s.count == len(self.model)


class SlabIntervalMachine(RuleBasedStateMachine):
    """Slab-based interval tree vs. a set model."""

    def __init__(self):
        super().__init__()
        self.tree = None
        self.model = set()

    @initialize(ivs=st.sets(
        st.tuples(coord, st.integers(0, 15)).map(
            lambda t: (t[0], t[0] + float(t[1]))
        ),
        max_size=30,
    ))
    def build(self, ivs):
        self.model = set(ivs)
        self.tree = SlabIntervalTree(BlockStore(9), sorted(ivs))

    @rule(l=coord, span=st.integers(0, 15))
    def insert(self, l, span):
        iv = (l, l + float(span))
        if iv in self.model:
            return
        self.tree.insert(*iv)
        self.model.add(iv)

    @rule(l=coord, span=st.integers(0, 15))
    def delete(self, l, span):
        iv = (l, l + float(span))
        assert self.tree.delete(*iv) == (iv in self.model)
        self.model.discard(iv)

    @rule(q=st.integers(-2, 45).map(float))
    def stab(self, q):
        got = sorted(self.tree.stab(q))
        want = sorted((l, r) for l, r in self.model if l <= q <= r)
        assert got == want

    @invariant()
    def counts_agree(self):
        if self.tree is not None:
            assert self.tree.count == len(self.model)


class FaultyPSTMachine(RuleBasedStateMachine):
    """PST over ``JournaledStore(RetryingStore(FaultyStore(...)))`` vs a
    set model, with rules that arm crash sites and flip transient-error
    rates *between* the structural operations.

    Every operation runs in a journal transaction.  When an armed site
    fires, the machine plays the death honestly: all live objects are
    discarded, the journal is re-attached and recovered through the
    still-faulty store, the structure is re-attached from the recovered
    meta, and the recovered count (the disk, not the harness) decides
    whether the interrupted commit became durable.  After each recovery
    the full point set is diffed against the model.
    """

    def __init__(self):
        super().__init__()
        self.raw = BlockStore(16)
        self.schedule = FaultSchedule(0)
        self.retrying = RetryingStore(
            FaultyStore(self.raw, self.schedule),
            RetryPolicy(max_attempts=8),
        )
        self.js = JournaledStore(self.retrying)
        self.anchor = self.js.anchor_bids
        self.js.begin()
        self.pst = ExternalPrioritySearchTree(self.js)
        self.js.commit(self.pst.snapshot_meta())
        self.model = set()
        self.crashes = 0

    def _crash_recover(self):
        """Post-mortem protocol: discard the live objects, recover the
        journal (surviving crashes *during* recovery -- sites are
        one-shot), re-attach.  Returns the recovered point count."""
        self.crashes += 1
        while True:
            try:
                js = JournaledStore.attach(self.retrying, self.anchor)
                meta = js.recover()
                self.js = js
                self.pst = ExternalPrioritySearchTree.attach(js, meta)
                return self.pst.count
            except SimulatedCrash:
                continue

    def _oracle_diff(self):
        while True:
            try:
                got = sorted(self.pst.query(NEG_INF, INF, NEG_INF))
                break
            except SimulatedCrash:
                self._crash_recover()
        assert got == sorted(self.model)

    @rule(p=point)
    def insert(self, p):
        if p in self.model:
            return
        try:
            self.js.begin()
            self.pst.insert(*p)
            self.js.commit(self.pst.snapshot_meta())
            self.model.add(p)
        except SimulatedCrash:
            count = self._crash_recover()
            if count == len(self.model) + 1:
                self.model.add(p)   # the interrupted commit was durable
            else:
                assert count == len(self.model)
            self._oracle_diff()

    @rule(p=point)
    def delete(self, p):
        try:
            self.js.begin()
            present = self.pst.delete(*p)
            self.js.commit(self.pst.snapshot_meta())
            assert present == (p in self.model)
            self.model.discard(p)
        except SimulatedCrash:
            count = self._crash_recover()
            if p in self.model and count == len(self.model) - 1:
                self.model.discard(p)
            else:
                assert count == len(self.model)
            self._oracle_diff()

    @rule(a=coord, b=coord, c=coord)
    def query(self, a, b, c):
        if a > b:
            a, b = b, a
        try:
            got = sorted(self.pst.query(a, b, c))
        except SimulatedCrash:
            self._crash_recover()
            self._oracle_diff()
            return
        want = sorted(
            p for p in self.model if a <= p[0] <= b and p[1] >= c
        )
        assert got == want

    @rule(k=st.integers(0, 12))
    def arm_op_crash(self, k):
        """Die ``k`` storage operations from now."""
        self.schedule.crash_at_ops.add(self.schedule.ops_seen + k)

    @rule(k=st.integers(0, 4))
    def arm_point_crash(self, k):
        """Die at the ``k``-th named crash point from now."""
        self.schedule.crash_at_points.add(self.schedule.points_seen + k)

    @rule(rate=st.sampled_from([0.0, 0.0, 0.08]))
    def set_flakiness(self, rate):
        """Flip transient read/write error rates; the retry layer must
        absorb these without any help from the machine."""
        self.schedule.read_error_rate = rate
        self.schedule.write_error_rate = rate

    @invariant()
    def counts_agree(self):
        assert self.pst.count == len(self.model)


TestPSTMachine = PSTMachine.TestCase
TestPSTMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestSmallStructureMachine = SmallStructureMachine.TestCase
TestSmallStructureMachine.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
TestSlabIntervalMachine = SlabIntervalMachine.TestCase
TestSlabIntervalMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestFaultyPSTMachine = FaultyPSTMachine.TestCase
TestFaultyPSTMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
