"""Hypothesis stateful (rule-based) machines for the dynamic structures.

These generate arbitrary interleavings of inserts, deletes, queries and
maintenance operations and compare every observable against a model,
catching interaction bugs that fixed scenarios miss.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.io import BlockStore
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.small_structure import SmallThreeSidedStructure
from repro.geometry import ThreeSidedQuery
from repro.substrates.av_interval_tree import SlabIntervalTree

coord = st.integers(min_value=0, max_value=25).map(float)
point = st.tuples(coord, coord)


class PSTMachine(RuleBasedStateMachine):
    """External priority search tree vs. a set model."""

    def __init__(self):
        super().__init__()
        self.pst = ExternalPrioritySearchTree(BlockStore(16))
        self.model = set()
        self.ops = 0

    @rule(p=point)
    def insert(self, p):
        if p in self.model:
            return
        self.pst.insert(*p)
        self.model.add(p)
        self.ops += 1

    @rule(p=point)
    def delete(self, p):
        assert self.pst.delete(*p) == (p in self.model)
        self.model.discard(p)
        self.ops += 1

    @rule(a=coord, b=coord, c=coord)
    def query(self, a, b, c):
        if a > b:
            a, b = b, a
        got = sorted(self.pst.query(a, b, c))
        want = sorted(
            p for p in self.model if a <= p[0] <= b and p[1] >= c
        )
        assert got == want

    @rule(b=coord, c=coord)
    def two_sided(self, b, c):
        got = sorted(self.pst.query_two_sided(b, c))
        want = sorted(p for p in self.model if p[0] <= b and p[1] >= c)
        assert got == want

    @rule(a=coord, b=coord, k=st.integers(1, 8))
    def top_k(self, a, b, k):
        if a > b:
            a, b = b, a
        got = self.pst.top_k(a, b, k)
        want = sorted(
            (p for p in self.model if a <= p[0] <= b),
            key=lambda p: (-p[1], p[0]),
        )[:k]
        assert got == want

    @precondition(lambda self: self.ops > 0 and self.ops % 7 == 0)
    @rule()
    def force_rebuild(self):
        self.pst.rebuild()

    @invariant()
    def counts_agree(self):
        assert self.pst.count == len(self.model)


class SmallStructureMachine(RuleBasedStateMachine):
    """Lemma 1 structure vs. a set model."""

    def __init__(self):
        super().__init__()
        self.s = SmallThreeSidedStructure(BlockStore(8))
        self.model = set()

    @rule(p=point)
    def insert(self, p):
        if p in self.model:
            return
        self.s.insert(p)
        self.model.add(p)

    @rule(p=point)
    def delete(self, p):
        assert self.s.delete(p) == (p in self.model)
        self.model.discard(p)

    @rule(a=coord, b=coord, c=coord)
    def query(self, a, b, c):
        if a > b:
            a, b = b, a
        got = sorted(self.s.query(ThreeSidedQuery(a, b, c)))
        want = sorted(
            p for p in self.model if a <= p[0] <= b and p[1] >= c
        )
        assert got == want

    @rule()
    def top(self):
        want = max(self.model, key=lambda p: (p[1], p[0])) if self.model else None
        assert self.s.top() == want

    @invariant()
    def structure_sound(self):
        assert self.s.count == len(self.model)


class SlabIntervalMachine(RuleBasedStateMachine):
    """Slab-based interval tree vs. a set model."""

    def __init__(self):
        super().__init__()
        self.tree = None
        self.model = set()

    @initialize(ivs=st.sets(
        st.tuples(coord, st.integers(0, 15)).map(
            lambda t: (t[0], t[0] + float(t[1]))
        ),
        max_size=30,
    ))
    def build(self, ivs):
        self.model = set(ivs)
        self.tree = SlabIntervalTree(BlockStore(9), sorted(ivs))

    @rule(l=coord, span=st.integers(0, 15))
    def insert(self, l, span):
        iv = (l, l + float(span))
        if iv in self.model:
            return
        self.tree.insert(*iv)
        self.model.add(iv)

    @rule(l=coord, span=st.integers(0, 15))
    def delete(self, l, span):
        iv = (l, l + float(span))
        assert self.tree.delete(*iv) == (iv in self.model)
        self.model.discard(iv)

    @rule(q=st.integers(-2, 45).map(float))
    def stab(self, q):
        got = sorted(self.tree.stab(q))
        want = sorted((l, r) for l, r in self.model if l <= q <= r)
        assert got == want

    @invariant()
    def counts_agree(self):
        if self.tree is not None:
            assert self.tree.count == len(self.model)


TestPSTMachine = PSTMachine.TestCase
TestPSTMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestSmallStructureMachine = SmallStructureMachine.TestCase
TestSmallStructureMachine.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
TestSlabIntervalMachine = SlabIntervalMachine.TestCase
TestSlabIntervalMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
