"""Hypothesis property tests for the indexing schemes (Section 2)."""

import math

from hypothesis import given, settings, strategies as st

from repro.geometry import FourSidedQuery, ThreeSidedQuery
from repro.core.threesided_scheme import ThreeSidedSweepIndex
from repro.core.foursided_scheme import FourSidedLayeredIndex
from repro.indexability.scheme import IndexingScheme


coords = st.integers(min_value=0, max_value=60)
point_sets = st.sets(
    st.tuples(coords, coords), min_size=1, max_size=120
).map(lambda s: [(float(x), float(y)) for x, y in s])


@st.composite
def pts_and_3query(draw):
    pts = draw(point_sets)
    a = draw(coords)
    b = a + draw(st.integers(min_value=0, max_value=60))
    c = draw(coords)
    return pts, ThreeSidedQuery(float(a), float(b), float(c))


@st.composite
def pts_and_4query(draw):
    pts = draw(point_sets)
    a = draw(coords)
    b = a + draw(st.integers(min_value=0, max_value=60))
    c = draw(coords)
    d = c + draw(st.integers(min_value=0, max_value=60))
    return pts, FourSidedQuery(float(a), float(b), float(c), float(d))


class TestSweepSchemeProperties:
    @settings(max_examples=120, deadline=None)
    @given(data=pts_and_3query(), alpha=st.integers(2, 5),
           B=st.integers(2, 12))
    def test_query_exact(self, data, alpha, B):
        pts, q = data
        idx = ThreeSidedSweepIndex(pts, B, alpha)
        got, _ = idx.query(q)
        assert sorted(set(got)) == sorted(q.filter(pts))

    @settings(max_examples=80, deadline=None)
    @given(pts=point_sets, alpha=st.integers(2, 5), B=st.integers(2, 12))
    def test_structural_invariants(self, pts, alpha, B):
        idx = ThreeSidedSweepIndex(pts, B, alpha)
        idx.check_invariants()

    @settings(max_examples=80, deadline=None)
    @given(data=pts_and_3query(), alpha=st.integers(2, 4),
           B=st.integers(4, 12))
    def test_access_bound(self, data, alpha, B):
        """Theorem 4: candidates <= alpha^2 t + alpha + 2."""
        pts, q = data
        idx = ThreeSidedSweepIndex(pts, B, alpha)
        got, used = idx.query(q)
        T = len(set(got))
        assert len(used) <= alpha * alpha * (T / B) + alpha + 2

    @settings(max_examples=60, deadline=None)
    @given(pts=point_sets, alpha=st.integers(2, 5), B=st.integers(2, 12))
    def test_redundancy_bound(self, pts, alpha, B):
        """Theorem 4: r <= 1 + 1/(alpha-1) + rounding slack."""
        idx = ThreeSidedSweepIndex(pts, B, alpha)
        n = math.ceil(len(pts) / B)
        max_blocks = n + max(0, n - 1) // (alpha - 1) + 1
        assert idx.num_blocks <= max_blocks

    @settings(max_examples=60, deadline=None)
    @given(pts=point_sets, B=st.integers(2, 10))
    def test_blocks_within_capacity(self, pts, B):
        idx = ThreeSidedSweepIndex(pts, B)
        scheme = idx.as_indexing_scheme()
        assert isinstance(scheme, IndexingScheme)
        for blk in scheme.blocks:
            assert 0 < len(blk) <= B


class TestLayeredSchemeProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=pts_and_4query(), rho=st.integers(2, 5), B=st.integers(4, 10))
    def test_query_exact(self, data, rho, B):
        pts, q = data
        idx = FourSidedLayeredIndex(pts, B, rho=rho)
        got, _ = idx.query(q)
        assert sorted(set(got)) == sorted(q.filter(pts))

    @settings(max_examples=40, deadline=None)
    @given(pts=point_sets, rho=st.integers(2, 4), B=st.integers(4, 10))
    def test_structure(self, pts, rho, B):
        idx = FourSidedLayeredIndex(pts, B, rho=rho)
        idx.check_invariants()
