"""Tests for the observability layer (repro.obs).

Covers the three sub-modules:

- metrics: registry get-or-create semantics, label keying, snapshots
- spans: nesting, merge-by-name, and the exactness invariant (the sum
  of exclusive span counts plus the unattributed remainder equals the
  store's IOStats delta over the attachment window)
- export: versioned JSON round-trip, markdown rendering, and the
  compare() regression verdicts the CI gate relies on
"""

import json

import pytest

from repro.core.external_pst import ExternalPrioritySearchTree
from repro.io import BlockStore, BufferPool
from repro.io.stats import IOStats, Meter
from repro.obs.export import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SchemaError,
    bench_payload,
    compare,
    load_bench_json,
    make_result,
    to_markdown,
    write_bench_json,
)
from repro.obs.metrics import MetricsRegistry, format_key
from repro.obs.spans import SpanRecorder, span
from repro.workloads import three_sided_queries, uniform_points


# ----------------------------------------------------------------------
# store / pool hook points
# ----------------------------------------------------------------------
class TestObserverHooks:
    def test_store_events_fire_in_order(self):
        store = BlockStore(4)
        events = []
        store.add_observer(lambda op, bid: events.append(op))
        bid = store.alloc()
        store.write(bid, [1])
        store.read(bid)
        store.free(bid)
        assert events == ["alloc", "write", "read", "free"]

    def test_events_carry_block_id(self):
        store = BlockStore(4)
        events = []
        store.add_observer(lambda op, bid: events.append((op, bid)))
        bid = store.alloc()
        store.write(bid, [1])
        assert ("write", bid) in events

    def test_remove_observer(self):
        store = BlockStore(4)
        events = []
        cb = lambda op, bid: events.append(op)  # noqa: E731
        store.add_observer(cb)
        bid = store.alloc()
        store.remove_observer(cb)
        store.write(bid, [1])
        assert events == ["alloc"]

    def test_observer_fires_after_stats_increment(self):
        store = BlockStore(4)
        seen = []
        store.add_observer(
            lambda op, bid: seen.append(store.stats.writes)
        )
        bid = store.alloc()
        store.write(bid, [1])
        # by the time the "write" event fires, the counter already moved
        assert seen[-1] == 1

    def test_pool_hit_and_miss_events(self):
        store = BlockStore(4)
        pool = BufferPool(store, capacity=2)
        events = []
        pool.add_observer(lambda op, bid: events.append(op))
        bid = pool.alloc()
        pool.write(bid, [1])
        pool.read(bid)          # cached: logical hit, no physical read
        pool.drop()
        pool.read(bid)          # cold: miss
        assert "hit" in events and "miss" in events

    def test_physical_store_resolves_through_pool(self):
        store = BlockStore(4)
        pool = BufferPool(store, capacity=2)
        assert pool.physical_store is store
        assert store.physical_store is store


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("splits", structure="pst")
        c2 = reg.counter("splits", structure="pst")
        assert c1 is c2
        c1.inc()
        c1.inc(3)
        assert c2.value == 4

    def test_labels_distinguish_metrics(self):
        reg = MetricsRegistry()
        a = reg.counter("splits", structure="pst", op="leaf")
        b = reg.counter("splits", structure="pst", op="internal")
        a.inc()
        assert b.value == 0
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", p="1", q="2")
        b = reg.counter("x", q="2", p="1")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", s="a")
        with pytest.raises(TypeError):
            reg.gauge("x", s="a")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("hit_rate", structure="pool")
        g.set(0.5)
        g.set(0.75)
        assert g.value == 0.75

    def test_snapshot_sorted_and_rendered(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a", s="x").inc()
        snap = reg.snapshot()
        assert snap == {"a{s=x}": 1, "b": 2}
        assert list(snap) == ["a{s=x}", "b"]

    def test_format_key(self):
        reg = MetricsRegistry()
        c = reg.counter("splits", structure="pst", op="leaf")
        assert format_key(c.key) == "splits{op=leaf,structure=pst}"

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert len(reg) == 0


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def _traffic(store, n_blocks=3):
    bids = [store.alloc() for _ in range(n_blocks)]
    for bid in bids:
        store.write(bid, [bid])
    for bid in bids:
        store.read(bid)
    return bids


class TestSpans:
    def test_span_helper_is_null_without_recorder(self):
        store = BlockStore(4)
        with span(store, "anything") as sp:
            assert sp is None

    def test_attribution_and_nesting(self):
        store = BlockStore(4)
        rec = SpanRecorder(store)
        with rec:
            with rec.span("outer"):
                _traffic(store, 2)
                with rec.span("inner"):
                    _traffic(store, 1)
        outer = rec.root.children["outer"]
        inner = outer.children["inner"]
        assert outer.stats.writes == 2 and outer.stats.reads == 2
        assert inner.stats.writes == 1 and inner.stats.reads == 1
        # inclusive totals roll the child up
        assert outer.total.writes == 3

    def test_same_name_spans_merge(self):
        store = BlockStore(4)
        rec = SpanRecorder(store)
        with rec:
            for _ in range(4):
                with rec.span("leaf"):
                    _traffic(store, 1)
        leaf = rec.root.children["leaf"]
        assert leaf.entries == 4
        assert leaf.stats.reads == 4
        assert len(rec.root.children) == 1

    def test_unattributed_remainder(self):
        store = BlockStore(4)
        rec = SpanRecorder(store)
        with rec:
            _traffic(store, 2)          # outside any span
            with rec.span("inside"):
                _traffic(store, 1)
        assert rec.unattributed.reads == 2
        assert rec.root.children["inside"].stats.reads == 1

    def test_exactness_total_equals_meter_delta(self):
        store = BlockStore(4)
        rec = SpanRecorder(store)
        with Meter(store) as m:
            with rec:
                _traffic(store, 2)
                with rec.span("a"):
                    _traffic(store, 3)
                    with rec.span("b"):
                        _traffic(store, 1)
        assert rec.total == m.delta

    def test_detach_stops_observing(self):
        store = BlockStore(4)
        rec = SpanRecorder(store)
        with rec:
            _traffic(store, 1)
        _traffic(store, 5)              # after detach: not observed
        assert rec.total.reads == 1

    def test_double_attach_raises(self):
        store = BlockStore(4)
        rec1 = SpanRecorder(store).attach()
        try:
            with pytest.raises(RuntimeError):
                SpanRecorder(store).attach()
        finally:
            rec1.detach()

    def test_span_helper_through_pool_wrapper(self):
        # the structure holds the raw store while the recorder is
        # attached to the pool (or vice versa): span() must find it
        store = BlockStore(4)
        pool = BufferPool(store, capacity=2)
        rec = SpanRecorder(pool)
        with rec:
            with span(store, "via-raw-store"):
                _traffic(store, 1)
        assert rec.root.children["via-raw-store"].stats.reads == 1

    def test_pool_hits_attributed_per_span(self):
        store = BlockStore(4)
        pool = BufferPool(store, capacity=4)
        bid = pool.alloc()
        pool.write(bid, [1])
        rec = SpanRecorder(pool)
        with rec:
            with rec.span("hot"):
                pool.read(bid)
                pool.read(bid)
        hot = rec.root.children["hot"]
        assert hot.pool_hits == 2
        assert hot.stats.reads == 0     # served from cache: no physical I/O

    def test_as_dict_and_report(self):
        store = BlockStore(4)
        rec = SpanRecorder(store)
        with rec:
            with rec.span("phase"):
                _traffic(store, 1)
        d = rec.as_dict()
        assert d["name"] == "total"
        assert d["children"][0]["name"] == "phase"
        assert d["children"][0]["self"]["reads"] == 1
        report = rec.format_report()
        assert "phase" in report and "reads" in report


class TestInstrumentedPST:
    """The exactness invariant on the real instrumented structure."""

    def _build(self, n=1500):
        store = BlockStore(16)
        pts = uniform_points(n, seed=7)
        pst = ExternalPrioritySearchTree(store, pts)
        return store, pts, pst

    def test_query_phases_sum_exactly_to_store_delta(self):
        store, pts, pst = self._build()
        qs = three_sided_queries(pts, 10, seed=8, target_frac=0.02)
        rec = SpanRecorder(store)
        with Meter(store) as m:
            with rec:
                for q in qs:
                    pst.query(q.a, q.b, q.c)
        # every physical I/O is attributed to a named phase...
        assert rec.total == m.delta
        # ...and nothing leaks outside the instrumented spans
        assert rec.unattributed == IOStats()
        names = set(rec.root.children)
        assert "pst.query.descend" in names
        assert m.delta.reads > 0

    def test_insert_phases_sum_exactly_to_store_delta(self):
        store, pts, pst = self._build()
        fresh = [(x + 2e6, y) for x, y in uniform_points(40, seed=9)]
        rec = SpanRecorder(store)
        with Meter(store) as m:
            with rec:
                for p in fresh:
                    pst.insert(*p)
        assert rec.total == m.delta
        assert rec.unattributed == IOStats()
        assert "pst.insert.descend" in rec.root.children

    def test_uninstrumented_runs_identically(self):
        # instrumentation must not change I/O counts when off
        store1, pts, pst1 = self._build()
        store2 = BlockStore(16)
        pst2 = ExternalPrioritySearchTree(store2, pts)
        qs = three_sided_queries(pts, 5, seed=10, target_frac=0.02)
        rec = SpanRecorder(store1)
        with Meter(store1) as m1, Meter(store2) as m2:
            with rec:
                for q in qs:
                    pst1.query(q.a, q.b, q.c)
            for q in qs:
                pst2.query(q.a, q.b, q.c)
        assert m1.delta == m2.delta


# ----------------------------------------------------------------------
# export: schema, round-trip, compare
# ----------------------------------------------------------------------
def _payload(gate_a=10, gate_b=7.5):
    return bench_payload(
        {
            "E1": make_result(
                "[E1] demo", ["n", "io"], [[1, gate_a]],
                gate={"io_a": gate_a, "io_b": gate_b},
            ),
        },
        tag="test",
    )


class TestExport:
    def test_schema_constants(self):
        p = _payload()
        assert p["schema"] == SCHEMA_NAME == "repro-bench"
        assert p["schema_version"] == SCHEMA_VERSION == 1

    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        write_bench_json(
            {"E1": make_result("[E1] demo", ["n"], [[1]],
                               gate={"io": 3})},
            path, tag="t",
        )
        loaded = load_bench_json(path)
        assert loaded["experiments"]["E1"]["gate"] == {"io": 3}
        assert loaded["tag"] == "t"

    def test_output_is_deterministic(self, tmp_path):
        exps = {"E1": make_result("[E1] demo", ["n"], [[1]], gate={"io": 3})}
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_bench_json(exps, p1, tag="t")
        write_bench_json(exps, p2, tag="t")
        assert p1.read_text() == p2.read_text()
        # no timestamps anywhere
        assert "time" not in p1.read_text()

    def test_non_numeric_gate_rejected(self):
        with pytest.raises(TypeError):
            make_result("t", ["h"], [[1]], gate={"io": "twelve"})

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other", "schema_version": 1}))
        with pytest.raises(SchemaError):
            load_bench_json(path)

    def test_load_rejects_future_version(self, tmp_path):
        p = _payload()
        p["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(p))
        with pytest.raises(SchemaError):
            load_bench_json(path)

    def test_markdown_contains_tables_and_gates(self):
        md = to_markdown(_payload())
        assert "| n | io |" in md
        assert "`io_a` = 10" in md

    def test_perf_exported_rendered_never_gated(self, tmp_path):
        entry = make_result(
            "t", ["h"], [[1]], gate={"io": 3},
            perf={"throughput_ops_s": 412.5},
        )
        assert entry["perf"] == {"throughput_ops_s": 412.5}
        path = tmp_path / "BENCH_p.json"
        write_bench_json({"S1": entry}, path, tag="p")
        loaded = load_bench_json(path)  # schema accepts the perf section
        md = to_markdown(loaded)
        assert "wall-clock (not gated)" in md
        assert "`throughput_ops_s` | 412.5" in md
        # the regression gate never sees perf values
        old = bench_payload({"S1": entry}, tag="a")
        new = bench_payload(
            {"S1": make_result("t", ["h"], [[1]], gate={"io": 3},
                               perf={"throughput_ops_s": 9.0})},
            tag="b",
        )
        assert compare(old, new, tolerance_pct=0.0).ok(strict=True)

    def test_non_numeric_perf_rejected(self):
        with pytest.raises(TypeError):
            make_result("t", ["h"], [[1]], perf={"p50": "fast"})


class TestCompare:
    def test_identical_passes(self):
        old = _payload()
        res = compare(old, _payload(), tolerance_pct=0.0)
        assert res.ok()
        assert "PASS" in res.summary()

    def test_regression_fails(self):
        res = compare(_payload(gate_a=10), _payload(gate_a=11),
                      tolerance_pct=5.0)
        assert not res.ok()
        assert res.regressions and res.regressions[0].key == "io_a"
        assert "FAIL" in res.summary()

    def test_regression_within_tolerance_passes(self):
        res = compare(_payload(gate_a=100), _payload(gate_a=101),
                      tolerance_pct=2.0)
        assert res.ok()

    def test_improvement_passes_unless_strict(self):
        res = compare(_payload(gate_a=10), _payload(gate_a=5),
                      tolerance_pct=0.0)
        assert res.ok()
        assert res.improvements
        assert not res.ok(strict=True)

    def test_missing_experiment_fails(self):
        old = _payload()
        new = bench_payload({}, tag="test")
        res = compare(old, new, tolerance_pct=100.0)
        assert not res.ok()
        assert res.missing_experiments == ["E1"]

    def test_missing_gate_key_fails(self):
        old = _payload()
        new = bench_payload(
            {"E1": make_result("[E1] demo", ["n"], [[1]],
                               gate={"io_a": 10})},
            tag="test",
        )
        res = compare(old, new, tolerance_pct=100.0)
        assert not res.ok()
        assert "E1.io_b" in res.missing_gates

    def test_added_experiment_is_not_a_failure(self):
        old = bench_payload({}, tag="test")
        res = compare(old, _payload(), tolerance_pct=0.0)
        assert res.ok()
        assert res.added_experiments == ["E1"]

    def test_zero_baseline_any_growth_regresses(self):
        res = compare(_payload(gate_a=0), _payload(gate_a=1),
                      tolerance_pct=50.0)
        assert not res.ok()
