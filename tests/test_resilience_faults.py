"""FaultSchedule / FaultyStore: determinism, fault kinds, zero-I/O.

The fault layer's contract is that it is a *pure function* of
``(seed, configuration, operation sequence)``: the golden-replay test
pins the exact fault log bytes of a fixed drive, and the determinism
test asserts byte-identity across two independent runs.
"""

import pytest

from repro.io import BlockStore
from repro.obs.metrics import counter
from repro.resilience import (
    FaultSchedule,
    FaultyStore,
    PermanentIOError,
    SimulatedCrash,
    TransientIOError,
)
from repro.resilience.errors import FaultInjectionError


def drive(schedule, n=60):
    """A fixed op sequence; injected faults are swallowed so the
    sequence of *attempted* operations is identical across runs."""
    store = FaultyStore(BlockStore(8), schedule)
    bids = []
    for i in range(n):
        try:
            b = store.alloc()
            store.write(b, [("r", i), ("r", i + 1)])
            bids.append(b)
            if bids and i % 3 == 0:
                store.read(bids[i % len(bids)])
            if i % 5 == 4:
                store.crash_hook("drv.step")
        except (FaultInjectionError, SimulatedCrash):
            pass
    return store


def mixed_schedule(seed=42):
    return FaultSchedule(
        seed,
        read_error_rate=0.2,
        write_error_rate=0.15,
        torn_write_rate=0.1,
        crash_rate=0.02,
        transient_fraction=0.5,
        crash_at_points=(2, 7),
    )


GOLDEN_LOG = """\
00000 kind=write-transient at=4:write bid=1 detail=
00001 kind=crash-op at=9:read bid=0 detail=rate
00002 kind=torn-stale at=13:write bid=5 detail=
00003 kind=write-transient at=20:write bid=8 detail=
00004 kind=write-transient at=22:write bid=9 detail=
00005 kind=read-transient at=43:read bid=4 detail=
00006 kind=write-transient at=45:write bid=19 detail=
00007 kind=crash-op at=48:alloc bid=- detail=rate
00008 kind=crash-point at=2:point bid=- detail=drv.step
00009 kind=crash-op at=61:write bid=26 detail=rate
00010 kind=crash-op at=63:write bid=27 detail=rate
00011 kind=write-transient at=67:write bid=29 detail=
00012 kind=write-transient at=69:write bid=30 detail=
00013 kind=write-transient at=76:write bid=33 detail=
00014 kind=read-transient at=81:read bid=14 detail=
00015 kind=torn-stale at=90:write bid=39 detail=
00016 kind=torn-truncated at=97:write bid=42 detail=u=0.836028
00017 kind=write-transient at=101:write bid=44 detail=
00018 kind=write-transient at=112:write bid=49 detail=
00019 kind=write-permanent at=114:write bid=50 detail=
00020 kind=crash-point at=7:point bid=- detail=drv.step
00021 kind=crash-op at=131:alloc bid=- detail=rate
"""


class TestDeterminism:
    def test_same_seed_byte_identical_log(self):
        a, b = mixed_schedule(), mixed_schedule()
        drive(a)
        drive(b)
        assert a.log_bytes() == b.log_bytes()
        assert a.log_bytes()  # the mixed schedule does inject faults

    def test_different_seed_different_log(self):
        a, b = mixed_schedule(42), mixed_schedule(43)
        drive(a)
        drive(b)
        assert a.log_bytes() != b.log_bytes()

    def test_golden_replay(self):
        """Fixed seed => this exact fault log, byte for byte, forever."""
        s = mixed_schedule()
        drive(s)
        assert s.log_text() == GOLDEN_LOG
        assert s.ops_seen == 132
        assert s.points_seen == 8

    def test_event_render_roundtrip_stable(self):
        s = mixed_schedule()
        drive(s)
        assert s.log_lines() == [e.render() for e in s.events]
        assert s.log_text().encode("utf-8") == s.log_bytes()


class TestScheduleValidation:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule(0, read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(0, transient_fraction=-0.1)

    def test_empty_schedule_never_faults(self):
        s = FaultSchedule(0)
        drive(s)
        assert s.events == []


class TestFaultKinds:
    def test_transient_read_then_success(self):
        s = FaultSchedule(0, read_error_rate=1.0, max_faults=1)
        store = FaultyStore(BlockStore(8), s)
        b = store.alloc()
        store.write(b, [1, 2])
        with pytest.raises(TransientIOError):
            store.read(b)
        assert list(store.read(b).records) == [1, 2]  # retry succeeds

    def test_permanent_read_latches(self):
        s = FaultSchedule(
            0, read_error_rate=1.0, transient_fraction=0.0, max_faults=1
        )
        store = FaultyStore(BlockStore(8), s)
        b = store.alloc()
        store.write(b, [1])
        with pytest.raises(PermanentIOError):
            store.read(b)
        # latched: fails forever, even though the fault budget is spent
        with pytest.raises(PermanentIOError):
            store.read(b)
        assert store.peek(b) == [1]  # the data itself is intact

    def test_write_error_leaves_block_untouched(self):
        raw = BlockStore(8)
        s = FaultSchedule(0, write_error_rate=1.0, max_faults=1)
        store = FaultyStore(raw, s)
        b = store.alloc()
        raw.write(b, [1])  # seed the block below the fault layer
        with pytest.raises(TransientIOError):
            store.write(b, [2])
        assert store.peek(b) == [1]
        store.write(b, [2])  # budget spent: goes through
        assert store.peek(b) == [2]

    def test_torn_stale_write(self):
        raw = BlockStore(8)
        s = FaultSchedule(1, torn_write_rate=1.0, max_faults=1)
        store = FaultyStore(raw, s)
        b = store.alloc()
        raw.write(b, ["old"])  # seed the block below the fault layer
        # find the torn variant this seed draws; both crash the process
        with pytest.raises(SimulatedCrash):
            store.write(b, ["new1", "new2", "new3", "new4"])
        after = raw.peek(b)
        kind = s.events[-1].kind
        if kind == "torn-stale":
            assert after == ["old"]
        else:
            assert kind == "torn-truncated"
            assert after == ["new1", "new2", "new3", "new4"][: len(after)]
            assert len(after) < 4

    def test_torn_truncated_prefix(self):
        # scan seeds until the first torn write draws the truncated branch
        for seed in range(50):
            s = FaultSchedule(seed, torn_write_rate=1.0, max_faults=1)
            raw = BlockStore(8)
            store = FaultyStore(raw, s)
            b = store.alloc()
            raw.write(b, ["old"])
            with pytest.raises(SimulatedCrash):
                store.write(b, ["a", "b", "c", "d", "e", "f"])
            if s.events[-1].kind == "torn-truncated":
                after = store.peek(b)
                assert after == ["a", "b", "c", "d", "e", "f"][: len(after)]
                return
        pytest.fail("no seed in range drew the truncated branch")

    def test_crash_site_fires_once(self):
        s = FaultSchedule(0, crash_at_ops=(1,))
        store = FaultyStore(BlockStore(8), s)
        b = store.alloc()             # op 0
        with pytest.raises(SimulatedCrash):
            store.write(b, [1])       # op 1: dies before the write
        assert store.peek(b) == []    # nothing reached the disk
        store.write(b, [1])           # site consumed: succeeds
        assert store.peek(b) == [1]

    def test_crash_point_site_fires_once(self):
        s = FaultSchedule(0, crash_at_points=(1,))
        store = FaultyStore(BlockStore(8), s)
        store.crash_hook("a")         # point 0: survives
        with pytest.raises(SimulatedCrash) as ei:
            store.crash_hook("b")     # point 1: dies
        assert ei.value.site == ("point", 1, "b")
        store.crash_hook("c")         # consumed


class TestZeroOverhead:
    def test_no_faults_means_zero_added_physical_io(self):
        """The wrapper stack adds no physical I/O when nothing faults."""
        plain = BlockStore(16)
        raw = BlockStore(16)
        faulty = FaultyStore(raw, FaultSchedule(0))

        def workload(store):
            bids = [store.alloc() for _ in range(20)]
            for i, b in enumerate(bids):
                store.write(b, [i])
            for b in bids:
                store.read(b)
            for b in bids[::2]:
                store.free(b)

        workload(plain)
        workload(faulty)
        assert raw.stats.reads == plain.stats.reads
        assert raw.stats.writes == plain.stats.writes
        assert raw.stats.allocs == plain.stats.allocs
        assert raw.stats.frees == plain.stats.frees

    def test_fault_metrics_counted(self):
        before = counter("faults", layer="io", kind="read-transient").value
        s = FaultSchedule(0, read_error_rate=1.0, max_faults=2)
        store = FaultyStore(BlockStore(8), s)
        b = store.alloc()
        store.write(b, [1])
        for _ in range(2):
            with pytest.raises(TransientIOError):
                store.read(b)
        after = counter("faults", layer="io", kind="read-transient").value
        assert after == before + 2
