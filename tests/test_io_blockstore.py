"""Unit tests for the simulated disk (repro.io.blockstore)."""

import pytest

from repro.io import Block, BlockCapacityError, BlockStore, StorageError
from repro.io.blockstore import blocks_needed


class TestAllocFree:
    def test_alloc_returns_distinct_ids(self):
        store = BlockStore(8)
        bids = [store.alloc() for _ in range(10)]
        assert len(set(bids)) == 10

    def test_alloc_counts_space_not_io(self):
        store = BlockStore(8)
        store.alloc()
        assert store.stats.allocs == 1
        assert store.stats.ios == 0

    def test_free_releases_space(self):
        store = BlockStore(8)
        bid = store.alloc()
        assert store.blocks_in_use == 1
        store.free(bid)
        assert store.blocks_in_use == 0

    def test_double_free_raises(self):
        store = BlockStore(8)
        bid = store.alloc()
        store.free(bid)
        with pytest.raises(StorageError):
            store.free(bid)

    def test_freed_id_not_reused_implicitly(self):
        store = BlockStore(8)
        a = store.alloc()
        store.free(a)
        b = store.alloc()
        assert b != a


class TestReadWrite:
    def test_write_then_read_round_trips(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [(1, 2), (3, 4)])
        assert store.read(bid).records == [(1, 2), (3, 4)]

    def test_each_read_and_write_costs_one_io(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [1])
        store.read(bid)
        store.read(bid)
        assert store.stats.writes == 1
        assert store.stats.reads == 2
        assert store.stats.ios == 3

    def test_overfull_write_rejected(self):
        store = BlockStore(4)
        bid = store.alloc()
        with pytest.raises(BlockCapacityError):
            store.write(bid, list(range(5)))

    def test_exactly_full_write_allowed(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, list(range(4)))
        assert len(store.read(bid)) == 4

    def test_read_unallocated_raises(self):
        store = BlockStore(4)
        with pytest.raises(StorageError):
            store.read(99)

    def test_write_unallocated_raises(self):
        store = BlockStore(4)
        with pytest.raises(StorageError):
            store.write(99, [1])

    def test_copy_on_io_isolates_mutation(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [1, 2])
        block = store.read(bid)
        block.records.append(3)
        assert store.read(bid).records == [1, 2]

    def test_write_source_mutation_harmless(self):
        store = BlockStore(4)
        bid = store.alloc()
        data = [1, 2]
        store.write(bid, data)
        data.append(3)
        assert store.read(bid).records == [1, 2]

    def test_peek_costs_nothing(self):
        store = BlockStore(4)
        bid = store.alloc()
        store.write(bid, [7])
        before = store.stats.copy()
        assert store.peek(bid) == [7]
        assert store.stats.ios == before.ios


class TestAccounting:
    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            BlockStore(1)

    def test_occupancy(self):
        store = BlockStore(4)
        a, b = store.alloc(), store.alloc()
        store.write(a, [1, 2, 3, 4])
        store.write(b, [1, 2])
        assert store.occupancy() == pytest.approx(0.75)

    def test_occupancy_empty_store(self):
        assert BlockStore(4).occupancy() == 0.0

    def test_blocks_needed(self):
        assert blocks_needed(0, 8) == 0
        assert blocks_needed(1, 8) == 1
        assert blocks_needed(8, 8) == 1
        assert blocks_needed(9, 8) == 2

    def test_blocks_needed_negative_raises(self):
        with pytest.raises(ValueError):
            blocks_needed(-1, 8)

    def test_block_repr_and_iter(self):
        block = Block(3, [1, 2])
        assert list(block) == [1, 2]
        assert "3" in repr(block)


class TestObservers:
    def test_observer_sees_all_operation_kinds(self):
        store = BlockStore(4)
        events = []
        store.add_observer(lambda op, bid: events.append(op))
        bid = store.alloc()
        store.write(bid, [1])
        store.read(bid)
        store.free(bid)
        assert events == ["alloc", "write", "read", "free"]

    def test_observer_detached_mid_run_stops_firing(self):
        store = BlockStore(4)
        events = []

        def cb(op, bid):
            events.append((op, bid))

        store.add_observer(cb)
        bid = store.alloc()
        store.write(bid, [1])
        assert len(events) == 2
        store.remove_observer(cb)
        store.read(bid)
        store.free(bid)
        assert len(events) == 2          # nothing after detach
        store.remove_observer(cb)        # double-remove is a no-op
