"""Tests for the Fibonacci lattice/workload and Proposition 1."""

import math

import pytest

from repro.geometry import Rect
from repro.indexability import (
    fibonacci,
    fibonacci_lattice,
    fibonacci_workload,
    rectangle_point_count,
    tiling_queries,
)
from repro.indexability.fibonacci import C1, C2, fibonacci_index_at_least


class TestFibonacci:
    def test_sequence(self):
        assert [fibonacci(k) for k in range(1, 10)] == [1, 1, 2, 3, 5, 8, 13, 21, 34]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fibonacci(0)

    def test_index_at_least(self):
        assert fibonacci(fibonacci_index_at_least(100)) >= 100
        assert fibonacci(fibonacci_index_at_least(100) - 1) < 100


class TestLattice:
    def test_size_and_distinctness(self):
        pts = fibonacci_lattice(14)  # N = 377
        assert len(pts) == 377
        assert len(set(pts)) == 377

    def test_coordinates_in_range(self):
        pts = fibonacci_lattice(12)
        N = len(pts)
        for x, y in pts:
            assert 0 <= x < N and 0 <= y < N

    def test_one_point_per_column(self):
        pts = fibonacci_lattice(12)
        assert len({p[0] for p in pts}) == len(pts)

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            fibonacci_lattice(2)

    def test_proposition_1_envelope(self):
        """Any rectangle of area l*N holds between ~l/c1 and ~l/c2 points."""
        k = 16  # N = 987
        pts = fibonacci_lattice(k)
        N = len(pts)
        ell = 8.0
        area = ell * N
        for w_exp in range(3, 10):
            w = 2.0 ** w_exp
            h = area / w
            if w > N or h > N:
                continue
            # sample a few placements
            for ox, oy in [(0, 0), (N / 3, N / 7), (N / 2, N / 5)]:
                if ox + w > N or oy + h > N:
                    continue
                cnt = rectangle_point_count(
                    pts, Rect(ox, ox + w, oy, oy + h)
                )
                assert cnt >= math.floor(ell / C1) - 1, (w, h, cnt)
                assert cnt <= math.ceil(ell / C2) + 1, (w, h, cnt)


class TestTilings:
    def test_tiles_partition_domain(self):
        tiles = tiling_queries(100, 10, 25)
        # 10 columns x 4 rows
        assert len(tiles) == 40

    def test_tiles_disjoint_on_lattice(self):
        pts = fibonacci_lattice(13)
        N = len(pts)
        tiles = tiling_queries(N, 17, 20)
        seen = set()
        for t in tiles:
            for p in t.filter(pts):
                assert p not in seen
                seen.add(p)
        assert len(seen) == N  # and they cover everything

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            tiling_queries(10, 0, 5)


class TestFibonacciWorkload:
    def test_workload_has_multiple_aspects(self):
        w = fibonacci_workload(13, block_size=8, aspect_levels=3)
        assert w.num_instances == fibonacci(13)
        assert w.num_queries > 0

    def test_query_sizes_near_B(self):
        B = 8
        w = fibonacci_workload(14, block_size=B, aspect_levels=2)
        sizes = [s for s in w.query_sizes() if s > 0]
        # tiles have area B*N so they hold Theta(B) points
        assert min(sizes) >= 1
        assert max(sizes) <= math.ceil(B / C2) + 2
