"""Tests for the PST convenience queries and bulk operations."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.core.external_pst import ExternalPrioritySearchTree
from tests.conftest import make_points


def _mk(rng, n, B=16):
    store = BlockStore(B)
    pts = make_points(rng, n)
    return store, pts, ExternalPrioritySearchTree(store, pts)


class TestSpecialQueries:
    def test_two_sided(self, rng):
        store, pts, pst = _mk(rng, 400)
        for _ in range(30):
            b = rng.uniform(0, 1000)
            c = rng.uniform(0, 1000)
            got = pst.query_two_sided(b, c)
            assert sorted(got) == sorted(
                p for p in pts if p[0] <= b and p[1] >= c
            )

    def test_diagonal_corner(self, rng):
        store, pts, pst = _mk(rng, 400)
        for _ in range(30):
            q = rng.uniform(0, 1000)
            got = pst.query_diagonal_corner(q)
            assert sorted(got) == sorted(
                p for p in pts if p[0] <= q <= p[1]
            )


class TestTopK:
    def test_top_k_exact(self, rng):
        store, pts, pst = _mk(rng, 600)
        for _ in range(25):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 500)
            k = rng.randrange(1, 40)
            got = pst.top_k(a, b, k)
            want = sorted(
                (p for p in pts if a <= p[0] <= b),
                key=lambda p: (-p[1], p[0]),
            )[:k]
            assert got == want

    def test_top_k_more_than_available(self, rng):
        store, pts, pst = _mk(rng, 100)
        got = pst.top_k(-1, 1001, 10 ** 6)
        assert len(got) == 100
        ys = [p[1] for p in got]
        assert ys == sorted(ys, reverse=True)

    def test_top_k_empty_strip(self, rng):
        store, pts, pst = _mk(rng, 100)
        assert pst.top_k(5000, 6000, 5) == []

    def test_top_k_zero_and_empty_tree(self, rng):
        store, pts, pst = _mk(rng, 50)
        assert pst.top_k(0, 1000, 0) == []
        empty = ExternalPrioritySearchTree(BlockStore(16))
        assert empty.top_k(0, 1, 3) == []

    def test_top_k_with_tied_y(self):
        store = BlockStore(16)
        pts = [(float(i), float(i % 3)) for i in range(90)]
        pst = ExternalPrioritySearchTree(store, pts)
        got = pst.top_k(10, 40, 8)
        want = sorted(
            (p for p in pts if 10 <= p[0] <= 40),
            key=lambda p: (-p[1], p[0]),
        )[:8]
        assert got == want

    def test_top_k_tiny_y_scale(self, rng):
        """Scale-free descent: y values clustered within 1e-9."""
        store = BlockStore(16)
        pts = [(float(i), 1e-9 * (i % 13)) for i in range(150)]
        pst = ExternalPrioritySearchTree(store, pts)
        got = pst.top_k(20, 120, 6)
        want = sorted(
            (p for p in pts if 20 <= p[0] <= 120),
            key=lambda p: (-p[1], p[0]),
        )[:6]
        assert got == want

    def test_top_k_io_modest_for_small_k(self, rng):
        B = 32
        store = BlockStore(B)
        pts = make_points(rng, 4000)
        pst = ExternalPrioritySearchTree(store, pts)
        with Meter(store) as m:
            pst.top_k(200, 800, 5)
        # a handful of logarithmic rounds, far below a strip scan
        assert m.delta.ios < 400


class TestStripTop:
    def test_strip_top_matches_brute(self, rng):
        store, pts, pst = _mk(rng, 500)
        for _ in range(40):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            got = pst._strip_top(a, b)
            cand = [p for p in pts if a <= p[0] <= b]
            want = max(cand, key=lambda p: (p[1], -p[0])) if cand else None
            if want is None:
                assert got is None
            else:
                assert got is not None and got[1] == want[1]

    def test_strip_top_after_updates(self, rng):
        store, pts, pst = _mk(rng, 300)
        live = set(pts)
        for p in sorted(pts, key=lambda p: -p[1])[:60]:
            pst.delete(*p)
            live.discard(p)
        got = pst._strip_top(-1, 1001)
        want = max(live, key=lambda p: (p[1], -p[0]))
        assert got is not None and got[1] == want[1]


class TestInsertMany:
    def test_bulk_on_empty(self, rng):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        pts = make_points(rng, 300)
        pst.insert_many(pts)
        pst.check_invariants()
        assert sorted(pst.all_points()) == sorted(pts)

    def test_incremental_on_nonempty(self, rng):
        store, pts, pst = _mk(rng, 100)
        extra = [(x + 2000, y) for x, y in make_points(rng, 50)]
        pst.insert_many(extra)
        pst.check_invariants()
        assert pst.count == 150

    def test_bulk_duplicate_rejection(self, rng):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        with pytest.raises(ValueError):
            pst.insert_many([(1, 1), (1, 1)])


class TestStorePersistence:
    def test_save_load_round_trip(self, rng, tmp_path):
        store, pts, pst = _mk(rng, 200)
        path = str(tmp_path / "disk.img")
        store.save(path)
        clone = BlockStore.load(path)
        assert clone.block_size == store.block_size
        assert clone.blocks_in_use == store.blocks_in_use
        assert clone.stats.ios == store.stats.ios
        # the raw blocks are identical
        for bid in store.block_ids():
            assert clone.peek(bid) == store.peek(bid)

    def test_loaded_store_keeps_allocating(self, rng, tmp_path):
        store = BlockStore(8)
        a = store.alloc()
        store.write(a, [1, 2])
        path = str(tmp_path / "disk.img")
        store.save(path)
        clone = BlockStore.load(path)
        b = clone.alloc()
        assert b != a
        clone.write(b, [3])
        assert clone.read(b).records == [3]
