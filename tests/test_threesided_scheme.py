"""Tests for the Theorem 4 sweep-line indexing scheme."""


import pytest

from repro.geometry import NEG_INF, Orientation, ThreeSidedQuery
from repro.core.threesided_scheme import (
    CatalogEntry,
    ThreeSidedSweepIndex,
    block_live_at,
)
from tests.conftest import brute_3sided, make_points


class TestConstruction:
    def test_empty_input(self):
        idx = ThreeSidedSweepIndex([], 8)
        assert idx.num_blocks == 0
        assert idx.query(ThreeSidedQuery(0, 1, 0)) == ([], [])

    def test_single_point(self):
        idx = ThreeSidedSweepIndex([(1.0, 2.0)], 8)
        idx.check_invariants()
        got, used = idx.query(ThreeSidedQuery(0, 2, 0))
        assert got == [(1.0, 2.0)]

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            ThreeSidedSweepIndex([(1, 1), (1, 1)], 8)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ThreeSidedSweepIndex([(0, 0)], 1)
        with pytest.raises(ValueError):
            ThreeSidedSweepIndex([(0, 0)], 8, alpha=1)

    def test_every_point_covered(self, rng):
        pts = make_points(rng, 200)
        idx = ThreeSidedSweepIndex(pts, 8)
        scheme = idx.as_indexing_scheme()
        covered = set()
        for b in scheme.blocks:
            covered |= b
        assert covered == set(pts)

    @pytest.mark.parametrize("alpha", [2, 3, 4, 8])
    def test_redundancy_bound_theorem4(self, rng, alpha):
        pts = make_points(rng, 400)
        idx = ThreeSidedSweepIndex(pts, 16, alpha=alpha)
        idx.check_invariants()
        # r <= 1 + 1/(alpha-1) plus rounding slack for partial blocks
        slack = 16 / len(pts) * 2 + 0.05
        assert idx.redundancy <= idx.redundancy_bound() + slack

    def test_alpha_tradeoff_direction(self, rng):
        """Larger alpha -> fewer coalesced blocks -> lower redundancy."""
        pts = make_points(rng, 600)
        r2 = ThreeSidedSweepIndex(pts, 8, alpha=2).redundancy
        r8 = ThreeSidedSweepIndex(pts, 8, alpha=8).redundancy
        assert r8 <= r2


class TestQueries:
    def test_differential_random(self, rng):
        pts = make_points(rng, 300)
        idx = ThreeSidedSweepIndex(pts, 8)
        for _ in range(150):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            got, _ = idx.query(ThreeSidedQuery(a, b, c))
            assert sorted(set(got)) == brute_3sided(pts, a, b, c)

    def test_query_below_everything_returns_all(self, rng):
        pts = make_points(rng, 100)
        idx = ThreeSidedSweepIndex(pts, 8)
        got, _ = idx.query(ThreeSidedQuery(-1, 2000, -10))
        assert sorted(set(got)) == sorted(pts)

    def test_query_above_everything_empty(self, rng):
        pts = make_points(rng, 100)
        idx = ThreeSidedSweepIndex(pts, 8)
        got, used = idx.query(ThreeSidedQuery(-1, 2000, 1e9))
        assert got == [] and used == []

    def test_query_at_exact_point_y(self, rng):
        pts = make_points(rng, 64)
        idx = ThreeSidedSweepIndex(pts, 8)
        for p in rng.sample(pts, 10):
            got, _ = idx.query(ThreeSidedQuery(p[0], p[0], p[1]))
            assert p in got

    @pytest.mark.parametrize("alpha", [2, 3])
    def test_access_overhead_theorem4(self, rng, alpha):
        """Blocks read <= alpha^2 t + alpha + 2 for every query."""
        B = 16
        pts = make_points(rng, 512)
        idx = ThreeSidedSweepIndex(pts, B, alpha=alpha)
        for _ in range(200):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 600)
            c = rng.uniform(0, 1000)
            got, used = idx.query(ThreeSidedQuery(a, b, c))
            T = len(set(got))
            assert len(used) <= alpha * alpha * (T / B) + alpha + 2, (
                len(used), T
            )

    def test_tied_y_values(self):
        """Many points sharing y coordinates sweep deterministically."""
        pts = [(float(i), float(i % 5)) for i in range(60)]
        idx = ThreeSidedSweepIndex(pts, 8)
        idx.check_invariants()
        for c in [0.0, 1.0, 2.5, 4.0, 5.0]:
            got, _ = idx.query(ThreeSidedQuery(10, 40, c))
            assert sorted(set(got)) == brute_3sided(pts, 10, 40, c)

    def test_all_points_same_y(self):
        pts = [(float(i), 7.0) for i in range(40)]
        idx = ThreeSidedSweepIndex(pts, 8)
        got, _ = idx.query(ThreeSidedQuery(5, 25, 7.0))
        assert sorted(set(got)) == brute_3sided(pts, 5, 25, 7.0)
        got, _ = idx.query(ThreeSidedQuery(5, 25, 7.1))
        assert got == []

    def test_all_points_same_x_column(self):
        pts = [(3.0, float(i)) for i in range(50)]
        idx = ThreeSidedSweepIndex(pts, 8)
        got, _ = idx.query(ThreeSidedQuery(3, 3, 25))
        assert sorted(set(got)) == brute_3sided(pts, 3, 3, 25)


class TestCatalog:
    def test_block_live_at_conventions(self):
        assert block_live_at(NEG_INF, 5.0, NEG_INF)       # initial block
        assert block_live_at(NEG_INF, 5.0, 5.0)
        assert not block_live_at(NEG_INF, 5.0, 5.1)
        assert not block_live_at(2.0, 5.0, 2.0)           # y_from exclusive
        assert block_live_at(2.0, 5.0, 2.1)
        assert not block_live_at(2.0, 5.0, NEG_INF)       # coalesced block

    def test_catalog_entry_helpers(self):
        e = CatalogEntry(0.0, 10.0, NEG_INF, 5.0, 3)
        assert e.live_at(4.0) and not e.live_at(6.0)
        assert e.x_overlaps(9.0, 20.0) and not e.x_overlaps(11.0, 20.0)

    def test_catalog_one_entry_per_block(self, rng):
        pts = make_points(rng, 200)
        idx = ThreeSidedSweepIndex(pts, 8)
        assert len(idx.catalog) == idx.num_blocks

    def test_initial_blocks_cover_low_queries(self, rng):
        """At c = min y every candidate block is an initial one."""
        pts = make_points(rng, 128)
        idx = ThreeSidedSweepIndex(pts, 8)
        lowest = min(p[1] for p in pts)
        cands = idx.candidate_blocks(ThreeSidedQuery(-1, 2000, lowest))
        entries = {e.block: e for e in idx.catalog}
        assert all(entries[b].y_from == NEG_INF for b in cands)


class TestOrientations:
    @pytest.mark.parametrize("side", ["up", "down", "left", "right"])
    def test_points_round_trip(self, rng, side):
        pts = make_points(rng, 150)
        idx = ThreeSidedSweepIndex(pts, 8, orientation=side)
        all_pts = set()
        for i in range(idx.num_blocks):
            all_pts.update(idx.block_points(i))
        assert all_pts == set(pts)

    def test_right_open_queries(self, rng):
        pts = make_points(rng, 200)
        idx = ThreeSidedSweepIndex(pts, 8, orientation=Orientation.RIGHT)
        for _ in range(60):
            a = rng.uniform(0, 1000)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 400)
            got, _ = idx.query_oriented(x_lo=a, y_lo=c, y_hi=d)
            want = sorted(p for p in pts if p[0] >= a and c <= p[1] <= d)
            assert sorted(set(got)) == want

    def test_left_open_queries(self, rng):
        pts = make_points(rng, 200)
        idx = ThreeSidedSweepIndex(pts, 8, orientation=Orientation.LEFT)
        for _ in range(60):
            b = rng.uniform(0, 1000)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 400)
            got, _ = idx.query_oriented(x_hi=b, y_lo=c, y_hi=d)
            want = sorted(p for p in pts if p[0] <= b and c <= p[1] <= d)
            assert sorted(set(got)) == want

    def test_down_open_queries(self, rng):
        pts = make_points(rng, 200)
        idx = ThreeSidedSweepIndex(pts, 8, orientation=Orientation.DOWN)
        for _ in range(60):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            d = rng.uniform(0, 1000)
            got, _ = idx.query_oriented(x_lo=a, x_hi=b, y_hi=d)
            want = sorted(p for p in pts if a <= p[0] <= b and p[1] <= d)
            assert sorted(set(got)) == want
