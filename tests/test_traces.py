"""Tests for the operation-trace workload framework."""

import pytest

from repro.io import BlockStore
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.log_method import LogMethodThreeSidedIndex
from repro.workloads.traces import ReplayResult, generate_trace, replay


class TestGenerateTrace:
    def test_length_and_determinism(self):
        t1 = generate_trace(200, seed=5)
        t2 = generate_trace(200, seed=5)
        assert len(t1) == 200
        assert t1 == t2
        assert t1 != generate_trace(200, seed=6)

    def test_self_consistency(self):
        """Every delete targets a point inserted earlier and still live."""
        trace = generate_trace(500, mix=(0.4, 0.4, 0.2), seed=7)
        live = set()
        for kind, arg in trace:
            if kind == "ins":
                assert arg not in live
                live.add(arg)
            elif kind == "del":
                assert arg in live
                live.discard(arg)

    def test_mix_roughly_respected(self):
        trace = generate_trace(2000, mix=(0.6, 0.2, 0.2), seed=8)
        kinds = [k for k, _ in trace]
        assert 0.5 < kinds.count("ins") / len(kinds) < 0.7
        assert kinds.count("q3") > 200

    def test_initial_points_deletable(self):
        pts = [(1.0, 1.0), (2.0, 2.0)]
        trace = generate_trace(50, mix=(0.0, 1.0, 0.0), seed=9, initial=pts)
        assert trace[0][0] == "del"

    def test_queries_well_formed(self):
        for kind, arg in generate_trace(300, seed=10):
            if kind == "q3":
                a, b, c = arg
                assert a <= b


class TestReplay:
    def test_replay_against_model(self):
        trace = generate_trace(400, seed=11)
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        res = replay(
            trace, store,
            insert=lambda p: pst.insert(*p),
            delete=lambda p: pst.delete(*p),
            query3=pst.query,
        )
        # all op kinds accounted, totals add up
        assert sum(res.counts.values()) == 400
        assert res.total_ios == sum(res.ios.values())
        assert res.mean_io("ins") > 0

    def test_cross_structure_verification(self):
        trace = generate_trace(300, seed=12)
        s1, s2 = BlockStore(16), BlockStore(16)
        pst = ExternalPrioritySearchTree(s1)
        lm = LogMethodThreeSidedIndex(s2)
        ref = replay(
            trace, s1,
            insert=lambda p: pst.insert(*p),
            delete=lambda p: pst.delete(*p),
            query3=pst.query,
        )
        res = replay(
            trace, s2,
            insert=lambda p: lm.insert(*p),
            delete=lambda p: lm.delete(*p),
            query3=lm.query,
            verify_against=ref,
        )
        assert len(res.answers) == len(ref.answers)

    def test_verification_catches_divergence(self):
        trace = generate_trace(100, mix=(0.5, 0.0, 0.5), seed=13)
        s1 = BlockStore(16)
        pst = ExternalPrioritySearchTree(s1)
        ref = replay(
            trace, s1,
            insert=lambda p: pst.insert(*p),
            delete=lambda p: pst.delete(*p),
            query3=pst.query,
        )
        s2 = BlockStore(16)
        broken = ExternalPrioritySearchTree(s2)
        with pytest.raises(AssertionError):
            replay(
                trace, s2,
                insert=lambda p: broken.insert(*p),
                delete=lambda p: broken.delete(*p),
                # a structure that drops results half the time
                query3=lambda a, b, c: broken.query(a, b, c)[::2],
                verify_against=ref,
            )

    def test_replay_result_helpers(self):
        r = ReplayResult(ios={"ins": 10}, counts={"ins": 5})
        assert r.mean_io("ins") == 2.0
        assert r.mean_io("q3") == 0.0
        assert r.total_ios == 10


class TestFourSidedTraces:
    def test_zero_weight_is_byte_identical(self):
        """q4_weight=0 must not perturb the RNG draw sequence."""
        for seed in (0, 5, 11):
            assert generate_trace(300, seed=seed) == generate_trace(
                300, seed=seed, q4_weight=0.0
            )

    def test_q4_ops_generated_and_well_formed(self):
        trace = generate_trace(1000, seed=14, q4_weight=0.3)
        q4s = [arg for kind, arg in trace if kind == "q4"]
        assert 150 < len(q4s) < 450
        for a, b, c, d in q4s:
            assert a <= b and c <= d

    def test_replay_q4_requires_adapter(self):
        trace = generate_trace(50, mix=(1.0, 0.0, 0.0), seed=15,
                               q4_weight=1.0)
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        with pytest.raises(ValueError, match="no query4 adapter"):
            replay(
                trace, store,
                insert=lambda p: pst.insert(*p),
                delete=lambda p: pst.delete(*p),
                query3=pst.query,
            )

    def test_replay_q4_against_model(self):
        trace = generate_trace(300, seed=16, q4_weight=0.25)
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        live = set()
        expected = []

        def model_ins(p):
            live.add(p)
            pst.insert(*p)

        def model_del(p):
            live.discard(p)
            pst.delete(*p)

        def model_q3(a, b, c):
            got = pst.query(a, b, c)
            expected.append(sorted(
                p for p in live if a <= p[0] <= b and p[1] >= c
            ))
            assert sorted(got) == expected[-1]
            return got

        def model_q4(a, b, c, d):
            got = [p for p in pst.query(a, b, c) if p[1] <= d]
            assert sorted(got) == sorted(
                p for p in live if a <= p[0] <= b and c <= p[1] <= d
            )
            return got

        res = replay(
            trace, store,
            insert=model_ins,
            delete=model_del,
            query3=model_q3,
            query4=model_q4,
        )
        assert res.counts.get("q4", 0) > 0
        assert res.ios.get("q4", 0) > 0
