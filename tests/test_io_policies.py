"""Hypothesis properties for the pluggable buffer-pool policies.

Whatever the replacement policy, a buffer pool is *transparent*: any
operation sequence must return the same data as the bare block store,
and flushing must leave the disk in the same final state.  Readahead
must be equally invisible -- and with ``readahead_window=0`` the hints
must not change a single physical I/O.
"""

from hypothesis import given, settings, strategies as st

from repro.io import BlockStore, BufferPool

# an op is ("alloc",), ("write", slot, seed), ("read", slot),
# ("free", slot) -- slots index the currently-live blocks modulo their
# count, so every interpretation sees the same concrete sequence
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc")),
        st.tuples(st.just("write"), st.integers(0, 63), st.integers(0, 9)),
        st.tuples(st.just("read"), st.integers(0, 63)),
        st.tuples(st.just("free"), st.integers(0, 63)),
    ),
    min_size=1,
    max_size=80,
)

_B = 4


def _payload(bid, seed):
    """A small deterministic record list, distinct per (bid, seed)."""
    return [bid * 10 + seed] * ((seed % _B) + 1)


def _interpret(ops):
    """Resolve slot-relative ops into a concrete (op, bid, seed) trace."""
    live, next_bid, trace = [], 0, []
    for op in ops:
        if op[0] == "alloc":
            live.append(next_bid)
            trace.append(("alloc", next_bid, 0))
            next_bid += 1
        elif not live:
            continue
        elif op[0] == "free":
            bid = live.pop(op[1] % len(live))
            trace.append(("free", bid, 0))
        else:
            bid = live[op[1] % len(live)]
            trace.append((op[0], bid, op[2] if op[0] == "write" else 0))
    return trace, live


def _drive(store, trace, *, hint_on_alloc=None):
    """Run a trace against any storage-protocol object; collect reads."""
    seen = []
    for op, bid, seed in trace:
        if op == "alloc":
            got = store.alloc()
            assert got == bid
            if hint_on_alloc is not None:
                hint_on_alloc(store, bid)
        elif op == "write":
            store.write(bid, _payload(bid, seed))
        elif op == "read":
            seen.append((bid, list(store.read(bid).records)))
        else:
            store.free(bid)
    return seen


class TestPoolTransparency:
    @settings(max_examples=120, deadline=None)
    @given(
        ops=_ops,
        policy=st.sampled_from(["lru", "2q", "clock"]),
        capacity=st.integers(0, 6),
    )
    def test_any_policy_reads_like_the_bare_store(self, ops, policy, capacity):
        trace, live = _interpret(ops)
        bare = BlockStore(_B)
        expected = _drive(bare, trace)

        disk = BlockStore(_B)
        pool = BufferPool(disk, capacity, policy=policy)
        got = _drive(pool, trace)
        assert got == expected

        # after a flush the disks agree block for block
        pool.flush()
        for bid in live:
            assert disk.peek(bid) == bare.peek(bid)

    @settings(max_examples=80, deadline=None)
    @given(ops=_ops, policy=st.sampled_from(["lru", "2q", "clock"]))
    def test_readahead_is_invisible_in_results(self, ops, policy):
        """With a window, hinting every pair of consecutive allocations
        may move fetches around but never changes what a read returns."""
        trace, live = _interpret(ops)
        bare = BlockStore(_B)
        expected = _drive(bare, trace)

        def hint(store, bid):
            if bid > 0:
                store.prefetch_hint((bid - 1, bid))

        disk = BlockStore(_B)
        pool = BufferPool(disk, 4, policy=policy, readahead_window=3)
        got = _drive(pool, trace, hint_on_alloc=hint)
        assert got == expected
        pool.flush()
        for bid in live:
            assert disk.peek(bid) == bare.peek(bid)
        # the accounting identity holds at any stopping point
        untouched = len(pool._prefetched)
        assert pool.prefetch_issued == (
            pool.prefetch_hits + pool.prefetch_waste + untouched
        )

    @settings(max_examples=80, deadline=None)
    @given(ops=_ops, capacity=st.integers(0, 6))
    def test_window_zero_hints_change_no_physical_io(self, ops, capacity):
        """Satellite acceptance: hints into a readahead-disabled pool
        leave every gated counter bit-identical."""
        trace, _ = _interpret(ops)

        def hint(store, bid):
            store.prefetch_hint((max(0, bid - 1), bid))

        plain_disk = BlockStore(_B)
        plain = BufferPool(plain_disk, capacity)
        expected = _drive(plain, trace)
        plain.flush()

        hinted_disk = BlockStore(_B)
        hinted = BufferPool(hinted_disk, capacity)
        got = _drive(hinted, trace, hint_on_alloc=hint)
        hinted.flush()

        assert got == expected
        assert hinted_disk.stats == plain_disk.stats
        assert hinted.prefetch_issued == 0


class TestLRUMatchesSeedModel:
    """The default pool must reproduce the original insertion-order LRU
    eviction sequence exactly -- the gated baselines depend on it."""

    @settings(max_examples=100, deadline=None)
    @given(ops=_ops, capacity=st.integers(1, 5))
    def test_physical_counts_match_ordereddict_model(self, ops, capacity):
        from collections import OrderedDict

        trace, _ = _interpret(ops)

        disk = BlockStore(_B)
        pool = BufferPool(disk, capacity)
        _drive(pool, trace)

        # the seed pool, reduced to its I/O-visible behaviour
        model_disk = BlockStore(_B)
        frames: "OrderedDict[int, list]" = OrderedDict()
        dirty = set()

        def evict_to_fit():
            while len(frames) >= capacity:
                victim, records = frames.popitem(last=False)
                if victim in dirty:
                    model_disk.write(victim, records)
                    dirty.discard(victim)

        for op, bid, seed in trace:
            if op == "alloc":
                model_disk.alloc()
            elif op == "write":
                data = _payload(bid, seed)
                if bid in frames:
                    frames[bid] = data
                    frames.move_to_end(bid)
                else:
                    evict_to_fit()
                    frames[bid] = data
                dirty.add(bid)
            elif op == "read":
                if bid in frames:
                    frames.move_to_end(bid)
                else:
                    block = model_disk.read(bid)
                    evict_to_fit()
                    frames[bid] = list(block.records)
            else:
                model_disk.free(bid)
                frames.pop(bid, None)
                dirty.discard(bid)

        assert disk.stats == model_disk.stats
