"""Unit tests for workloads and indexing schemes (repro.indexability)."""


import pytest

from repro.geometry import Rect
from repro.indexability import (
    IndexingScheme,
    RangeWorkload,
    Workload,
    access_overhead,
    greedy_cover,
    redundancy,
    verify_covering,
)
from repro.indexability.scheme import per_query_block_counts


class TestWorkload:
    def test_queries_must_be_subsets(self):
        with pytest.raises(ValueError):
            Workload([1, 2, 3], [[1, 4]])

    def test_counts(self):
        w = Workload([1, 2, 3], [[1], [2, 3]])
        assert w.num_instances == 3
        assert w.num_queries == 2

    def test_range_workload_materializes_rects(self):
        pts = [(0.0, 0.0), (1.0, 1.0), (5.0, 5.0)]
        w = RangeWorkload(pts, [Rect(0, 1, 0, 1), Rect(4, 6, 4, 6)])
        assert sorted(len(q) for q in w.queries) == [1, 2]
        assert w.query_sizes() == [2, 1]


class TestIndexingScheme:
    def test_block_capacity_enforced(self):
        with pytest.raises(ValueError):
            IndexingScheme(2, [[1, 2, 3]])

    def test_covering(self):
        w = Workload([1, 2, 3], [])
        s_ok = IndexingScheme(2, [[1, 2], [3]])
        s_bad = IndexingScheme(2, [[1, 2]])
        assert verify_covering(s_ok, w)
        assert not verify_covering(s_bad, w)

    def test_redundancy_counts_full_blocks(self):
        w = Workload(range(4), [])
        s = IndexingScheme(2, [[0, 1], [2, 3], [0, 2]])
        # 3 blocks x B=2 / 4 instances
        assert redundancy(s, w) == pytest.approx(1.5)

    def test_redundancy_empty_instances_raises(self):
        w = Workload([], [])
        s = IndexingScheme(2, [])
        with pytest.raises(ValueError):
            redundancy(s, w)


class TestCovers:
    def test_greedy_cover_finds_minimum_here(self):
        s = IndexingScheme(3, [[1, 2, 3], [4, 5, 6], [3, 4]])
        cover = greedy_cover(s, frozenset([1, 2, 3, 4, 5, 6]))
        assert sorted(cover) == [0, 1]

    def test_greedy_cover_empty_query(self):
        s = IndexingScheme(2, [[1, 2]])
        assert greedy_cover(s, frozenset()) == []

    def test_greedy_cover_uncoverable(self):
        s = IndexingScheme(2, [[1, 2]])
        assert greedy_cover(s, frozenset([9])) is None

    def test_access_overhead_definition(self):
        # B=2; a 2-point query answered with 2 blocks -> A = 2/ceil(2/2) = 2
        w = Workload([1, 2, 3, 4], [[1, 3]])
        s = IndexingScheme(2, [[1, 2], [3, 4]])
        assert access_overhead(s, w) == pytest.approx(2.0)

    def test_access_overhead_ideal_packing(self):
        w = Workload([1, 2, 3, 4], [[1, 2], [3, 4]])
        s = IndexingScheme(2, [[1, 2], [3, 4]])
        assert access_overhead(s, w) == pytest.approx(1.0)

    def test_access_overhead_with_provided_covers(self):
        w = Workload([1, 2], [[1]])
        s = IndexingScheme(2, [[1, 2], [1]])
        assert access_overhead(s, w, covers=[[1]]) == pytest.approx(1.0)
        # wasteful cover charged as given
        assert access_overhead(s, w, covers=[[0, 1]]) == pytest.approx(2.0)

    def test_access_overhead_incomplete_cover_rejected(self):
        w = Workload([1, 2, 3], [[1, 3]])
        s = IndexingScheme(2, [[1, 2], [3]])
        with pytest.raises(ValueError):
            access_overhead(s, w, covers=[[0]])

    def test_per_query_block_counts(self):
        w = Workload([1, 2, 3, 4], [[1, 2], [1, 2, 3, 4]])
        s = IndexingScheme(2, [[1, 2], [3, 4]])
        assert per_query_block_counts(s, w) == [(2, 1), (4, 2)]
