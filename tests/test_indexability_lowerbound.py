"""Tests for the Redundancy Theorem machinery (Theorems 1-3)."""


import pytest

from repro.indexability import (
    check_redundancy_theorem_conditions,
    fibonacci_lattice,
    fibonacci_query_set,
    fibonacci_tradeoff_bound,
    redundancy_theorem_bound,
)
from repro.indexability.lowerbound import (
    separation_parameter,
    theorem2_asymptotic,
    theorem3_asymptotic,
)
from repro.indexability.workload import RangeWorkload


class TestRedundancyTheoremBound:
    def test_formula(self):
        # (eps-2)/(2 eps) * sum/q / (B N)
        got = redundancy_theorem_bound([100, 100], B=10, N=100, eps=4.0)
        assert got == pytest.approx((2.0 / 8.0) * 200 / 1000)

    def test_eps_must_exceed_two(self):
        with pytest.raises(ValueError):
            redundancy_theorem_bound([10], 2, 10, eps=2.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            redundancy_theorem_bound([10], 0, 10, eps=3.0)


class TestConditions:
    def test_accepts_disjoint_big_queries(self):
        pts = [(float(i), float(i)) for i in range(8)]
        from repro.geometry import Rect
        w = RangeWorkload(pts, [Rect(0, 3, 0, 3), Rect(4, 7, 4, 7)])
        ok, reason = check_redundancy_theorem_conditions(w, B=4, A=1.0, eps=4.0)
        assert ok, reason

    def test_rejects_small_queries(self):
        pts = [(float(i), float(i)) for i in range(8)]
        from repro.geometry import Rect
        w = RangeWorkload(pts, [Rect(0, 1, 0, 1)])
        ok, reason = check_redundancy_theorem_conditions(w, B=4, A=1.0, eps=4.0)
        assert not ok and "points" in reason

    def test_rejects_big_intersections(self):
        pts = [(float(i), float(i)) for i in range(8)]
        from repro.geometry import Rect
        w = RangeWorkload(pts, [Rect(0, 5, 0, 5), Rect(1, 6, 1, 6)])
        ok, reason = check_redundancy_theorem_conditions(w, B=4, A=1.0, eps=4.0)
        assert not ok and "intersect" in reason


class TestFibonacciBounds:
    def test_separation_parameter_grows_with_A(self):
        assert separation_parameter(64, 4.0) > separation_parameter(64, 2.0)

    def test_query_set_sizes_scale_with_k(self):
        qs1 = fibonacci_query_set(N=987, B=8, A=1.0, k=1)
        qs2 = fibonacci_query_set(N=987, B=8, A=1.0, k=2)
        assert len(qs1) >= len(qs2) > 0

    def test_query_set_on_lattice_meets_conditions_loosely(self):
        """The constructed tilings have bounded pairwise intersections."""
        k_fib = 14
        pts = fibonacci_lattice(k_fib)
        N = len(pts)
        B = 8
        rects = fibonacci_query_set(N, B, A=1.0, k=1, eps=4.0)
        w = RangeWorkload(pts, rects)
        # Proposition 1's floor allows tiny slack at this N, so check the
        # intersections directly rather than the strict conditions.
        sets = w.queries
        limit = B / 2.0  # generous version of B / (2 (eps A)^2) scaling
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                assert len(sets[i] & sets[j]) <= limit

    def test_tradeoff_bound_decreases_in_A(self):
        n_pts, B = 10946, 8
        r1 = fibonacci_tradeoff_bound(n_pts, B, A=1.0)
        r4 = fibonacci_tradeoff_bound(n_pts, B, A=4.0)
        assert r1 >= r4 > 0.0

    def test_tradeoff_bound_grows_with_N(self):
        B = 8
        r_small = fibonacci_tradeoff_bound(987, B, A=1.0)
        r_big = fibonacci_tradeoff_bound(832040, B, A=1.0)
        assert r_big > r_small

    def test_no_levels_for_tiny_N(self):
        assert fibonacci_tradeoff_bound(10, 8, A=1.0) == 0.0


class TestAsymptotics:
    def test_theorem2_shape(self):
        assert theorem2_asymptotic(2 ** 20, 2.0) == pytest.approx(20.0, rel=0.01)
        assert theorem2_asymptotic(2 ** 20, 4.0) == pytest.approx(10.0, rel=0.01)

    def test_theorem3_reduces_to_theorem2(self):
        n = 2 ** 16
        assert theorem3_asymptotic(n, L=2.0, A=2.0) <= theorem2_asymptotic(n, 2.0)

    def test_degenerate_inputs(self):
        assert theorem2_asymptotic(1, 2.0) == 0.0
        assert theorem3_asymptotic(1, 2.0, 2.0) == 0.0
