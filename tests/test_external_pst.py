"""Tests for the external priority search tree (Theorem 6)."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.analysis.bounds import log_b
from tests.conftest import brute_3sided, make_points


def _mk(rng, n, B=16, **kw):
    store = BlockStore(B)
    pts = make_points(rng, n)
    pst = ExternalPrioritySearchTree(store, pts, **kw)
    return store, pts, pst


class TestConstruction:
    def test_empty(self):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        assert pst.count == 0
        assert pst.query(0, 1, 0) == []
        pst.check_invariants()

    def test_single_point(self):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store, [(1, 2)])
        assert pst.query(0, 2, 0) == [(1.0, 2.0)]
        pst.check_invariants()

    def test_duplicates_rejected(self):
        store = BlockStore(16)
        with pytest.raises(ValueError):
            ExternalPrioritySearchTree(store, [(1, 2), (1, 2)])

    def test_parameter_validation(self):
        store = BlockStore(16)
        with pytest.raises(ValueError):
            ExternalPrioritySearchTree(store, a=8, k=8)  # 4a+2 > B

    def test_bulk_build_invariants(self, rng):
        _, _, pst = _mk(rng, 1500)
        pst.check_invariants()

    def test_equal_x_coordinates_supported(self):
        """Composite keys make duplicate x legal (general position not
        required of callers)."""
        store = BlockStore(16)
        pts = [(1.0, float(i)) for i in range(200)]
        pst = ExternalPrioritySearchTree(store, pts)
        pst.check_invariants()
        assert sorted(pst.query(1, 1, 100)) == sorted(
            p for p in pts if p[1] >= 100
        )

    def test_space_linear(self, rng):
        """Theorem 6: O(n) blocks.  Measure blocks/(N/B) stays bounded as
        N doubles (constant may be large for tiny a)."""
        B = 16
        ratios = []
        for n in (500, 1000, 2000):
            store = BlockStore(B)
            pts = make_points(rng, n)
            pst = ExternalPrioritySearchTree(store, pts)
            ratios.append(pst.blocks_in_use() / (n / B))
        # linear space: the ratio does not grow with N
        assert ratios[-1] <= ratios[0] * 1.5 + 1

    def test_height_logarithmic(self, rng):
        _, _, pst = _mk(rng, 2000, B=16)
        # a = 2, k = 8: height ~ log2(2000/8) + O(1)
        assert pst.height() <= 12


class TestQueries:
    def test_differential_random(self, rng):
        store, pts, pst = _mk(rng, 1200)
        for _ in range(120):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            assert sorted(pst.query(a, b, c)) == brute_3sided(pts, a, b, c)

    def test_full_range_query(self, rng):
        store, pts, pst = _mk(rng, 300)
        assert sorted(pst.query(-1, 1001, -1)) == sorted(pts)

    def test_empty_band(self, rng):
        store, pts, pst = _mk(rng, 300)
        assert pst.query(0, 1000, 1e9) == []

    def test_narrow_x_queries(self, rng):
        store, pts, pst = _mk(rng, 500)
        for p in rng.sample(pts, 20):
            got = pst.query(p[0], p[0], p[1])
            assert got == [p]

    def test_query_io_bound_scaling(self, rng):
        """Query I/O tracks log_B N + T/B: measured against a generous
        envelope (constant x bound + constant)."""
        B = 32
        store = BlockStore(B)
        pts = make_points(rng, 4000)
        pst = ExternalPrioritySearchTree(store, pts)
        worst_ratio = 0.0
        for _ in range(60):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 300)
            c = rng.uniform(0, 1000)
            with Meter(store) as m:
                got = pst.query(a, b, c)
            bound = log_b(len(pts), B) + len(got) / B
            worst_ratio = max(worst_ratio, m.delta.ios / bound)
        # the constant is implementation-dependent but must be modest
        assert worst_ratio < 60, worst_ratio


class TestInserts:
    def test_incremental_inserts_differential(self, rng):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        live = []
        for p in make_points(rng, 600):
            pst.insert(*p)
            live.append(p)
        pst.check_invariants()
        for _ in range(60):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            assert sorted(pst.query(a, b, c)) == brute_3sided(live, a, b, c)

    def test_sorted_insert_order(self, rng):
        """Monotone insert order stresses splits on one flank."""
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        pts = sorted(make_points(rng, 500))
        for p in pts:
            pst.insert(*p)
        pst.check_invariants()
        assert sorted(pst.query(-1, 1001, -1)) == sorted(pts)

    def test_duplicate_insert_raises_or_resurrects_only_ghosts(self, rng):
        store = BlockStore(16)
        pts = make_points(rng, 100)
        pst = ExternalPrioritySearchTree(store, pts)
        with pytest.raises(ValueError):
            pst.insert(*pts[0])

    def test_insert_io_logarithmic(self, rng):
        B = 32
        store = BlockStore(B)
        pts = make_points(rng, 3000)
        pst = ExternalPrioritySearchTree(store, pts)
        fresh = make_points(rng, 100, lo=2000, hi=3000)
        costs = []
        for p in fresh:
            with Meter(store) as m:
                pst.insert(*p)
            costs.append(m.delta.ios)
        avg = sum(costs) / len(costs)
        bound = log_b(pst.count, B)
        assert avg <= 40 * bound, (avg, bound)

    def test_splits_counted(self, rng):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        for p in make_points(rng, 400):
            pst.insert(*p)
        assert pst.splits > 0


class TestDeletes:
    def test_delete_differential(self, rng):
        store, pts, pst = _mk(rng, 800)
        live = set(pts)
        for p in rng.sample(pts, 500):
            assert pst.delete(*p)
            live.discard(p)
        pst.check_invariants()
        for _ in range(50):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            assert sorted(pst.query(a, b, c)) == brute_3sided(live, a, b, c)

    def test_delete_absent(self, rng):
        store, pts, pst = _mk(rng, 100)
        assert not pst.delete(-3, -3)
        assert pst.count == 100

    def test_delete_everything(self, rng):
        store, pts, pst = _mk(rng, 300)
        for p in pts:
            assert pst.delete(*p)
        assert pst.count == 0
        assert pst.query(-1, 1001, -1) == []

    def test_ghost_resurrection(self, rng):
        store, pts, pst = _mk(rng, 200)
        victim = pts[0]
        assert pst.delete(*victim)
        pst.insert(*victim)       # key still present as a ghost
        pst.check_invariants()
        assert victim in pst.query(victim[0], victim[0], victim[1])

    def test_global_rebuild_triggers(self, rng):
        store, pts, pst = _mk(rng, 600)
        for p in rng.sample(pts, 450):
            pst.delete(*p)
        assert pst.rebuilds >= 1
        pst.check_invariants()

    def test_delete_top_of_root_ysets(self, rng):
        """Deleting the globally highest points exercises bubble-ups."""
        store, pts, pst = _mk(rng, 500)
        live = set(pts)
        for p in sorted(pts, key=lambda p: -p[1])[:120]:
            assert pst.delete(*p)
            live.discard(p)
        pst.check_invariants()
        assert sorted(pst.query(-1, 1001, -1)) == sorted(live)


class TestMixedWorkload:
    def test_interleaved_ops(self, rng):
        store = BlockStore(16)
        pst = ExternalPrioritySearchTree(store)
        live = set()
        for i in range(900):
            r = rng.random()
            if r < 0.35 and live:
                p = rng.choice(sorted(live))
                assert pst.delete(*p)
                live.discard(p)
            elif r < 0.8:
                p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                if p not in live:
                    pst.insert(*p)
                    live.add(p)
            else:
                a = rng.uniform(0, 1000)
                b = a + rng.uniform(0, 300)
                c = rng.uniform(0, 1000)
                assert sorted(pst.query(a, b, c)) == brute_3sided(live, a, b, c)
        pst.check_invariants()
        assert pst.count == len(live)
        assert sorted(pst.all_points()) == sorted(live)

    def test_rebuild_preserves_contents(self, rng):
        store, pts, pst = _mk(rng, 400)
        pst.rebuild()
        assert sorted(pst.all_points()) == sorted(pts)
        pst.check_invariants()
