"""Differential and behavioural tests for the classical baselines."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.baselines import (
    BTreeXFilter,
    ExternalKDTree,
    GridFile,
    LinearScan,
    RTree,
    ZOrderIndex,
)
from tests.conftest import brute_3sided, brute_4sided, make_points

ALL = [LinearScan, BTreeXFilter, ExternalKDTree, RTree, GridFile, ZOrderIndex]


@pytest.mark.parametrize("cls", ALL)
class TestDifferential:
    def test_4sided_queries(self, rng, cls):
        pts = make_points(rng, 500)
        idx = cls(BlockStore(16), pts)
        for _ in range(60):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 400)
            got = idx.query_4sided(a, b, c, d)
            assert sorted(set(got)) == brute_4sided(pts, a, b, c, d)
            assert len(got) == len(set(got))

    def test_3sided_queries(self, rng, cls):
        pts = make_points(rng, 400)
        idx = cls(BlockStore(16), pts)
        for _ in range(40):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 400)
            c = rng.uniform(0, 1000)
            got = idx.query_3sided(a, b, c)
            assert sorted(set(got)) == brute_3sided(pts, a, b, c)

    def test_dynamic_ops(self, rng, cls):
        pts = make_points(rng, 300)
        idx = cls(BlockStore(16), pts)
        live = set(pts)
        for _ in range(150):
            r = rng.random()
            if r < 0.5 and live:
                p = rng.choice(sorted(live))
                assert idx.delete(*p)
                live.discard(p)
            else:
                p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                if p not in live:
                    idx.insert(*p)
                    live.add(p)
        got = idx.query_4sided(-1, 1001, -1, 1001)
        assert sorted(set(got)) == sorted(live)

    def test_delete_absent(self, rng, cls):
        pts = make_points(rng, 50)
        idx = cls(BlockStore(16), pts)
        assert not idx.delete(-99.0, -99.0)

    def test_empty_structure(self, rng, cls):
        idx = cls(BlockStore(16))
        assert idx.query_4sided(0, 1, 0, 1) == []

    def test_all_points(self, rng, cls):
        pts = make_points(rng, 120)
        idx = cls(BlockStore(16), pts)
        assert sorted(set(idx.all_points())) == sorted(pts)


class TestWorstCases:
    def test_btree_filter_overscans_thin_slabs(self, rng):
        """The motivating failure: a wide x-slab with a skinny y-band
        makes the B-tree baseline scan far more than the output."""
        B = 16
        pts = make_points(rng, 2000)
        store = BlockStore(B)
        idx = BTreeXFilter(store, pts)
        xs = sorted(p[0] for p in pts)
        ys = sorted(p[1] for p in pts)
        a, b = xs[100], xs[1800]      # ~85% of points in the slab
        c, d = ys[1000], ys[1010]     # ~0.5% in the band
        with Meter(store) as m:
            got = idx.query_4sided(a, b, c, d)
        t_blocks = max(1, len(got) // B)
        assert m.delta.reads > 20 * t_blocks  # pays slab, not output

    def test_grid_file_skew_degrades(self, rng):
        """Clustered data piles points into few cells: a small query over
        the hot cell reads many blocks."""
        from repro.workloads import clustered_points
        B = 16
        pts = clustered_points(1500, seed=7, clusters=1, spread=0.0005)
        store = BlockStore(B)
        grid = GridFile(store, pts)
        # tiny rectangle in the hot region
        cx = sorted(p[0] for p in pts)[750]
        cy = sorted(p[1] for p in pts)[750]
        with Meter(store) as m:
            grid.query_4sided(cx, cx + 0.1, cy, cy + 0.1)
        assert m.delta.reads >= 5  # hot chain scanned despite tiny output

    def test_kd_tree_thin_slab_reads_many_leaves(self, rng):
        B = 16
        pts = make_points(rng, 2000)
        store = BlockStore(B)
        kd = ExternalKDTree(store, pts)
        ys = sorted(p[1] for p in pts)
        with Meter(store) as m:
            got = kd.query_4sided(-1, 1001, ys[1000], ys[1005])
        t_blocks = max(1, len(got) // B)
        assert m.delta.reads > 4 * t_blocks


class TestStructureSpecific:
    def test_rtree_bulk_load_packs_well(self, rng):
        B = 16
        pts = make_points(rng, 1000)
        store = BlockStore(B)
        rt = RTree(store, pts)
        # STR packing: ~n/fill leaves plus small internal overhead
        assert rt.blocks_in_use() <= 2.2 * len(pts) / (B - 1) + 5

    def test_linear_scan_is_oracle_for_itself(self, rng):
        pts = make_points(rng, 64)
        scan = LinearScan(BlockStore(16), pts)
        assert scan.blocks_in_use() == 4
        assert scan.count == 64

    def test_zorder_morton_monotone_in_box(self):
        from repro.baselines.zorder import morton
        # Z(lo) <= Z(p) <= Z(hi) for p in the box
        lo, hi = (10, 20), (40, 50)
        zlo, zhi = morton(*lo), morton(*hi)
        for ix in range(10, 41, 5):
            for iy in range(20, 51, 5):
                assert zlo <= morton(ix, iy) <= zhi

    def test_grid_insert_outside_domain_clamps(self, rng):
        pts = make_points(rng, 100)
        grid = GridFile(BlockStore(16), pts)
        grid.insert(10_000.0, 10_000.0)
        got = grid.query_4sided(9000, 11000, 9000, 11000)
        assert (10_000.0, 10_000.0) in got

    def test_kd_tree_tie_coordinates(self):
        pts = [(1.0, float(i)) for i in range(50)] + [(2.0, float(i)) for i in range(50)]
        kd = ExternalKDTree(BlockStore(8), pts)
        got = kd.query_4sided(1.0, 1.0, 10, 20)
        assert sorted(got) == [(1.0, float(i)) for i in range(10, 21)]
        for p in pts:
            assert kd.delete(*p)
        assert kd.count == 0
