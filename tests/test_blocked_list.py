"""Tests for the blocked sorted sequence (leaf lists L_z)."""

import pytest

from repro.io import BlockStore
from repro.io.stats import Meter
from repro.substrates.blocked_list import BlockedSequence


def key(rec):
    return rec[1]


def _mk(store, recs):
    ordered = sorted(recs, key=lambda r: (r[1], r), reverse=True)
    return BlockedSequence.from_sorted(store, ordered, key)


RECS = [((i, i % 7), float(i % 7)) for i in range(40)]


class TestBuild:
    def test_from_sorted_round_trips(self, store):
        seq = _mk(store, RECS)
        seq.check_invariants()
        assert sorted(seq.scan_all()) == sorted(RECS)
        assert seq.count() == len(RECS)

    def test_empty(self, store):
        seq = BlockedSequence.from_sorted(store, [], key)
        assert seq.is_empty()
        assert seq.peek_top() is None
        assert seq.pop_top() is None

    def test_unsorted_input_detected_by_invariants(self, store):
        seq = BlockedSequence.from_sorted(store, [((1, 1), 1.0), ((2, 9), 9.0)], key)
        with pytest.raises(AssertionError):
            seq.check_invariants()

    def test_attach_reopens(self, store):
        seq = _mk(store, RECS)
        again = BlockedSequence.attach(store, seq.dir_bid, key)
        assert sorted(again.scan_all()) == sorted(RECS)

    def test_oversized_build_rejected(self):
        store = BlockStore(4)
        recs = [((i, 0), float(i)) for i in range(40, 0, -1)]
        with pytest.raises(ValueError):
            BlockedSequence.from_sorted(store, recs, key)


class TestOps:
    def test_insert_maintains_order(self, store, rng):
        seq = BlockedSequence.from_sorted(store, [], key)
        recs = [((i, 0), rng.uniform(0, 100)) for i in range(60)]
        for r in recs:
            seq.insert(r)
            seq.check_invariants()
        assert sorted(seq.scan_all()) == sorted(recs)

    def test_insert_io_constant(self, store):
        seq = _mk(store, RECS)
        with Meter(store) as m:
            seq.insert(((99, 99), 3.5))
        assert m.delta.ios <= 5

    def test_pop_top_order(self, store):
        seq = _mk(store, RECS)
        popped = [seq.pop_top() for _ in range(len(RECS))]
        keys = [key(r) for r in popped]
        assert keys == sorted(keys, reverse=True)
        assert seq.is_empty()

    def test_peek_does_not_remove(self, store):
        seq = _mk(store, RECS)
        assert seq.peek_top() == seq.peek_top()
        assert seq.count() == len(RECS)

    def test_remove_present_and_absent(self, store):
        seq = _mk(store, RECS)
        assert seq.remove(RECS[5])
        assert not seq.remove(RECS[5])
        assert seq.count() == len(RECS) - 1

    def test_remove_with_duplicate_keys(self, store):
        """Records share keys (y ties); each remove hits one record."""
        recs = [((i, 0), 1.0) for i in range(20)]
        seq = BlockedSequence.from_sorted(
            store, sorted(recs, key=lambda r: (r[1], r), reverse=True), key
        )
        for r in recs:
            assert seq.remove(r)
        assert seq.is_empty()

    def test_scan_top_while(self, store):
        seq = _mk(store, RECS)
        got, blocks = seq.scan_top_while(lambda r: r[1] >= 4.0)
        assert sorted(got) == sorted(r for r in RECS if r[1] >= 4.0)
        # data blocks are built half full, plus one block for the failure
        assert blocks <= -(-len(got) // (store.block_size // 2)) + 1

    def test_scan_top_while_nothing(self, store):
        seq = _mk(store, RECS)
        got, blocks = seq.scan_top_while(lambda r: r[1] >= 100.0)
        assert got == [] and blocks <= 1

    def test_destroy_frees_all(self):
        store = BlockStore(16)
        seq = _mk(store, RECS)
        seq.destroy()
        assert store.blocks_in_use == 0

    def test_num_blocks(self, store):
        seq = _mk(store, RECS)
        # half-filled data blocks + directory
        assert seq.num_blocks() == -(-len(RECS) // (store.block_size // 2)) + 1
