"""Unit tests for the LRU buffer pool (repro.io.bufferpool)."""

import pytest

from repro.io import BlockStore, BufferPool, StorageError


def _mk(capacity=2, B=4):
    store = BlockStore(B)
    pool = BufferPool(store, capacity)
    return store, pool


class TestCaching:
    def test_repeat_read_hits_cache(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        base = store.stats.reads
        pool.read(bid)
        assert store.stats.reads == base
        assert pool.hits == 1

    def test_lru_eviction_order(self):
        store, pool = _mk(capacity=2)
        bids = [store.alloc() for _ in range(3)]
        for b in bids:
            store.write(b, [b])
        pool.read(bids[0])
        pool.read(bids[1])
        pool.read(bids[2])        # evicts bids[0]
        base = store.stats.reads
        pool.read(bids[1])        # still cached
        assert store.stats.reads == base
        pool.read(bids[0])        # miss
        assert store.stats.reads == base + 1

    def test_write_back_on_eviction(self):
        store, pool = _mk(capacity=1)
        a, b = store.alloc(), store.alloc()
        store.write(a, [0])
        store.write(b, [0])
        base_writes = store.stats.writes
        pool.write(a, [42])               # cached dirty, no physical write
        assert store.stats.writes == base_writes
        pool.read(b)                      # evicts a -> physical write
        assert store.stats.writes == base_writes + 1
        assert store.peek(a) == [42]

    def test_flush_writes_dirty_frames(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.write(bid, [7])
        pool.flush()
        assert store.peek(bid) == [7]

    def test_capacity_zero_is_write_through(self):
        store, pool = _mk(capacity=0)
        bid = store.alloc()
        pool.write(bid, [5])
        assert store.peek(bid) == [5]
        base = store.stats.reads
        pool.read(bid)
        pool.read(bid)
        assert store.stats.reads == base + 2  # nothing cached

    def test_read_returns_fresh_copy(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        blk = pool.read(bid)
        blk.records.append(2)
        assert pool.read(bid).records == [1]


class TestPinning:
    def test_pinned_reads_are_free(self):
        store, pool = _mk(capacity=1)
        bid = store.alloc()
        store.write(bid, [1])
        pool.pin(bid)
        base = store.stats.reads
        for _ in range(5):
            pool.read(bid)
        assert store.stats.reads == base

    def test_pinned_survives_eviction_pressure(self):
        store, pool = _mk(capacity=1)
        pinned = store.alloc()
        store.write(pinned, [1])
        pool.pin(pinned)
        for _ in range(5):
            other = store.alloc()
            store.write(other, [0])
            pool.read(other)
        base = store.stats.reads
        pool.read(pinned)
        assert store.stats.reads == base

    def test_unpin_writes_back_dirty(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        pool.write(bid, [9])
        pool.unpin(bid)
        assert store.peek(bid) == [9]

    def test_cannot_free_pinned(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        with pytest.raises(StorageError):
            pool.free(bid)

    def test_close_unpins_everything(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        pool.write(bid, [3])
        pool.close()
        assert pool.pinned_blocks == []
        assert store.peek(bid) == [3]


class TestProtocolParity:
    def test_alloc_passthrough(self):
        store, pool = _mk()
        bid = pool.alloc()
        assert store.blocks_in_use == 1
        pool.write(bid, [1])
        assert pool.read(bid).records == [1]

    def test_free_drops_cached_frame(self):
        store, pool = _mk()
        bid = pool.alloc()
        pool.write(bid, [1])
        pool.free(bid)
        with pytest.raises(StorageError):
            pool.read(bid)

    def test_hit_rate(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        pool.read(bid)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_block_size_passthrough(self):
        store, pool = _mk(B=8)
        assert pool.block_size == 8


def _mk_faulty(capacity=1, B=4):
    """A pool over a fault-injectable store; faults start disabled and
    are toggled by mutating the schedule's rates mid-test."""
    from repro.resilience import FaultSchedule, FaultyStore

    raw = BlockStore(B)
    schedule = FaultSchedule(0)
    pool = BufferPool(FaultyStore(raw, schedule), capacity)
    return raw, schedule, pool


class TestWriteFailureSemantics:
    """A failed write-back must never lose the dirty frame."""

    def test_eviction_flush_failure_keeps_dirty_frame(self):
        from repro.resilience import TransientIOError

        raw, schedule, pool = _mk_faulty(capacity=1)
        a, b = raw.alloc(), raw.alloc()
        raw.write(a, ["old"])
        raw.write(b, ["other"])
        pool.write(a, ["new"])          # dirty frame, cached only
        schedule.write_error_rate = 1.0
        with pytest.raises(TransientIOError):
            pool.read(b)                # eviction flush of a fails
        assert raw.peek(a) == ["old"]   # disk untouched
        # the frame survived: a cache read still serves the new data
        base = raw.stats.reads
        assert pool.read(a).records == ["new"]
        assert raw.stats.reads == base
        schedule.write_error_rate = 0.0
        pool.flush()                    # still marked dirty => flushed
        assert raw.peek(a) == ["new"]

    def test_flush_failure_keeps_exactly_unflushed_frames_dirty(self):
        from repro.resilience import TransientIOError

        raw, schedule, pool = _mk_faulty(capacity=4)
        bids = [raw.alloc() for _ in range(3)]
        for bid in bids:
            raw.write(bid, ["old"])
        for bid in bids:
            pool.write(bid, ["new"])
        schedule.write_error_rate = 1.0
        with pytest.raises(TransientIOError):
            pool.flush()                 # dies on the first dirty frame
        schedule.write_error_rate = 0.0
        pool.flush()                     # the rest are still dirty
        for bid in bids:
            assert raw.peek(bid) == ["new"]

    def test_unpin_failure_keeps_block_pinned_dirty(self):
        from repro.resilience import TransientIOError

        raw, schedule, pool = _mk_faulty(capacity=2)
        bid = raw.alloc()
        raw.write(bid, ["old"])
        pool.pin(bid)
        pool.write(bid, ["new"])
        schedule.write_error_rate = 1.0
        with pytest.raises(TransientIOError):
            pool.unpin(bid)
        assert bid in pool.pinned_blocks   # still resident
        assert raw.peek(bid) == ["old"]
        schedule.write_error_rate = 0.0
        pool.unpin(bid)
        assert raw.peek(bid) == ["new"]

    def test_free_failure_keeps_cached_frame(self):
        from repro.resilience import SimulatedCrash

        raw, schedule, pool = _mk_faulty(capacity=2)
        bid = raw.alloc()
        raw.write(bid, ["old"])
        pool.write(bid, ["new"])
        schedule.crash_at_ops.add(schedule.ops_seen)  # die on the free
        with pytest.raises(SimulatedCrash):
            pool.free(bid)
        # frame and dirty mark intact; the block is still allocated
        assert pool.read(bid).records == ["new"]
        pool.flush()
        assert raw.peek(bid) == ["new"]
        pool.free(bid)  # crash site consumed: succeeds


class TestObserverParity:
    def test_pool_observer_detached_mid_run_stops_firing(self):
        store, pool = _mk(capacity=1)
        events = []
        pool.add_observer(lambda op, bid: events.append((op, bid)))
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)                       # miss
        assert events == [("miss", bid)]
        cb = pool._observers[0]
        pool.remove_observer(cb)
        pool.read(bid)                       # hit, but nobody listens
        assert events == [("miss", bid)]
        pool.remove_observer(cb)             # double-remove is a no-op

    def test_pool_and_store_observers_are_independent_layers(self):
        store, pool = _mk(capacity=1)
        pool_events, store_events = [], []

        def pool_cb(op, bid):
            pool_events.append(op)

        def store_cb(op, bid):
            store_events.append(op)

        pool.add_observer(pool_cb)
        store.add_observer(store_cb)
        bid = pool.alloc()
        pool.write(bid, [1])
        pool.read(bid)
        store.remove_observer(store_cb)
        pool.read(bid)
        assert "hit" in pool_events          # pool layer saw cache events
        assert "alloc" in store_events       # store layer saw physical ops
        assert "hit" not in store_events     # layers never cross
        n = len(store_events)
        pool.read(bid)
        assert len(store_events) == n        # detached: no more events
