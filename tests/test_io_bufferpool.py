"""Unit tests for the LRU buffer pool (repro.io.bufferpool)."""

import pytest

from repro.io import BlockStore, BufferPool, StorageError


def _mk(capacity=2, B=4):
    store = BlockStore(B)
    pool = BufferPool(store, capacity)
    return store, pool


class TestCaching:
    def test_repeat_read_hits_cache(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        base = store.stats.reads
        pool.read(bid)
        assert store.stats.reads == base
        assert pool.hits == 1

    def test_lru_eviction_order(self):
        store, pool = _mk(capacity=2)
        bids = [store.alloc() for _ in range(3)]
        for b in bids:
            store.write(b, [b])
        pool.read(bids[0])
        pool.read(bids[1])
        pool.read(bids[2])        # evicts bids[0]
        base = store.stats.reads
        pool.read(bids[1])        # still cached
        assert store.stats.reads == base
        pool.read(bids[0])        # miss
        assert store.stats.reads == base + 1

    def test_write_back_on_eviction(self):
        store, pool = _mk(capacity=1)
        a, b = store.alloc(), store.alloc()
        store.write(a, [0])
        store.write(b, [0])
        base_writes = store.stats.writes
        pool.write(a, [42])               # cached dirty, no physical write
        assert store.stats.writes == base_writes
        pool.read(b)                      # evicts a -> physical write
        assert store.stats.writes == base_writes + 1
        assert store.peek(a) == [42]

    def test_flush_writes_dirty_frames(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.write(bid, [7])
        pool.flush()
        assert store.peek(bid) == [7]

    def test_capacity_zero_is_write_through(self):
        store, pool = _mk(capacity=0)
        bid = store.alloc()
        pool.write(bid, [5])
        assert store.peek(bid) == [5]
        base = store.stats.reads
        pool.read(bid)
        pool.read(bid)
        assert store.stats.reads == base + 2  # nothing cached

    def test_read_returns_fresh_copy(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        blk = pool.read(bid)
        blk.records.append(2)
        assert pool.read(bid).records == [1]


class TestPinning:
    def test_pinned_reads_are_free(self):
        store, pool = _mk(capacity=1)
        bid = store.alloc()
        store.write(bid, [1])
        pool.pin(bid)
        base = store.stats.reads
        for _ in range(5):
            pool.read(bid)
        assert store.stats.reads == base

    def test_pinned_survives_eviction_pressure(self):
        store, pool = _mk(capacity=1)
        pinned = store.alloc()
        store.write(pinned, [1])
        pool.pin(pinned)
        for _ in range(5):
            other = store.alloc()
            store.write(other, [0])
            pool.read(other)
        base = store.stats.reads
        pool.read(pinned)
        assert store.stats.reads == base

    def test_unpin_writes_back_dirty(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        pool.write(bid, [9])
        pool.unpin(bid)
        assert store.peek(bid) == [9]

    def test_cannot_free_pinned(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        with pytest.raises(StorageError):
            pool.free(bid)

    def test_close_unpins_everything(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        pool.write(bid, [3])
        pool.close()
        assert pool.pinned_blocks == []
        assert store.peek(bid) == [3]


class TestProtocolParity:
    def test_alloc_passthrough(self):
        store, pool = _mk()
        bid = pool.alloc()
        assert store.blocks_in_use == 1
        pool.write(bid, [1])
        assert pool.read(bid).records == [1]

    def test_free_drops_cached_frame(self):
        store, pool = _mk()
        bid = pool.alloc()
        pool.write(bid, [1])
        pool.free(bid)
        with pytest.raises(StorageError):
            pool.read(bid)

    def test_hit_rate(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        pool.read(bid)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_block_size_passthrough(self):
        store, pool = _mk(B=8)
        assert pool.block_size == 8


def _mk_faulty(capacity=1, B=4):
    """A pool over a fault-injectable store; faults start disabled and
    are toggled by mutating the schedule's rates mid-test."""
    from repro.resilience import FaultSchedule, FaultyStore

    raw = BlockStore(B)
    schedule = FaultSchedule(0)
    pool = BufferPool(FaultyStore(raw, schedule), capacity)
    return raw, schedule, pool


class TestWriteFailureSemantics:
    """A failed write-back must never lose the dirty frame."""

    def test_eviction_flush_failure_keeps_dirty_frame(self):
        from repro.resilience import TransientIOError

        raw, schedule, pool = _mk_faulty(capacity=1)
        a, b = raw.alloc(), raw.alloc()
        raw.write(a, ["old"])
        raw.write(b, ["other"])
        pool.write(a, ["new"])          # dirty frame, cached only
        schedule.write_error_rate = 1.0
        with pytest.raises(TransientIOError):
            pool.read(b)                # eviction flush of a fails
        assert raw.peek(a) == ["old"]   # disk untouched
        # the frame survived: a cache read still serves the new data
        base = raw.stats.reads
        assert pool.read(a).records == ["new"]
        assert raw.stats.reads == base
        schedule.write_error_rate = 0.0
        pool.flush()                    # still marked dirty => flushed
        assert raw.peek(a) == ["new"]

    def test_flush_failure_keeps_exactly_unflushed_frames_dirty(self):
        from repro.resilience import TransientIOError

        raw, schedule, pool = _mk_faulty(capacity=4)
        bids = [raw.alloc() for _ in range(3)]
        for bid in bids:
            raw.write(bid, ["old"])
        for bid in bids:
            pool.write(bid, ["new"])
        schedule.write_error_rate = 1.0
        with pytest.raises(TransientIOError):
            pool.flush()                 # dies on the first dirty frame
        schedule.write_error_rate = 0.0
        pool.flush()                     # the rest are still dirty
        for bid in bids:
            assert raw.peek(bid) == ["new"]

    def test_unpin_failure_keeps_block_pinned_dirty(self):
        from repro.resilience import TransientIOError

        raw, schedule, pool = _mk_faulty(capacity=2)
        bid = raw.alloc()
        raw.write(bid, ["old"])
        pool.pin(bid)
        pool.write(bid, ["new"])
        schedule.write_error_rate = 1.0
        with pytest.raises(TransientIOError):
            pool.unpin(bid)
        assert bid in pool.pinned_blocks   # still resident
        assert raw.peek(bid) == ["old"]
        schedule.write_error_rate = 0.0
        pool.unpin(bid)
        assert raw.peek(bid) == ["new"]

    def test_free_failure_keeps_cached_frame(self):
        from repro.resilience import SimulatedCrash

        raw, schedule, pool = _mk_faulty(capacity=2)
        bid = raw.alloc()
        raw.write(bid, ["old"])
        pool.write(bid, ["new"])
        schedule.crash_at_ops.add(schedule.ops_seen)  # die on the free
        with pytest.raises(SimulatedCrash):
            pool.free(bid)
        # frame and dirty mark intact; the block is still allocated
        assert pool.read(bid).records == ["new"]
        pool.flush()
        assert raw.peek(bid) == ["new"]
        pool.free(bid)  # crash site consumed: succeeds


class TestObserverParity:
    def test_pool_observer_detached_mid_run_stops_firing(self):
        store, pool = _mk(capacity=1)
        events = []
        pool.add_observer(lambda op, bid: events.append((op, bid)))
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)                       # miss
        assert events == [("miss", bid)]
        cb = pool._observers[0]
        pool.remove_observer(cb)
        pool.read(bid)                       # hit, but nobody listens
        assert events == [("miss", bid)]
        pool.remove_observer(cb)             # double-remove is a no-op

    def test_pool_and_store_observers_are_independent_layers(self):
        store, pool = _mk(capacity=1)
        pool_events, store_events = [], []

        def pool_cb(op, bid):
            pool_events.append(op)

        def store_cb(op, bid):
            store_events.append(op)

        pool.add_observer(pool_cb)
        store.add_observer(store_cb)
        bid = pool.alloc()
        pool.write(bid, [1])
        pool.read(bid)
        store.remove_observer(store_cb)
        pool.read(bid)
        assert "hit" in pool_events          # pool layer saw cache events
        assert "alloc" in store_events       # store layer saw physical ops
        assert "hit" not in store_events     # layers never cross
        n = len(store_events)
        pool.read(bid)
        assert len(store_events) == n        # detached: no more events


# ---------------------------------------------------------------------------
# Policy-pluggable pool: eviction guard, over-capacity writes, 2Q/CLOCK
# behaviour, readahead, coalescing, copy-on-write hits.
# ---------------------------------------------------------------------------

from repro.io import (  # noqa: E402
    BlockCapacityError,
    ClockPolicy,
    CowRecords,
    LRUPolicy,
    ReplacementPolicy,
    TwoQPolicy,
    make_policy,
)


class _ExhaustedPolicy(ReplacementPolicy):
    """A policy that tracks frames but refuses to name a victim."""

    name = "exhausted"

    def __init__(self, capacity):
        super().__init__(capacity)
        self._members = set()

    def record_insert(self, bid):
        self._members.add(bid)

    def record_hit(self, bid):
        pass

    def peek_victim(self):
        return None

    def record_remove(self, bid):
        self._members.discard(bid)

    def clear(self):
        self._members.clear()


class TestEvictionGuard:
    """_evict_to_fit must fail loudly, never spin, when nothing is
    evictable (satellite 1: the infinite-loop hazard)."""

    def test_no_evictable_frame_raises(self):
        store = BlockStore(4)
        pool = BufferPool(store, 1, policy=_ExhaustedPolicy(1))
        a, b = store.alloc(), store.alloc()
        store.write(a, [1])
        store.write(b, [2])
        pool.read(a)                    # fills the single frame
        with pytest.raises(BlockCapacityError):
            pool.read(b)                # needs a victim; policy has none

    def test_error_names_the_pressure(self):
        store = BlockStore(4)
        pool = BufferPool(store, 1, policy=_ExhaustedPolicy(1))
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        other = store.alloc()
        with pytest.raises(BlockCapacityError, match="none evictable"):
            pool.write(other, [2])

    def test_pool_and_store_state_survive_the_raise(self):
        store = BlockStore(4)
        pool = BufferPool(store, 1, policy=_ExhaustedPolicy(1))
        a, b = store.alloc(), store.alloc()
        store.write(a, [1])
        store.write(b, [2])
        pool.read(a)
        with pytest.raises(BlockCapacityError):
            pool.read(b)
        # the resident frame still serves hits; the store is untouched
        base = store.stats.reads
        assert pool.read(a).records == [1]
        assert store.stats.reads == base
        assert store.peek(b) == [2]

    def test_pinning_never_consumes_frame_capacity(self):
        """Pinned blocks live outside the frame table, so heavy pinning
        cannot create the none-evictable deadlock under normal policies."""
        store = BlockStore(4)
        pool = BufferPool(store, 1)
        pins = [store.alloc() for _ in range(4)]
        for bid in pins:
            store.write(bid, [bid])
            pool.pin(bid)
        # frame capacity is still fully available
        extra = store.alloc()
        store.write(extra, [99])
        pool.read(extra)
        assert pool.read(extra).records == [99]


class TestOverCapacityWrite:
    """Satellite 2: an over-capacity write must raise BEFORE any frame
    table mutation or physical traffic."""

    def test_raises_block_capacity_error(self):
        store, pool = _mk(capacity=2, B=4)
        bid = store.alloc()
        with pytest.raises(BlockCapacityError):
            pool.write(bid, [0, 1, 2, 3, 4])

    def test_frame_table_unchanged_after_raise(self):
        store, pool = _mk(capacity=2, B=4)
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)                      # cached clean
        with pytest.raises(BlockCapacityError):
            pool.write(bid, list(range(5)))
        # the cached frame kept its old contents and is not dirty
        base = store.stats.writes
        pool.flush()
        assert store.stats.writes == base   # nothing was dirtied
        assert pool.read(bid).records == [1]

    def test_uncached_block_stays_uncached(self):
        store, pool = _mk(capacity=2, B=4)
        bid = store.alloc()
        store.write(bid, [7])
        with pytest.raises(BlockCapacityError):
            pool.write(bid, list(range(9)))
        base = store.stats.reads
        assert pool.read(bid).records == [7]
        assert store.stats.reads == base + 1   # was never admitted

    def test_pinned_block_keeps_old_records(self):
        store, pool = _mk(capacity=2, B=4)
        bid = store.alloc()
        store.write(bid, [1])
        pool.pin(bid)
        with pytest.raises(BlockCapacityError):
            pool.write(bid, list(range(5)))
        assert pool.read(bid).records == [1]
        pool.unpin(bid)
        assert store.peek(bid) == [1]       # never marked pinned-dirty

    def test_write_through_pool_never_touches_store(self):
        store, pool = _mk(capacity=0, B=4)
        bid = store.alloc()
        base = store.stats.writes
        with pytest.raises(BlockCapacityError):
            pool.write(bid, list(range(5)))
        assert store.stats.writes == base


class TestTwoQBehaviour:
    def test_scan_does_not_displace_protected_blocks(self):
        """The headline property: promoted hot blocks survive a flood of
        first-touch blocks larger than the pool."""
        store = BlockStore(4)
        pool = BufferPool(store, 8, policy="2q")
        hot = [store.alloc() for _ in range(2)]
        for bid in hot:
            store.write(bid, [bid])
        # touch, evict through A1in into the ghost, touch again -> Am
        for bid in hot:
            pool.read(bid)
        # enough first-touch traffic to push the hot pair out of A1in
        # (but not out of the bounded ghost queue)
        flood1 = [store.alloc() for _ in range(8)]
        for bid in flood1:
            store.write(bid, [bid])
            pool.read(bid)
        for bid in hot:
            pool.read(bid)              # ghost re-admission -> protected
        snap = pool.policy.snapshot()
        assert snap["am"] == len(hot)
        # now a fresh scan flood: hot blocks must remain resident
        flood2 = [store.alloc() for _ in range(12)]
        for bid in flood2:
            store.write(bid, [bid])
            pool.read(bid)
        base = store.stats.reads
        for bid in hot:
            pool.read(bid)
        assert store.stats.reads == base    # all hits: scan resistance

    def test_a1in_hits_do_not_promote(self):
        pol = TwoQPolicy(8)
        pol.record_insert(1)
        pol.record_hit(1)               # correlated touch while probationary
        assert pol.snapshot() == {"a1in": 1, "a1out": 0, "am": 0}

    def test_ghost_readmission_promotes(self):
        pol = TwoQPolicy(8)
        pol.record_insert(1)
        assert pol.peek_victim() == 1
        pol.evicted(1)
        assert pol.snapshot()["a1out"] == 1
        pol.record_insert(1)            # back from the ghost queue
        assert pol.snapshot() == {"a1in": 0, "a1out": 0, "am": 1}

    def test_ghost_queue_is_bounded(self):
        pol = TwoQPolicy(4, kout=2)
        for bid in range(5):
            pol.record_insert(bid)
            pol.evicted(bid)
        assert pol.snapshot()["a1out"] == 2

    def test_record_remove_forgets_the_ghost(self):
        pol = TwoQPolicy(8)
        pol.record_insert(1)
        pol.evicted(1)                  # ghosted
        pol.record_remove(1)            # freed: id may be re-allocated
        pol.record_insert(1)
        assert pol.snapshot()["am"] == 0    # no spurious promotion

    def test_victim_prefers_overfull_a1in(self):
        pol = TwoQPolicy(8)             # kin = 2
        pol.record_insert(1)
        pol.evicted(1)
        pol.record_insert(1)            # 1 -> Am
        for bid in (2, 3, 4):
            pol.record_insert(bid)      # A1in over its share
        assert pol.peek_victim() == 2   # FIFO head of A1in, not Am


class TestClockBehaviour:
    def test_referenced_frame_gets_second_chance(self):
        pol = ClockPolicy(4)
        pol.record_insert(1)
        pol.record_insert(2)
        pol.record_hit(1)               # ref bit set
        assert pol.peek_victim() == 2   # hand skips 1, clears its bit

    def test_full_rotation_falls_back(self):
        pol = ClockPolicy(4)
        for bid in (1, 2):
            pol.record_insert(bid)
            pol.record_hit(bid)
        victim = pol.peek_victim()      # every bit set: sweep clears all
        assert victim in (1, 2)

    def test_pool_end_to_end_with_clock(self):
        store = BlockStore(4)
        pool = BufferPool(store, 2, policy="clock")
        bids = [store.alloc() for _ in range(3)]
        for bid in bids:
            store.write(bid, [bid])
        pool.read(bids[0])
        pool.read(bids[1])
        pool.read(bids[0])              # second chance for bids[0]
        pool.read(bids[2])              # must evict bids[1]
        base = store.stats.reads
        pool.read(bids[0])
        assert store.stats.reads == base


class TestMakePolicy:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("mru", 4)

    def test_accepts_class_and_instance(self):
        assert isinstance(make_policy(LRUPolicy, 4), LRUPolicy)
        inst = TwoQPolicy(4)
        assert make_policy(inst, 99) is inst

    def test_pool_rejects_negative_window(self):
        store = BlockStore(4)
        with pytest.raises(ValueError):
            BufferPool(store, 4, readahead_window=-1)


class TestReadahead:
    def _chain(self, store, n=5):
        bids = [store.alloc() for _ in range(n)]
        for bid in bids:
            store.write(bid, [bid])
        return bids

    def test_hint_plus_miss_prefetches_chain(self):
        store = BlockStore(4)
        pool = BufferPool(store, 8, readahead_window=3)
        bids = self._chain(store)
        pool.prefetch_hint(bids)
        base = store.stats.reads
        pool.read(bids[0])              # one logical miss ...
        assert store.stats.reads == base + 4   # ... four physical reads
        assert pool.prefetch_issued == 3
        # the prefetched frames now serve hits without I/O
        for bid in bids[1:4]:
            pool.read(bid)
        assert store.stats.reads == base + 4
        assert pool.prefetch_hits == 3
        assert pool.misses == 1

    def test_window_zero_ignores_hints(self):
        store = BlockStore(4)
        pool = BufferPool(store, 8)     # readahead off (default)
        bids = self._chain(store)
        pool.prefetch_hint(bids)
        base = store.stats.reads
        pool.read(bids[0])
        assert store.stats.reads == base + 1
        assert pool.prefetch_issued == 0

    def test_counter_identity_issued_eq_hits_plus_waste(self):
        store = BlockStore(4)
        pool = BufferPool(store, 8, readahead_window=4)
        bids = self._chain(store)
        pool.prefetch_hint(bids)
        pool.read(bids[0])              # prefetches 1..4
        pool.read(bids[1])              # hit
        pool.drop()                     # 2..4 never touched -> waste
        assert pool.prefetch_issued == 4
        assert pool.prefetch_hits == 1
        assert pool.prefetch_waste == 3

    def test_overwrite_before_read_counts_as_waste(self):
        store = BlockStore(4)
        pool = BufferPool(store, 8, readahead_window=2)
        bids = self._chain(store, n=3)
        pool.prefetch_hint(bids)
        pool.read(bids[0])
        pool.write(bids[1], ["new"])    # clobbered before any read
        assert pool.prefetch_waste == 1
        assert pool.read(bids[1]).records == ["new"]
        assert pool.prefetch_hits == 0  # the data fetched was never used

    def test_broken_chain_stops_cleanly(self):
        store = BlockStore(4)
        pool = BufferPool(store, 8, readahead_window=4)
        bids = self._chain(store, n=3)
        pool.prefetch_hint(bids)
        store.free(bids[2])             # chain tail vanishes
        pool.read(bids[0])
        assert pool.prefetch_issued == 1    # fetched bids[1], then stopped

    def test_cyclic_hints_cannot_loop(self):
        store = BlockStore(4)
        pool = BufferPool(store, 8, readahead_window=4)
        bids = self._chain(store, n=2)
        pool.prefetch_hint([bids[0], bids[1], bids[0]])   # a -> b -> a
        pool.read(bids[0])              # window budget bounds the walk
        assert pool.prefetch_issued <= 4

    def test_readahead_respects_capacity(self):
        store = BlockStore(4)
        pool = BufferPool(store, 2, readahead_window=4)
        bids = self._chain(store)
        pool.prefetch_hint(bids)
        pool.read(bids[0])
        # never more frames than capacity, whatever was prefetched
        assert pool.snapshot()["frames"] <= 2


class TestCoalescing:
    def test_eviction_drains_whole_dirty_set(self):
        store = BlockStore(4)
        pool = BufferPool(store, 3, coalesce_writes=True)
        bids = [store.alloc() for _ in range(4)]
        for bid in bids[:3]:
            pool.write(bid, [bid])      # three dirty frames
        base = store.stats.writes
        pool.read(bids[3])              # one eviction triggers the batch
        assert store.stats.writes == base + 3
        assert pool.coalesced_writes == 2   # leader + two riders
        for bid in bids[:3]:
            assert store.peek(bid) == [bid]

    def test_batch_goes_out_in_block_id_order(self):
        store = BlockStore(4)
        pool = BufferPool(store, 3, coalesce_writes=True)
        bids = [store.alloc() for _ in range(4)]
        order = []
        store.add_observer(
            lambda op, bid: order.append(bid) if op == "write" else None
        )
        for bid in reversed(bids[:3]):  # dirty in descending order
            pool.write(bid, [bid])
        pool.read(bids[3])
        assert order == sorted(bids[:3])

    def test_flush_counts_riders(self):
        store = BlockStore(4)
        pool = BufferPool(store, 4, coalesce_writes=True)
        bids = [store.alloc() for _ in range(3)]
        for bid in bids:
            pool.write(bid, [bid])
        pool.flush()
        assert pool.coalesced_writes == 2

    def test_mid_batch_failure_keeps_unflushed_dirty(self):
        from repro.resilience import FaultSchedule, FaultyStore, TransientIOError

        raw = BlockStore(4)
        schedule = FaultSchedule(0)
        pool = BufferPool(
            FaultyStore(raw, schedule), 3, coalesce_writes=True
        )
        bids = sorted(raw.alloc() for _ in range(3))
        for bid in bids:
            raw.write(bid, ["old"])
        for bid in bids:
            pool.write(bid, ["new"])
        # fail the SECOND write of the batch
        fired = []

        def arm(op, bid):
            if op == "write":
                fired.append(bid)
                if len(fired) == 1:
                    schedule.write_error_rate = 1.0

        raw.add_observer(arm)
        with pytest.raises(TransientIOError):
            pool.flush()
        schedule.write_error_rate = 0.0
        assert raw.peek(bids[0]) == ["new"]     # the leader landed
        assert raw.peek(bids[1]) == ["old"]     # the rest stayed dirty
        pool.flush()
        for bid in bids:
            assert raw.peek(bid) == ["new"]

    def test_off_by_default(self):
        store = BlockStore(4)
        pool = BufferPool(store, 3)
        bids = [store.alloc() for _ in range(4)]
        for bid in bids[:3]:
            pool.write(bid, [bid])
        base = store.stats.writes
        pool.read(bids[3])              # plain pool: only the victim
        assert store.stats.writes == base + 1
        assert pool.coalesced_writes == 0


class TestCowRecords:
    def test_readers_share_mutators_copy(self):
        backing = [1, 2, 3]
        cow = CowRecords(backing)
        assert cow.is_shared
        assert list(cow) == [1, 2, 3]
        assert len(cow) == 3 and cow[0] == 1 and 2 in cow
        cow.append(4)
        assert not cow.is_shared
        assert backing == [1, 2, 3]     # the frame never saw the append
        assert list(cow) == [1, 2, 3, 4]

    def test_equality_and_concat(self):
        cow = CowRecords([1, 2])
        assert cow == [1, 2]
        assert cow == CowRecords([1, 2])
        assert cow + [3] == [1, 2, 3]
        assert [0] + cow == [0, 1, 2]

    def test_pool_hits_are_zero_copy_when_store_skips_copies(self):
        store = BlockStore(4, copy_on_io=False)
        pool = BufferPool(store, 2)
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)                  # miss populates the frame
        blk = pool.read(bid)            # hit
        assert isinstance(blk.records, CowRecords)
        assert blk.records.is_shared
        blk.records.append(2)           # caller mutates their view ...
        assert pool.read(bid).records == [1]    # ... pool frame intact

    def test_defensive_pools_still_copy(self):
        store = BlockStore(4)           # copy_on_io=True (default)
        pool = BufferPool(store, 2)
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        blk = pool.read(bid)
        assert isinstance(blk.records, list)

    def test_explicit_override_beats_store_default(self):
        store = BlockStore(4)           # safe store ...
        pool = BufferPool(store, 2, copy_on_hit=False)   # ... fast pool
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        assert isinstance(pool.read(bid).records, CowRecords)
