"""Unit tests for the LRU buffer pool (repro.io.bufferpool)."""

import pytest

from repro.io import BlockStore, BufferPool, StorageError


def _mk(capacity=2, B=4):
    store = BlockStore(B)
    pool = BufferPool(store, capacity)
    return store, pool


class TestCaching:
    def test_repeat_read_hits_cache(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        base = store.stats.reads
        pool.read(bid)
        assert store.stats.reads == base
        assert pool.hits == 1

    def test_lru_eviction_order(self):
        store, pool = _mk(capacity=2)
        bids = [store.alloc() for _ in range(3)]
        for b in bids:
            store.write(b, [b])
        pool.read(bids[0])
        pool.read(bids[1])
        pool.read(bids[2])        # evicts bids[0]
        base = store.stats.reads
        pool.read(bids[1])        # still cached
        assert store.stats.reads == base
        pool.read(bids[0])        # miss
        assert store.stats.reads == base + 1

    def test_write_back_on_eviction(self):
        store, pool = _mk(capacity=1)
        a, b = store.alloc(), store.alloc()
        store.write(a, [0])
        store.write(b, [0])
        base_writes = store.stats.writes
        pool.write(a, [42])               # cached dirty, no physical write
        assert store.stats.writes == base_writes
        pool.read(b)                      # evicts a -> physical write
        assert store.stats.writes == base_writes + 1
        assert store.peek(a) == [42]

    def test_flush_writes_dirty_frames(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.write(bid, [7])
        pool.flush()
        assert store.peek(bid) == [7]

    def test_capacity_zero_is_write_through(self):
        store, pool = _mk(capacity=0)
        bid = store.alloc()
        pool.write(bid, [5])
        assert store.peek(bid) == [5]
        base = store.stats.reads
        pool.read(bid)
        pool.read(bid)
        assert store.stats.reads == base + 2  # nothing cached

    def test_read_returns_fresh_copy(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        blk = pool.read(bid)
        blk.records.append(2)
        assert pool.read(bid).records == [1]


class TestPinning:
    def test_pinned_reads_are_free(self):
        store, pool = _mk(capacity=1)
        bid = store.alloc()
        store.write(bid, [1])
        pool.pin(bid)
        base = store.stats.reads
        for _ in range(5):
            pool.read(bid)
        assert store.stats.reads == base

    def test_pinned_survives_eviction_pressure(self):
        store, pool = _mk(capacity=1)
        pinned = store.alloc()
        store.write(pinned, [1])
        pool.pin(pinned)
        for _ in range(5):
            other = store.alloc()
            store.write(other, [0])
            pool.read(other)
        base = store.stats.reads
        pool.read(pinned)
        assert store.stats.reads == base

    def test_unpin_writes_back_dirty(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        pool.write(bid, [9])
        pool.unpin(bid)
        assert store.peek(bid) == [9]

    def test_cannot_free_pinned(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        with pytest.raises(StorageError):
            pool.free(bid)

    def test_close_unpins_everything(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [0])
        pool.pin(bid)
        pool.write(bid, [3])
        pool.close()
        assert pool.pinned_blocks == []
        assert store.peek(bid) == [3]


class TestProtocolParity:
    def test_alloc_passthrough(self):
        store, pool = _mk()
        bid = pool.alloc()
        assert store.blocks_in_use == 1
        pool.write(bid, [1])
        assert pool.read(bid).records == [1]

    def test_free_drops_cached_frame(self):
        store, pool = _mk()
        bid = pool.alloc()
        pool.write(bid, [1])
        pool.free(bid)
        with pytest.raises(StorageError):
            pool.read(bid)

    def test_hit_rate(self):
        store, pool = _mk()
        bid = store.alloc()
        store.write(bid, [1])
        pool.read(bid)
        pool.read(bid)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_block_size_passthrough(self):
        store, pool = _mk(B=8)
        assert pool.block_size == 8
