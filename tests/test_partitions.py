"""Tests for the redundancy-1 partition schemes (open-problem probes)."""

import math

import pytest

from repro.geometry import ThreeSidedQuery
from repro.indexability.partitions import (
    PARTITIONS,
    partition_access_overhead,
    x_partition,
    y_partition,
    zorder_partition,
)
from tests.conftest import make_points


@pytest.mark.parametrize("name,build", list(PARTITIONS.items()))
class TestPartitionProperties:
    def test_is_a_partition(self, rng, name, build):
        """Every point in exactly one block; blocks within capacity."""
        pts = make_points(rng, 300)
        scheme = build(pts, 8)
        seen = []
        for blk in scheme.blocks:
            assert 0 < len(blk) <= 8
            seen.extend(blk)
        assert sorted(seen) == sorted(pts)      # no duplicates, no misses

    def test_redundancy_is_one(self, rng, name, build):
        """r = B*blocks/N <= 1 + rounding (partial blocks only)."""
        pts = make_points(rng, 256)
        scheme = build(pts, 8)
        waste = sum(8 - len(b) for b in scheme.blocks)
        assert scheme.num_blocks * 8 - waste == len(pts)
        # only grid tiles fragment blocks; others pack fully
        if name != "grid tiles":
            assert scheme.num_blocks <= math.ceil(len(pts) / 8)

    def test_empty_input(self, name, build):
        scheme = build([], 8)
        assert scheme.num_blocks == 0


class TestPartitionShapes:
    def test_x_partition_blocks_are_x_runs(self, rng):
        pts = make_points(rng, 64)
        scheme = x_partition(pts, 8)
        ordered = sorted(pts)
        for i, blk in enumerate(scheme.blocks):
            assert blk == frozenset(ordered[i * 8:(i + 1) * 8])

    def test_y_partition_blocks_are_y_runs(self, rng):
        pts = make_points(rng, 64)
        scheme = y_partition(pts, 8)
        ordered = sorted(pts, key=lambda p: (p[1], p[0]))
        for i, blk in enumerate(scheme.blocks):
            assert blk == frozenset(ordered[i * 8:(i + 1) * 8])

    def test_zorder_groups_are_spatially_local(self, rng):
        """Morton blocks have bounded diameter relative to random blocks."""
        pts = make_points(rng, 512)
        z = zorder_partition(pts, 8)

        def mean_diameter(scheme):
            total = 0.0
            for blk in scheme.blocks:
                xs = [p[0] for p in blk]
                ys = [p[1] for p in blk]
                total += (max(xs) - min(xs)) + (max(ys) - min(ys))
            return total / scheme.num_blocks

        # x-runs are thin in x but full-extent in y; z-order bounds both
        assert mean_diameter(z) < mean_diameter(x_partition(pts, 8))


class TestAccessOverhead:
    def test_exact_on_known_case(self):
        """Points on a column; y-partition answers a 3-sided query with
        the minimum possible blocks, x-partition with all of them."""
        pts = [(float(i), float(i)) for i in range(32)]
        B = 8
        q = ThreeSidedQuery(0, 31, 24.0)       # top 8 points
        ao_y = partition_access_overhead(y_partition(pts, B), pts, [q])
        ao_x = partition_access_overhead(x_partition(pts, B), pts, [q])
        assert ao_y == pytest.approx(1.0)
        assert ao_x == pytest.approx(1.0)       # diagonal: x-runs = y-runs
        # anti-diagonal breaks the x-partition
        pts2 = [(float(i), 31.0 - i) for i in range(32)]
        q2 = ThreeSidedQuery(0, 31, 24.0)
        ao_x2 = partition_access_overhead(x_partition(pts2, B), pts2, [q2])
        assert ao_x2 == pytest.approx(1.0)      # answer is one x-run here too

    def test_wide_slab_hurts_x_partition(self, rng):
        """A full-width slab with ~B answers touches ~N/B x-blocks."""
        pts = make_points(rng, 256)
        B = 8
        ys = sorted(p[1] for p in pts)
        q = ThreeSidedQuery(-1, 1001, ys[-B])
        ao = partition_access_overhead(x_partition(pts, B), pts, [q])
        assert ao > 4.0

    def test_empty_queries_ignored(self, rng):
        pts = make_points(rng, 64)
        q = ThreeSidedQuery(5000, 6000, 0)
        assert partition_access_overhead(x_partition(pts, 8), pts, [q]) == 0.0
