"""Larger-scale stress runs: invariants survive sustained churn.

These are slower than unit tests but still bounded (~30s total); they
exist to shake out slow-building corruption (registry leaks, stale
summaries, accounting drift) that short runs never reach.
"""

import random


from repro.io import BlockStore
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.range_tree import ExternalRangeTree
from repro.core.scheduling import CreditScheduler
from repro.substrates.av_interval_tree import SlabIntervalTree
from tests.conftest import brute_3sided, brute_4sided, make_points


class TestPSTStress:
    def test_sustained_churn_with_rebuilds(self):
        rng = random.Random(0xFEED)
        store = BlockStore(32)
        pts = make_points(rng, 5000)
        pst = ExternalPrioritySearchTree(store, pts)
        live = set(pts)
        for round_i in range(4):
            # delete a third, insert a third, verify
            victims = rng.sample(sorted(live), len(live) // 3)
            for p in victims:
                assert pst.delete(*p)
                live.discard(p)
            added = 0
            while added < len(victims):
                p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                if p not in live:
                    pst.insert(*p)
                    live.add(p)
                    added += 1
            for _ in range(10):
                a = rng.uniform(0, 1000)
                b = a + rng.uniform(0, 300)
                c = rng.uniform(0, 1000)
                assert sorted(pst.query(a, b, c)) == brute_3sided(live, a, b, c)
        pst.check_invariants()
        assert pst.count == len(live)

    def test_deferred_scheduler_sustained(self):
        rng = random.Random(0xBEEF)
        store = BlockStore(32)
        pst = ExternalPrioritySearchTree(store, scheduler=CreditScheduler())
        live = set()
        for i in range(6000):
            p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            if p in live:
                continue
            pst.insert(*p)
            live.add(p)
        pst.check_invariants(strict_ysets=False)
        for _ in range(15):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 300)
            c = rng.uniform(0, 1000)
            assert sorted(pst.query(a, b, c)) == brute_3sided(live, a, b, c)

    def test_space_stays_linear_under_churn(self):
        """Space after heavy churn stays within a constant of fresh-built
        space (no leak of blocks)."""
        rng = random.Random(0xACE)
        store = BlockStore(32)
        pts = make_points(rng, 3000)
        pst = ExternalPrioritySearchTree(store, pts)
        for _ in range(3000):
            p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
            if rng.random() < 0.5:
                pst.delete(*rng.choice(sorted(pst.all_points())[:50]))
            elif p not in set(pst.all_points()):
                pst.insert(*p)
        churned_blocks = store.blocks_in_use
        fresh_store = BlockStore(32)
        ExternalPrioritySearchTree(fresh_store, pst.all_points())
        fresh_blocks = fresh_store.blocks_in_use
        assert churned_blocks <= 3 * fresh_blocks + 50


class TestRangeTreeStress:
    def test_churn_through_global_rebuilds(self):
        rng = random.Random(0xCAFE)
        store = BlockStore(32)
        pts = make_points(rng, 1200)
        rt = ExternalRangeTree(store, pts)
        live = set(pts)
        for i in range(900):
            r = rng.random()
            if r < 0.5 and live:
                p = rng.choice(sorted(live))
                assert rt.delete(*p)
                live.discard(p)
            else:
                p = (rng.uniform(0, 1000), rng.uniform(0, 1000))
                if p not in live:
                    rt.insert(*p)
                    live.add(p)
        assert rt.rebuilds >= 1
        rt.check_invariants()
        for _ in range(10):
            a = rng.uniform(0, 1000)
            b = a + rng.uniform(0, 300)
            c = rng.uniform(0, 1000)
            d = c + rng.uniform(0, 300)
            assert sorted(rt.query(a, b, c, d)) == brute_4sided(live, a, b, c, d)


class TestSlabTreeStress:
    def test_churn_through_rebuild(self):
        rng = random.Random(0xD00D)
        ivs = set()
        while len(ivs) < 1500:
            l = rng.uniform(0, 5000)
            ivs.add((round(l, 3), round(l + rng.expovariate(1 / 100.0), 3)))
        tree = SlabIntervalTree(BlockStore(32), sorted(ivs))
        live = set(ivs)
        for i in range(1200):
            r = rng.random()
            if r < 0.5 and live:
                iv = rng.choice(sorted(live))
                assert tree.delete(*iv)
                live.discard(iv)
            else:
                l = rng.uniform(0, 5000)
                iv = (round(l, 3), round(l + rng.uniform(0, 1500), 3))
                if iv not in live:
                    tree.insert(*iv)
                    live.add(iv)
        assert tree.rebuilds >= 1
        tree.check_invariants()
        for _ in range(15):
            q = rng.uniform(-100, 7000)
            assert sorted(tree.stab(q)) == sorted(
                (l, r) for l, r in live if l <= q <= r
            )
