"""Serving tier: router, shards, batch executor, snapshots, admission.

Correctness baseline everywhere is a brute-force live-set oracle (the
"serial single-structure" reference): the sharded concurrent engine
must be observationally identical to one structure executing the trace
one op at a time.
"""

import random
import threading

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from tests.conftest import brute_3sided, brute_4sided, make_points
from repro.io.blockstore import StorageError
from repro.resilience import RetryPolicy
from repro.serve import (
    AdmissionController,
    EngineOverloaded,
    ReadWriteLock,
    ServingEngine,
    Shard,
    SlabRouter,
    SnapshotStore,
)
from repro.workloads.traces import generate_trace


def oracle_results(trace, initial):
    """Serial single-structure oracle: replay against a live set."""
    live = set(initial)
    out = []
    for kind, arg in trace:
        if kind == "ins":
            live.add(arg)
            out.append(None)
        elif kind == "del":
            out.append(arg in live)
            live.discard(arg)
        elif kind == "q3":
            out.append(brute_3sided(live, *arg))
        else:
            out.append(brute_4sided(live, *arg))
    return out, live


# ----------------------------------------------------------------------
# locks
# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = []
        barrier = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                barrier.wait()  # all three readers in simultaneously
                inside.append(1)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 3

    def test_writer_excludes(self):
        lock = ReadWriteLock()
        log = []

        def writer():
            with lock.write_locked():
                log.append("w-in")
                log.append("w-out")

        lock.acquire_read()
        t = threading.Thread(target=writer)
        t.start()
        # give the writer a chance to (wrongly) enter
        t.join(timeout=0.05)
        assert "w-in" not in log
        lock.release_read()
        t.join(timeout=5)
        assert log == ["w-in", "w-out"]

    def test_writer_preference(self):
        """A waiting writer blocks new readers from entering."""
        lock = ReadWriteLock()
        order = []
        lock.acquire_read()
        w = threading.Thread(
            target=lambda: (lock.acquire_write(), order.append("w"),
                            lock.release_write())
        )
        w.start()
        while not lock._writers_waiting:  # wait until the writer queues
            pass
        r = threading.Thread(
            target=lambda: (lock.acquire_read(), order.append("r"),
                            lock.release_read())
        )
        r.start()
        r.join(timeout=0.05)
        assert order == []  # the late reader must wait behind the writer
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert order == ["w", "r"]


# ----------------------------------------------------------------------
# router + shards
# ----------------------------------------------------------------------
class TestSlabRouter:
    def test_quantile_boundaries_balance(self, rng):
        pts = make_points(rng, 400)
        cuts = SlabRouter.quantile_boundaries(pts, 4)
        assert len(cuts) == 3
        assert cuts == sorted(cuts)

    def test_every_point_routed_once(self, rng):
        pts = make_points(rng, 300)
        eng = ServingEngine(pts, n_shards=5, block_size=16, backend="log")
        assert sum(sh.count for sh in eng.router.shards) == len(pts)
        for p in pts:
            owners = [sh for sh in eng.router.shards if sh.owns(p[0])]
            assert len(owners) == 1
            assert owners[0] is eng.router.shard_for_x(p[0])
        eng.close()

    def test_range_routing_covers(self, rng):
        pts = make_points(rng, 200)
        eng = ServingEngine(pts, n_shards=4, block_size=16, backend="log")
        router = eng.router
        for _ in range(50):
            a = rng.uniform(0, 900)
            b = a + rng.uniform(0, 300)
            touched = router.shards_for_range(a, b)
            for sh in router.shards:
                hits = [p for p in pts if sh.owns(p[0]) and a <= p[0] <= b]
                if hits:
                    assert sh in touched
        eng.close()

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ValueError):
            SlabRouter([], [1.0])

    def test_single_shard_degenerate(self, rng):
        pts = make_points(rng, 100)
        eng = ServingEngine(pts, n_shards=1, block_size=16, backend="log")
        assert eng.query3(0, 1000, 0) == sorted(pts)
        eng.close()


class TestShard:
    def test_spanned_query4_matches_boundary_path(self, rng):
        pts = make_points(rng, 150)
        sh = Shard(0, float("-inf"), float("inf"), block_size=16,
                   backend="log", points=pts)
        for _ in range(25):
            a, b = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
            c, d = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
            spanned = sorted(sh.query4(a, b, c, d, spanned=True))
            filtered = sorted(sh.query4(a, b, c, d, spanned=False))
            want = brute_4sided(pts, float("-inf"), float("inf"), c, d)
            assert spanned == want  # spanned path ignores x on purpose
            assert filtered == brute_4sided(pts, a, b, c, d)

    def test_spanned_query4_costs_no_io(self, rng):
        pts = make_points(rng, 200)
        sh = Shard(0, float("-inf"), float("inf"), block_size=16,
                   backend="log", points=pts)
        before = sh.base_store.stats.copy()
        sh.query4(0, 1000, 100, 900, spanned=True)
        assert (sh.base_store.stats - before).ios == 0

    def test_duplicate_insert_refused(self):
        sh = Shard(0, float("-inf"), float("inf"), block_size=16,
                   backend="log", points=[(1.0, 2.0)])
        assert not sh.insert((1.0, 2.0))
        assert sh.count == 1
        assert sh.insert((3.0, 4.0))
        assert sh.count == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Shard(0, 0.0, 1.0, backend="btree")


# ----------------------------------------------------------------------
# batch executor vs serial oracle
# ----------------------------------------------------------------------
class TestBatchExecutor:
    @pytest.mark.parametrize("backend", ["pst", "log"])
    def test_batch_equals_oracle_small(self, rng, backend):
        pts = make_points(rng, 300)
        trace = generate_trace(250, seed=21, q4_weight=0.2, initial=pts)
        eng = ServingEngine(pts, n_shards=4, block_size=16, backend=backend)
        got = eng.execute(trace)
        want, final = oracle_results(trace, pts)
        assert got.results == want
        assert eng.all_points() == sorted(final)
        eng.close()

    def test_batch_equals_serial_executor(self, rng):
        pts = make_points(rng, 400)
        trace = generate_trace(300, seed=22, q4_weight=0.15, initial=pts)
        e1 = ServingEngine(pts, n_shards=4, block_size=16, backend="log")
        e2 = ServingEngine(pts, n_shards=4, block_size=16, backend="log")
        assert e1.execute(trace).results == e2.execute_serial(trace).results
        e1.close()
        e2.close()

    def test_acceptance_20k_points_mixed_trace(self):
        """Acceptance: 4 shards, 20k points, mixed trace == serial oracle."""
        rng = random.Random(99)
        pts = list({
            (round(rng.uniform(0, 1000), 4), round(rng.uniform(0, 1000), 4))
            for _ in range(20_000)
        })
        trace = generate_trace(
            800, seed=23, q4_weight=0.2, initial=pts, mix=(0.35, 0.25, 0.2)
        )
        eng = ServingEngine(pts, n_shards=4, block_size=32, backend="log")
        got = eng.execute(trace)
        want, final = oracle_results(trace, pts)
        assert got.results == want
        assert eng.count == len(final)
        eng.close()

    def test_multi_shard_query_merges_sorted(self, rng):
        pts = make_points(rng, 300)
        eng = ServingEngine(pts, n_shards=4, block_size=16, backend="log")
        res = eng.execute([("q3", (0.0, 1000.0, 0.0))]).results[0]
        assert res == sorted(pts)
        assert res == sorted(res)
        eng.close()

    def test_empty_batch(self, rng):
        eng = ServingEngine(make_points(rng, 50), n_shards=2,
                            block_size=16, backend="log")
        out = eng.execute([])
        assert out.results == [] and out.n_ops == 0
        eng.close()

    def test_unknown_op_kind(self, rng):
        eng = ServingEngine(make_points(rng, 50), n_shards=2,
                            block_size=16, backend="log")
        with pytest.raises(ValueError):
            eng.execute([("upsert", (1.0, 2.0))])
        eng.close()

    def test_faulty_shards_recover_transients(self, rng):
        """Per-shard fault injection + retry stays invisible to callers."""
        pts = make_points(rng, 200)
        trace = generate_trace(150, seed=25, q4_weight=0.1, initial=pts)
        eng = ServingEngine(
            pts, n_shards=3, block_size=16, backend="log",
            fault_seed=5,
            fault_rates={"read_error_rate": 0.01, "transient_fraction": 1.0},
            retry_policy=RetryPolicy(max_attempts=6),
        )
        want, _ = oracle_results(trace, pts)
        assert eng.execute(trace).results == want
        eng.close()


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_snapshot_frozen_under_writes(self, rng):
        pts = make_points(rng, 250)
        eng = ServingEngine(pts, n_shards=3, block_size=16, backend="log")
        snap = eng.snapshot()
        frozen = snap.all_points()
        assert frozen == sorted(pts)
        trace = generate_trace(300, seed=31, q4_weight=0.1, initial=pts)
        eng.execute(trace)
        # live state moved on; the snapshot did not
        assert snap.all_points() == frozen
        for _ in range(20):
            a, b = sorted((rng.uniform(0, 1000), rng.uniform(0, 1000)))
            c = rng.uniform(0, 1000)
            assert snap.query3(a, b, c) == brute_3sided(pts, a, b, c)
            d = rng.uniform(c, 1000)
            assert snap.query4(a, b, c, d) == brute_4sided(pts, a, b, c, d)
        snap.close()
        eng.close()

    def test_snapshot_readers_are_immutable(self, rng):
        pts = make_points(rng, 60)
        sh = Shard(0, float("-inf"), float("inf"), block_size=16,
                   backend="log", points=pts)
        snap = sh.snapshot()
        reader = snap._reader
        with pytest.raises(StorageError):
            reader.write(0, [])
        with pytest.raises(StorageError):
            reader.alloc()
        with pytest.raises(StorageError):
            reader.free(0)
        snap.close()

    def test_closed_epoch_rejects_reads(self, rng):
        pts = make_points(rng, 60)
        sh = Shard(0, float("-inf"), float("inf"), block_size=16,
                   backend="log", points=pts)
        snap = sh.snapshot()
        snap.close()
        with pytest.raises(StorageError):
            snap.query3(0, 1000, 0)

    def test_cow_pays_one_read_per_first_touch(self):
        from repro.io import BlockStore

        store = SnapshotStore(BlockStore(4))
        bid = store.alloc()
        store.write(bid, [1, 2])
        eid = store.open_epoch()
        before = store.stats.copy()
        store.write(bid, [3, 4])        # first touch: read-before-write
        store.write(bid, [5, 6])        # second touch: already preserved
        delta = store.stats - before
        assert delta.reads == 1 and delta.writes == 2
        assert store.reader(eid).read(bid).records == [1, 2]
        assert store.undo_blocks(eid) == 1
        store.close_epoch(eid)

    def test_blocks_born_after_epoch_invisible(self):
        from repro.io import BlockStore

        store = SnapshotStore(BlockStore(4))
        eid = store.open_epoch()
        bid = store.alloc()
        store.write(bid, [1])
        with pytest.raises(StorageError):
            store.reader(eid).read(bid)
        store.close_epoch(eid)

    def test_engine_snapshot_consistent_cut(self, rng):
        """Writers racing the snapshot see either all-before or all-after."""
        pts = make_points(rng, 200)
        eng = ServingEngine(pts, n_shards=4, block_size=16, backend="log")
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                eng.insert(2000.0 + i, 2000.0 + i)  # outside query extent
                i += 1

        t = threading.Thread(target=churn)
        t.start()
        try:
            for _ in range(5):
                with eng.snapshot() as snap:
                    total = snap.count
                    assert total == len(snap.all_points())
                    assert total >= len(pts)
        finally:
            stop.set()
            t.join(timeout=5)
        eng.close()

    def test_two_overlapping_epochs(self, rng):
        pts = make_points(rng, 120)
        eng = ServingEngine(pts, n_shards=2, block_size=16, backend="log")
        s1 = eng.snapshot()
        trace1 = generate_trace(100, seed=41, initial=pts)
        eng.execute(trace1)
        mid = eng.all_points()
        s2 = eng.snapshot()
        eng.execute(generate_trace(100, seed=42, initial=mid))
        assert s1.all_points() == sorted(pts)
        assert s2.all_points() == sorted(mid)
        s1.close()
        s2.close()
        eng.close()


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_admits_within_capacity(self):
        adm = AdmissionController(max_inflight=2, max_queue=4)
        assert adm.acquire() and adm.acquire()
        assert adm.inflight == 2
        adm.release()
        adm.release()
        assert adm.inflight == 0
        assert adm.admitted == 2

    def test_shed_policy_rejects_immediately(self):
        adm = AdmissionController(max_inflight=1, max_queue=4, policy="shed")
        assert adm.acquire()
        assert not adm.acquire()
        assert adm.sheds == 1
        adm.release()
        assert adm.acquire()

    def test_block_policy_queues_then_sheds_overflow(self):
        adm = AdmissionController(max_inflight=1, max_queue=1, policy="block")
        assert adm.acquire()
        admitted = []

        def waiter():
            admitted.append(adm.acquire())

        t = threading.Thread(target=waiter)
        t.start()
        while adm.queue_depth == 0:  # waiter is queued
            pass
        assert not adm.acquire()  # queue full: overflow is shed
        adm.release()
        t.join(timeout=5)
        assert admitted == [True]
        adm.release()

    def test_backpressure_signal(self):
        adm = AdmissionController(max_inflight=1, max_queue=2, policy="block")
        assert not adm.backpressure()
        assert adm.acquire()
        t = threading.Thread(target=adm.acquire)
        t.start()
        while adm.queue_depth == 0:
            pass
        assert adm.backpressure()
        adm.release()
        t.join(timeout=5)
        adm.release()
        assert not adm.backpressure()

    def test_engine_surfaces_shed_as_overloaded(self, rng):
        pts = make_points(rng, 100)
        eng = ServingEngine(
            pts, n_shards=2, block_size=16, backend="log",
            max_inflight=1, max_queue=0, admission_policy="shed",
            io_latency=0.0005,
        )
        shed = []
        trace = generate_trace(40, seed=51, initial=pts)

        def client():
            try:
                eng.execute(trace)
            except EngineOverloaded:
                shed.append(1)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert shed  # contention on one slot must shed someone
        assert eng.admission.snapshot()["shed"] == len(shed)
        eng.close()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(policy="drop")
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)


# ----------------------------------------------------------------------
# threaded stress: multi-reader vs single-writer per shard
# ----------------------------------------------------------------------
class TestThreadedStress:
    def test_concurrent_readers_with_writer(self, rng):
        """Readers racing a monotone writer: every answer is sandwiched
        between the initial and final states (no torn/phantom points)."""
        pts = make_points(rng, 300)
        initial = set(pts)
        eng = ServingEngine(pts, n_shards=4, block_size=16, backend="log",
                            max_inflight=8, max_queue=32)
        inserted = [
            (1000.0 + i * 0.25, rng.uniform(0, 1000)) for i in range(120)
        ]
        errors = []
        done = threading.Event()

        def writer():
            try:
                for p in inserted:
                    eng.execute([("ins", p)])
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    a, b = sorted((rng.uniform(0, 1200),
                                   rng.uniform(0, 1200)))
                    c = rng.uniform(0, 1000)
                    got = eng.execute([("q3", (a, b, c))]).results[0]
                    lower = brute_3sided(initial, a, b, c)
                    upper = set(brute_3sided(initial | set(inserted), a, b, c))
                    assert set(lower) <= set(got) <= upper
                    assert got == sorted(got)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert eng.count == len(initial) + len(inserted)
        want, _ = oracle_results([("q3", (0.0, 1200.0, 0.0))],
                                 initial | set(inserted))
        assert eng.query3(0.0, 1200.0, 0.0) == want[0]
        eng.close()

    def test_concurrent_disjoint_batches_equal_oracle(self, rng):
        """Commuting batches submitted from many threads land on the
        same final state the serial oracle reaches."""
        pts = make_points(rng, 200)
        eng = ServingEngine(pts, n_shards=4, block_size=16, backend="log",
                            max_inflight=8, max_queue=64)
        pools = [
            [(2000.0 + t * 100 + i, float(i)) for i in range(40)]
            for t in range(4)
        ]
        errors = []

        def client(pool):
            try:
                for i in range(0, len(pool), 8):
                    eng.execute([("ins", p) for p in pool[i:i + 8]])
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(p,)) for p in pools]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        final = set(pts) | {p for pool in pools for p in pool}
        assert eng.all_points() == sorted(final)
        for sh in eng.router.shards:
            sh.structure.check_invariants()
        eng.close()


# ----------------------------------------------------------------------
# Hypothesis stateful machine
# ----------------------------------------------------------------------
coord = st.integers(min_value=0, max_value=30).map(float)
point = st.tuples(coord, coord)


class ServingMachine(RuleBasedStateMachine):
    """ServingEngine vs a set model under arbitrary op batches."""

    def __init__(self):
        super().__init__()
        self.engine = ServingEngine(
            n_shards=3, block_size=8, backend="log", extent=30.0
        )
        self.model = set()
        self.snaps = []  # (EngineSnapshot, frozen model copy)

    def teardown(self):
        for snap, _frozen in self.snaps:
            snap.close()
        self.engine.close()

    @rule(batch=st.lists(st.tuples(st.sampled_from(["ins", "del"]), point),
                         min_size=1, max_size=6))
    def writes(self, batch):
        # dedupe targets within one batch: concurrent per-shard queues
        # are only order-preserving per shard, so keep batches commuting
        seen = set()
        ops = []
        for kind, p in batch:
            if p in seen:
                continue
            seen.add(p)
            ops.append((kind, p))
        res = self.engine.execute(ops).results
        for (kind, p), r in zip(ops, res):
            if kind == "ins":
                self.model.add(p)
            else:
                assert r == (p in self.model)
                self.model.discard(p)

    @rule(a=coord, b=coord, c=coord)
    def query3(self, a, b, c):
        if a > b:
            a, b = b, a
        got = self.engine.execute([("q3", (a, b, c))]).results[0]
        assert got == brute_3sided(self.model, a, b, c)

    @rule(a=coord, b=coord, c=coord, d=coord)
    def query4(self, a, b, c, d):
        if a > b:
            a, b = b, a
        if c > d:
            c, d = d, c
        got = self.engine.execute([("q4", (a, b, c, d))]).results[0]
        assert got == brute_4sided(self.model, a, b, c, d)

    @rule()
    def open_snapshot(self):
        if len(self.snaps) < 2:
            self.snaps.append((self.engine.snapshot(), set(self.model)))

    @rule()
    def check_and_close_snapshot(self):
        if self.snaps:
            snap, frozen = self.snaps.pop(0)
            assert snap.all_points() == sorted(frozen)
            snap.close()

    @invariant()
    def counts_agree(self):
        assert self.engine.count == len(self.model)


TestServingMachine = ServingMachine.TestCase
TestServingMachine.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
