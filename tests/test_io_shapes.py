"""I/O growth-shape tests: measured costs must track the paper's bounds.

These are the test-suite versions of the benchmark experiments: smaller
sizes, hard assertions.  Each test measures a cost curve over a sweep and
checks the *shape* against the theorem's bound using correlation and
ratio envelopes, never absolute constants.
"""


from repro.io import BlockStore
from repro.io.stats import Meter
from repro.analysis.bounds import correlation
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.small_structure import SmallThreeSidedStructure
from repro.core.range_tree import ExternalRangeTree
from repro.geometry import ThreeSidedQuery
from repro.workloads import three_sided_queries, uniform_points


class TestPSTQueryShape:
    def test_io_grows_with_output_not_n(self):
        """Fix N; sweep T.  Query I/O must track t = T/B."""
        B = 32
        pts = uniform_points(4000, seed=31)
        store = BlockStore(B)
        pst = ExternalPrioritySearchTree(store, pts)
        ys = sorted(p[1] for p in pts)
        ts, ios = [], []
        for frac in (0.002, 0.01, 0.05, 0.2, 0.5):
            c = ys[int(len(ys) * (1 - frac))]
            with Meter(store) as m:
                got = pst.query(-1, 10 ** 7, c)
            ts.append(len(got) / B)
            ios.append(m.delta.ios)
        assert correlation(ts, ios) > 0.9
        # doubling T should not much more than double the I/O at the top end
        assert ios[-1] / max(1, ios[-2]) < 2 * (ts[-1] / ts[-2])

    def test_io_grows_slowly_with_n_at_fixed_output(self):
        """Sweep N with tiny outputs: I/O ~ log_B N, so the growth from
        N to 4N is bounded by a small additive amount."""
        B = 32
        costs = {}
        for n in (1000, 4000):
            pts = uniform_points(n, seed=32)
            store = BlockStore(B)
            pst = ExternalPrioritySearchTree(store, pts)
            total = 0
            qs = three_sided_queries(pts, 15, seed=33, target_frac=0.001)
            for q in qs:
                with Meter(store) as m:
                    pst.query(q.a, q.b, q.c)
                total += m.delta.ios
            costs[n] = total / len(qs)
        # log_B growth: quadrupling N adds ~log_B 4 levels, far from 4x cost
        assert costs[4000] <= costs[1000] * 2.5 + 10


class TestPSTUpdateShape:
    def test_insert_cost_flat_in_n(self):
        B = 32
        per_op = {}
        for n in (1000, 4000):
            pts = uniform_points(n, seed=34)
            store = BlockStore(B)
            pst = ExternalPrioritySearchTree(store, pts)
            extra = uniform_points(120, seed=35, extent=10.0)
            fresh = [(x + 2e6, y) for x, y in extra]
            with Meter(store) as m:
                for p in fresh:
                    pst.insert(*p)
            per_op[n] = m.delta.ios / len(fresh)
        assert per_op[4000] <= per_op[1000] * 2.0 + 8


class TestSpaceShapes:
    def test_pst_space_linear_range_tree_superlinear(self):
        B = 16
        pst_ratio, rt_ratio = [], []
        for n in (600, 2400):
            pts = uniform_points(n, seed=36)
            pst = ExternalPrioritySearchTree(BlockStore(B), pts)
            rt = ExternalRangeTree(BlockStore(B), pts, rho=2)
            pst_ratio.append(pst.blocks_in_use() / (n / B))
            rt_ratio.append(rt.blocks_in_use() / (n / B))
        # PST per-block ratio roughly flat; range tree ratio grows with levels
        assert pst_ratio[1] <= pst_ratio[0] * 1.4 + 0.5
        assert rt_ratio[1] >= rt_ratio[0] * 1.05


class TestSmallStructureShape:
    def test_query_io_output_sensitivity(self):
        B = 16
        pts = uniform_points(B * B, seed=37)
        store = BlockStore(B)
        s = SmallThreeSidedStructure(store, pts)
        ys = sorted(p[1] for p in pts)
        small_c = ys[-4]      # tiny output
        big_c = ys[4]         # nearly everything
        with Meter(store) as m1:
            got_small = s.query(ThreeSidedQuery(-1, 10 ** 7, small_c))
        with Meter(store) as m2:
            got_big = s.query(ThreeSidedQuery(-1, 10 ** 7, big_c))
        assert len(got_big) > 10 * len(got_small)
        assert m2.delta.ios > m1.delta.ios
        # the small query touches O(1) blocks
        assert m1.delta.ios <= len(s._catalog_bids) + 1 + 6
