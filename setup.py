"""Shim so legacy `pip install -e .` works in offline environments
without the `wheel` package (PEP 660 editable installs need it)."""
from setuptools import setup

setup()
