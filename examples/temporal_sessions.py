#!/usr/bin/env python
"""Temporal database scenario: dynamic interval management.

Kannan et al.'s motivation (which the paper's introduction builds on):
indexing in temporal data models reduces to interval stabbing, which is a
*diagonal corner query* -- Figure 1(a) of the paper.  This example keeps
a live table of user sessions (login, logout) and answers

    "who was online at time t?"           (stabbing)
    "who was online for ALL of [t1, t2]?" (containment)

in O(log_B N + t) I/Os through the diagonal-corner reduction onto the
external priority search tree, while sessions open and close.

Run:  python examples/temporal_sessions.py
"""

import random

from repro.io import BlockStore
from repro.io.stats import Meter
from repro import ExternalIntervalTree
from repro.analysis import format_table, log_b

B = 64
DAY = 86_400.0
N_SESSIONS = 30_000
N_CHURN = 2_000


def main() -> None:
    rng = random.Random(7)

    # a day of sessions: login uniform, duration heavy-tailed
    sessions = set()
    while len(sessions) < N_SESSIONS:
        login = rng.uniform(0, DAY)
        duration = min(rng.expovariate(1 / 1800.0), DAY - login)
        sessions.add((round(login, 3), round(login + duration, 3)))
    sessions = sorted(sessions)

    store = BlockStore(B)
    tree = ExternalIntervalTree(store, sessions)
    print(f"loaded {tree.count} sessions into {tree.blocks_in_use()} blocks "
          f"(linear space: N/B = {len(sessions) / B:.0f})\n")

    # --- stabbing: who is online at time t? -----------------------------
    rows = []
    for hour in (3, 9, 12, 18, 23):
        t = hour * 3600.0
        with Meter(store) as m:
            online = tree.stab(t)
        bound = log_b(tree.count, B) + len(online) / B
        rows.append([f"{hour:02d}:00", len(online), m.delta.ios,
                     f"{bound:.1f}"])
    print(format_table(
        ["time", "online sessions", "I/Os", "log_B N + t"],
        rows,
        title="Stabbing queries via diagonal corners (Figure 1(a))",
    ))

    # --- containment: online during the whole window --------------------
    t1, t2 = 12 * 3600.0, 12.25 * 3600.0
    with Meter(store) as m:
        steady = tree.intervals_containing_range(t1, t2)
    print(f"\nsessions spanning 12:00-12:15 entirely: {len(steady)} "
          f"({m.delta.ios} I/Os)")

    # --- live churn ------------------------------------------------------
    closing = rng.sample(sessions, N_CHURN)
    with Meter(store) as m:
        for s in closing:
            tree.delete(*s)
    del_cost = m.delta.ios / len(closing)
    opening = []
    while len(opening) < N_CHURN:
        login = rng.uniform(0, DAY)
        iv = (round(login, 3), round(min(login + 600.0, DAY), 3))
        if iv not in sessions:
            opening.append(iv)
    with Meter(store) as m:
        for s in opening:
            tree.insert(*s)
    ins_cost = m.delta.ios / len(opening)
    print(f"churn: closed {len(closing)} sessions at {del_cost:.1f} I/Os each, "
          f"opened {len(opening)} at {ins_cost:.1f} I/Os each "
          f"(bound O(log_B N) = {log_b(tree.count, B):.1f})")

    # correctness spot-check against a full scan
    t = 12 * 3600.0
    live = (set(sessions) - set(closing)) | set(opening)
    got = sorted(tree.stab(t))
    want = sorted((l, r) for l, r in live if l <= t <= r)
    assert got == want
    print(f"verified: {len(got)} sessions online at noon, exact")


if __name__ == "__main__":
    main()
