#!/usr/bin/env python
"""Spatial analytics: general 4-sided range search vs. the classics.

The paper's introduction: grid files, k-d variants, z-orders and R-trees
"perform well most of the time [but] have highly suboptimal worst-case
performance."  This example runs a geo-style workload -- clustered
points, benign square queries AND adversarial thin-slab queries --
over the Theorem 7 range tree and four classical baselines on identical
simulated disks, and prints the I/O cost side by side.

Run:  python examples/spatial_analytics.py
"""

from repro.io import BlockStore
from repro.io.stats import Meter
from repro import ExternalRangeTree
from repro.analysis import format_table
from repro.baselines import BTreeXFilter, ExternalKDTree, GridFile, RTree, ZOrderIndex
from repro.workloads import clustered_points, four_sided_queries, thin_slab_queries

B = 64
N = 20_000


def run(structures, queries, query_fn_name="query_4sided"):
    """Total I/Os per structure over a query batch (answers verified equal)."""
    costs = {}
    reference = None
    for name, (store, idx) in structures.items():
        total = 0
        answers = []
        for q in queries:
            with Meter(store) as m:
                if isinstance(idx, ExternalRangeTree):
                    got = idx.query(q.a, q.b, q.c, q.d)
                else:
                    got = getattr(idx, query_fn_name)(q.a, q.b, q.c, q.d)
            answers.append(sorted(set(got)))
            total += m.delta.ios
        if reference is None:
            reference = answers
        else:
            assert answers == reference, f"{name} disagrees on answers!"
        costs[name] = total / len(queries)
    return costs


def main() -> None:
    pts = clustered_points(N, seed=3, clusters=24, spread=0.008)

    structures = {}
    for name, cls in [
        ("range-tree (Thm 7)", ExternalRangeTree),
        ("R-tree", RTree),
        ("k-d tree", ExternalKDTree),
        ("grid file", GridFile),
        ("z-order", ZOrderIndex),
        ("B-tree+filter", BTreeXFilter),
    ]:
        store = BlockStore(B)
        structures[name] = (store, cls(store, pts))

    space_rows = []
    for name, (store, idx) in structures.items():
        blocks = idx.blocks_in_use() if hasattr(idx, "blocks_in_use") else store.blocks_in_use
        space_rows.append([name, blocks, f"{blocks / (N / B):.1f}x"])
    print(format_table(
        ["structure", "blocks", "vs raw N/B"],
        space_rows, title=f"Space ({N} clustered points, B = {B})",
    ))

    benign = four_sided_queries(pts, 12, seed=4, target_frac=0.01)
    adversarial = thin_slab_queries(pts, 12, seed=5, x_frac=0.5, out_frac=0.001)

    benign_costs = run(structures, benign)
    adv_costs = run(structures, adversarial)

    rows = []
    for name in structures:
        rows.append([
            name, f"{benign_costs[name]:.0f}", f"{adv_costs[name]:.0f}",
            f"{adv_costs[name] / max(1e-9, benign_costs[name]):.1f}x",
        ])
    print()
    print(format_table(
        ["structure", "benign I/Os", "adversarial I/Os", "degradation"],
        rows,
        title="Mean I/Os per query: benign squares vs thin-slab worst case",
    ))
    print(
        "\nReading the table: the classical structures look fine on benign\n"
        "squares but blow up on thin slabs (they pay for the slab, not the\n"
        "output); the Theorem 7 range tree stays output-sensitive on both --\n"
        "the separation the paper proves."
    )


if __name__ == "__main__":
    main()
