#!/usr/bin/env python
"""Indexability theory explorer: the Section 2 story in one run.

1. Builds the Fibonacci lattice and verifies Proposition 1's uniformity.
2. Prints the Theorem 2/3 lower-bound tradeoff r = Omega(log n / log A).
3. Builds the Theorem 4 (3-sided) and Theorem 5 (4-sided) schemes and
   measures their redundancy and access overhead against those bounds,
   showing the upper and lower bounds meet.

Run:  python examples/indexability_explorer.py
"""

import math

from repro.analysis import format_table
from repro.core.foursided_scheme import FourSidedLayeredIndex
from repro.core.threesided_scheme import ThreeSidedSweepIndex
from repro.geometry import Rect, ThreeSidedQuery
from repro.indexability import (
    fibonacci,
    fibonacci_lattice,
    fibonacci_tradeoff_bound,
    rectangle_point_count,
)
from repro.indexability.fibonacci import C1, C2

B = 16
K_FIB = 19  # N = f_19 = 4181


def proposition_1(points):
    N = len(points)
    ell = 4.0
    area = ell * N
    rows = []
    w = math.sqrt(area)
    while w <= N and area / w >= 2:
        h = area / w
        counts = []
        for ox in (0.0, N / 4, N / 2):
            if ox + w <= N and h <= N:
                counts.append(
                    rectangle_point_count(points, Rect(ox, ox + w, 0, h))
                )
        if counts:
            rows.append([
                f"{w:.0f} x {h:.0f}", f"{w / h:.2f}",
                min(counts), max(counts),
                f"{math.floor(ell / C1)}..{math.ceil(ell / C2)}",
            ])
        w *= 4
    print(format_table(
        ["rectangle", "aspect", "min pts", "max pts", "Prop. 1 range"],
        rows,
        title=f"Proposition 1 on F_{{{K_FIB}}} (N = {len(points)}; "
              f"area {ell:.0f}N rectangles)",
    ))


def lower_bound_table(N):
    n = N / B
    rows = []
    for A in (1.0, 2.0, 4.0, 8.0):
        raw = fibonacci_tradeoff_bound(N, B, A=A)
        shape = math.log(max(2.0, n)) / math.log(max(2.0, 4 * A * A))
        rows.append([f"{A:.0f}", f"{raw:.4f}", f"{shape:.2f}"])
    print(format_table(
        ["access overhead A", "Thm 2 numeric bound", "log n / log(4A^2)"],
        rows,
        title="Lower bound: redundancy needed as A grows (Theorems 2-3)",
    ))


def upper_bounds(points):
    N = len(points)
    # Theorem 4: 3-sided, constant r and A
    rows = []
    for alpha in (2, 3, 4):
        idx = ThreeSidedSweepIndex(points, B, alpha=alpha)
        worst_ao = 0.0
        ys = sorted(p[1] for p in points)
        for i in range(0, N - 200, N // 12):
            q = ThreeSidedQuery(float(i % N), float(min(N, i % N + 500)),
                                ys[i])
            got, used = idx.query(q)
            denom = max(1, math.ceil(len(set(got)) / B))
            worst_ao = max(worst_ao, len(used) / denom)
        rows.append([
            alpha, f"{idx.redundancy:.3f}",
            f"{1 + 1 / (alpha - 1):.2f}", f"{worst_ao:.1f}",
            alpha * alpha + alpha + 1,
        ])
    print(format_table(
        ["alpha", "measured r", "bound 1+1/(a-1)", "measured A", "bound a^2+a+1"],
        rows,
        title="Theorem 4: 3-sided scheme -- constant redundancy AND overhead",
    ))

    # Theorem 5: 4-sided layering
    rows = []
    for rho in (2, 4, 8):
        idx = FourSidedLayeredIndex(points, B, rho=rho)
        n = N / B
        shape = math.log(max(2.0, n)) / math.log(rho) if rho > 1 else 0
        rows.append([rho, idx.num_levels, f"{idx.redundancy:.2f}",
                     f"{shape:.2f}"])
    print()
    print(format_table(
        ["rho", "levels", "measured r", "log n / log rho"],
        rows,
        title="Theorem 5: 4-sided scheme -- r = O(log n / log rho), "
              "matching the lower bound's shape",
    ))


def main() -> None:
    points = fibonacci_lattice(K_FIB)
    proposition_1(points)
    print()
    lower_bound_table(len(points))
    print()
    upper_bounds(points)
    print(
        "\nTakeaway: the measured redundancy of the Theorem 5 construction\n"
        "falls like log n / log rho while covering queries with O(rho + t)\n"
        "blocks -- the same tradeoff the Theorem 2 lower bound forces, so\n"
        "the two bounds are tight."
    )


if __name__ == "__main__":
    main()
