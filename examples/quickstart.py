#!/usr/bin/env python
"""Quickstart: the external priority search tree on a simulated disk.

Builds the Theorem 6 structure over 20,000 points, runs 3-sided range
queries, mutates the set, and prints exact I/O costs next to the paper's
bounds -- the five-minute tour of the library.

Run:  python examples/quickstart.py
"""

import random

from repro.io import BlockStore
from repro.io.stats import Meter
from repro import ExternalPrioritySearchTree
from repro.analysis import format_table, log_b

B = 64          # records per disk block (the paper's B)
N = 20_000      # points


def main() -> None:
    rng = random.Random(42)
    points = list({
        (rng.uniform(0, 1e6), rng.uniform(0, 1e6)) for _ in range(N)
    })

    store = BlockStore(B)
    with Meter(store) as m:
        pst = ExternalPrioritySearchTree(store, points)
    print(f"built: {pst.count} points, height {pst.height()}, "
          f"{pst.blocks_in_use()} blocks "
          f"(raw data would need {len(points) // B}); "
          f"build cost {m.delta.ios} I/Os")
    print(f"bound: O(n) = O(N/B) blocks, here N/B = {len(points) / B:.0f}\n")

    # --- 3-sided queries: x in [a, b], y >= c ---------------------------
    rows = []
    ys = sorted(p[1] for p in points)
    for frac in (0.001, 0.01, 0.1):
        a, b_ = 2e5, 8e5
        c = ys[int(len(ys) * (1 - frac))]
        with Meter(store) as m:
            hits = pst.query(a, b_, c)
        bound = log_b(len(points), B) + len(hits) / B
        rows.append([f"{frac:.1%}", len(hits), m.delta.ios, f"{bound:.1f}",
                     f"{m.delta.ios / bound:.1f}"])
    print(format_table(
        ["selectivity", "T (points)", "I/Os", "log_B N + T/B", "ratio"],
        rows,
        title="3-sided queries (Theorem 6: O(log_B N + T/B) I/Os)",
    ))

    # --- updates --------------------------------------------------------
    fresh = [(2e6 + i, rng.uniform(0, 1e6)) for i in range(200)]
    with Meter(store) as m:
        for p in fresh:
            pst.insert(*p)
    ins_cost = m.delta.ios / len(fresh)
    victims = rng.sample(points, 200)
    with Meter(store) as m:
        for p in victims:
            pst.delete(*p)
    del_cost = m.delta.ios / len(victims)
    print(f"\nupdates: insert {ins_cost:.1f} I/Os/op, "
          f"delete {del_cost:.1f} I/Os/op "
          f"(bound: O(log_B N) = {log_b(pst.count, B):.1f} levels)")

    # results stay exact after churn
    c = ys[int(len(ys) * 0.98)]
    live = (set(points) | set(fresh)) - set(victims)
    got = sorted(pst.query(0, 3e6, c))
    want = sorted(p for p in live if p[1] >= c)
    assert got == want, "query mismatch after updates!"
    print(f"verified: post-churn query returns exactly {len(got)} points")


if __name__ == "__main__":
    main()
