"""E4 -- Theorem 5: the layered 4-sided scheme's tradeoff.

Regenerates two curves over the fan-out rho:
  redundancy     r(rho)            ~  log n / log rho      (space)
  blocks/query   cost(rho, t)      <=  O(rho + t)          (access)
with the access cost measured across query aspect ratios (the regime the
Fibonacci lower bound makes hard).
"""

import math

from repro.analysis.bounds import correlation
from repro.core.foursided_scheme import FourSidedLayeredIndex
from repro.workloads import aspect_sweep_queries, uniform_points

from conftest import record_result

B = 16
N = 6000


def _run(pts):
    rows = []
    shape, meas = [], []
    gate = {}
    for rho in (2, 4, 8, 16):
        idx = FourSidedLayeredIndex(pts, B, rho=rho)
        qs = aspect_sweep_queries(
            pts, 8, aspects=(1.0, 16.0, 256.0), seed=44, target_frac=0.01
        )
        worst_over = 0.0
        for _aspect, q in qs:
            got, blocks = idx.query(q)
            t = len(set(got)) / B
            over = len(blocks) / (rho + t)
            worst_over = max(worst_over, over)
        n = N / B
        lb = math.log(n) / math.log(rho)
        rows.append([
            rho, idx.num_levels, f"{idx.redundancy:.2f}", f"{lb:.2f}",
            f"{worst_over:.1f}",
        ])
        shape.append(lb)
        meas.append(idx.redundancy)
        gate[f"redundancy_rho{rho}"] = round(idx.redundancy, 4)
        gate[f"blocks_over_bound_rho{rho}"] = round(worst_over, 4)
    return rows, correlation(shape, meas), gate


def test_e4_theorem5_tradeoff(benchmark):
    pts = uniform_points(N, seed=43)
    rows, corr, gate = benchmark.pedantic(
        _run, args=(pts,), rounds=1, iterations=1
    )
    record_result(
        "E4",
        title=f"[E4] Theorem 5: layered scheme tradeoff "
              f"(N = {N}, B = {B}; redundancy-vs-shape corr = {corr:.3f})",
        headers=["rho", "levels", "measured r", "log n / log rho",
                 "worst blocks / (rho + t)"],
        rows=rows,
        gate=gate,
    )
    assert corr > 0.95
