"""E6b/A3 -- Section 3.3.3: pacing bubble-ups for worst-case inserts.

Regenerates the per-insert I/O *distribution* under the four schedulers
(eager = amortized baseline; heavy-leaf, credit, child-split = the
paper's three worst-case methods).  The claim probed: pacing bounds the
promotion work any single insert performs while total work stays
comparable, and queries remain exact throughout (checked in tests).
"""

from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.scheduling import ALL_SCHEDULERS
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.workloads import uniform_points

from conftest import record_result

B = 32
N = 6000


def _run():
    pts = uniform_points(N, seed=77)
    rows = []
    gate = {}
    for name, cls in ALL_SCHEDULERS.items():
        store = BlockStore(B)
        pst = ExternalPrioritySearchTree(store, scheduler=cls())
        costs = []
        for p in pts:
            with Meter(store) as m:
                pst.insert(*p)
            costs.append(m.delta.ios)
        costs.sort()
        total = sum(costs)
        rows.append([
            name,
            f"{total / len(costs):.1f}",
            costs[len(costs) // 2],
            costs[int(len(costs) * 0.99)],
            costs[int(len(costs) * 0.999)],
            costs[-1],
            pst.scheduler.promotions,
            len(pst.scheduler.pending),
        ])
        gate[f"total_io_{name}"] = total
        gate[f"max_io_{name}"] = costs[-1]
        gate[f"p999_io_{name}"] = costs[int(len(costs) * 0.999)]
    return rows, gate


def test_e6b_scheduler_distributions(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "E6b",
        title=f"[E6b/A3] Insert I/O distribution by bubble-up scheduler "
              f"(N = {N}, B = {B}; structural split cost shared by all)",
        headers=["scheduler", "mean I/O", "p50", "p99", "p99.9", "max",
                 "promotions", "pending left"],
        rows=rows,
        gate=gate,
    )
    by_name = {r[0]: r for r in rows}
    # all schedulers pay comparable mean cost
    means = [float(r[1]) for r in rows]
    assert max(means) <= 2.5 * min(means)
    # pacing schedulers must not have a worse p99.9 than eager by much
    eager_tail = by_name["eager"][4]
    for name in ("heavy-leaf", "credit", "child-split"):
        assert by_name[name][4] <= eager_tail * 1.5 + 5
