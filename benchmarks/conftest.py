"""Shared infrastructure for the experiment benchmarks.

Each bench measures *exact I/O counts* on the simulated disk (the
quantity the paper's theorems bound) and reports them through
:func:`record_result`, which does two things:

- queues the human-readable table for the terminal summary (as the old
  ``record`` helper did), and
- accumulates a structured row -- title, headers, rows, and a ``gate``
  dict of scalar lower-is-better counters -- that the session-finish
  hook exports to ``BENCH_<tag>.json`` at the repo root
  (schema ``repro-bench``; see :mod:`repro.obs.export`).

``tools/bench_report.py`` wraps a bench run and compares two such files,
and CI gates on the comparison: any gated counter that grows past the
tolerance fails the build.  Set ``BENCH_TAG`` to change the output file
name (default ``local``).
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict, List, Optional, Sequence

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.report import format_table          # noqa: E402
from repro.obs.export import make_result, write_bench_json  # noqa: E402

_REPORTS: List[str] = []
_RESULTS: Dict[str, Dict[str, Any]] = {}


def record(text: str) -> None:
    """Queue an experiment table for the terminal summary (legacy)."""
    _REPORTS.append(text)


def record_result(
    experiment: str,
    *,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    gate: "Optional[Dict[str, float]]" = None,
    notes: "Optional[str]" = None,
    perf: "Optional[Dict[str, float]]" = None,
    cache: "Optional[Dict[str, Dict[str, Any]]]" = None,
) -> None:
    """Record one experiment's table for the summary AND the JSON export.

    ``experiment`` is the stable id (``E6a``, ``A2`` ...) keying the
    entry in ``BENCH_<tag>.json``; ``gate`` lists the scalar counters
    (lower is better) the CI regression gate tracks.  ``perf`` carries
    wall-clock quantities (throughput, latency percentiles) that are
    exported and rendered but never gated -- timing is
    machine-dependent, the gate compares deterministic counters only.
    ``cache`` carries per-pool-configuration hit-rate / prefetch /
    coalescing numbers (also never gated).
    """
    record(format_table(headers, rows, title=title))
    _RESULTS[experiment] = make_result(
        title, headers, rows, gate=gate, notes=notes, perf=perf, cache=cache
    )


def _bench_json_path() -> str:
    tag = os.environ.get("BENCH_TAG", "local")
    root = os.path.dirname(_HERE)
    return os.path.join(root, f"BENCH_{tag}.json")


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    path = _bench_json_path()
    tag = os.environ.get("BENCH_TAG", "local")
    write_bench_json(_RESULTS, path, tag=tag)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("EXPERIMENT TABLES (paper reproduction output)")
    terminalreporter.write_line("=" * 72)
    for rep in _REPORTS:
        terminalreporter.write_line("")
        for line in rep.splitlines():
            terminalreporter.write_line(line)
    if _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            f"structured results written to {_bench_json_path()}"
        )
