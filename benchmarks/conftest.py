"""Shared infrastructure for the experiment benchmarks.

Each bench measures *exact I/O counts* on the simulated disk (the
quantity the paper's theorems bound) and reports them as tables via
:func:`record`; pytest-benchmark's own timing table additionally tracks
interpreter-level cost.  All recorded tables are printed in the terminal
summary, so ``pytest benchmarks/ --benchmark-only`` emits the rows each
experiment regenerates (see EXPERIMENTS.md for the per-experiment
mapping back to the paper).
"""

from __future__ import annotations

from typing import List

_REPORTS: List[str] = []


def record(text: str) -> None:
    """Queue an experiment table for the terminal summary."""
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("EXPERIMENT TABLES (paper reproduction output)")
    terminalreporter.write_line("=" * 72)
    for rep in _REPORTS:
        terminalreporter.write_line("")
        for line in rep.splitlines():
            terminalreporter.write_line(line)
