"""E7 -- Theorem 7: the dynamic 4-sided structure.

Regenerates three curves over N:
  space(N)   = O((N/B) log(N/B) / log log_B N) blocks
  query      = O(log_B N + T/B) I/Os (plus the documented rho*log_B N
               additive term for middle-child location)
  update(N)  = O(log_B N log(N/B) / log log_B N) I/Os
"""

from repro.analysis.bounds import (
    log_b,
    range_tree_space_bound,
    range_tree_update_bound,
)
from repro.core.range_tree import ExternalRangeTree
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.workloads import four_sided_queries, uniform_points

from conftest import record_result

B = 32
N_SWEEP = (1024, 4096, 16384)


def _run():
    rows = []
    gate = {}
    for n in N_SWEEP:
        pts = uniform_points(n, seed=88)
        store = BlockStore(B)
        rt = ExternalRangeTree(store, pts)
        blocks = rt.blocks_in_use()
        space_bound = range_tree_space_bound(n, B)

        q_io = 0
        qs = four_sided_queries(pts, 12, seed=89, target_frac=0.01)
        t_total = 0
        for q in qs:
            with Meter(store) as m:
                got = rt.query(q.a, q.b, q.c, q.d)
            q_io += m.delta.ios
            t_total += len(got)
        q_bound = log_b(n, B) + (t_total / len(qs)) / B + rt.rho

        fresh = [(x + 2e6, y) for x, y in uniform_points(30, seed=90)]
        with Meter(store) as m_upd:
            for p in fresh:
                rt.insert(*p)
        upd_bound = range_tree_update_bound(n, B)
        rows.append([
            n, rt.rho, rt.num_levels(),
            blocks, f"{blocks / space_bound:.1f}",
            f"{q_io / len(qs):.0f}", f"{q_bound:.1f}",
            f"{m_upd.delta.ios / 30:.0f}", f"{upd_bound:.1f}",
        ])
        gate[f"blocks_n{n}"] = blocks
        gate[f"query_io_n{n}"] = round(q_io / len(qs), 4)
        gate[f"insert_io_n{n}"] = round(m_upd.delta.ios / 30, 4)
    return rows, gate


def test_e7_theorem7_scaling(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "E7",
        title=f"[E7] Theorem 7: 4-sided structure scaling (B = {B}); "
              f"bounds are n log n/loglog_B n (space), log_B N + t (query), "
              f"log_B N log n/loglog (update)",
        headers=["N", "rho", "levels", "blocks", "blocks/bound",
                 "query I/O", "q bound", "insert I/O", "upd bound"],
        rows=rows,
        gate=gate,
    )
    # the space coefficient against the Theorem 7 bound must not grow
    coeffs = [float(r[4]) for r in rows]
    assert coeffs[-1] <= coeffs[0] * 1.8 + 1.0


def test_e7_query_wall_time(benchmark):
    pts = uniform_points(4096, seed=91)
    rt = ExternalRangeTree(BlockStore(B), pts)
    q = four_sided_queries(pts, 1, seed=92, target_frac=0.01)[0]
    benchmark(lambda: rt.query(q.a, q.b, q.c, q.d))
