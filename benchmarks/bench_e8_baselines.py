"""E8 -- the Section 1 motivation: classical structures vs the optimal ones.

Regenerates the separation the paper asserts: grid files, k-d trees,
z-orders, R-trees and 1-D B-trees are fine "most of the time" but
"highly suboptimal in the worst case", while the Theorem 6/7 structures
stay output-sensitive.  Three workload regimes:

  benign       squarish 1% rectangles on uniform points
  thin-slab    full-width y-bands (k-d/grid/B-tree poison)
  skew         clustered data, queries on the hot cluster (grid poison)

Every structure answers every query over an identical simulated disk;
answers are cross-checked for equality, I/Os compared.
"""

from repro.baselines import (
    BTreeXFilter,
    ExternalKDTree,
    GridFile,
    RTree,
    ZOrderIndex,
)
from repro.core.range_tree import ExternalRangeTree
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.geometry import FourSidedQuery
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.workloads import (
    clustered_points,
    four_sided_queries,
    uniform_points,
)

from conftest import record_result


def _slug(name):
    return "".join(c if c.isalnum() else "_" for c in name).strip("_")

B = 32
N = 8000
QUERIES = 10


def _slab_queries(pts, axis, n, band_pts=30):
    """Full-extent thin bands across one axis."""
    coords = sorted(p[axis] for p in pts)
    out = []
    step = (len(pts) - band_pts - 1) // n
    for i in range(n):
        lo = coords[i * step]
        hi = coords[i * step + band_pts]
        if axis == 1:
            out.append(FourSidedQuery(-1e18, 1e18, lo, hi))
        else:
            out.append(FourSidedQuery(lo, hi, -1e18, 1e18))
    return out


def _measure(structures, queries):
    costs = {}
    reference = None
    for name, (store, idx) in structures.items():
        total = 0
        answers = []
        for q in queries:
            with Meter(store) as m:
                if isinstance(idx, ExternalRangeTree):
                    got = idx.query(q.a, q.b, q.c, q.d)
                else:
                    got = idx.query_4sided(q.a, q.b, q.c, q.d)
            answers.append(sorted(set(got)))
            total += m.delta.ios
        if reference is None:
            reference = answers
        else:
            assert answers == reference, f"{name} returned wrong answers"
        costs[name] = total / len(queries)
    return costs


def _build_all(pts):
    classes = [
        ("range-tree (Thm 7)", ExternalRangeTree),
        ("R-tree", RTree),
        ("k-d tree", ExternalKDTree),
        ("grid file", GridFile),
        ("z-order", ZOrderIndex),
        ("B-tree+filter", BTreeXFilter),
    ]
    out = {}
    for name, cls in classes:
        store = BlockStore(B)
        out[name] = (store, cls(store, pts))
    return out


def _run():
    uni = uniform_points(N, seed=99)
    structures = _build_all(uni)
    benign = _measure(structures, four_sided_queries(uni, QUERIES, 100, 0.01))
    yslab = _measure(structures, _slab_queries(uni, 1, QUERIES))

    clus = clustered_points(N, seed=101, clusters=4, spread=0.002)
    structures_c = _build_all(clus)
    xs = sorted(p[0] for p in clus)
    ys = sorted(p[1] for p in clus)
    hot = [FourSidedQuery(xs[N // 4], xs[N // 4 + 40],
                          ys[N // 4], ys[N // 4 + 40])
           for _ in range(1)]
    skew = _measure(structures_c, hot)

    rows = []
    gate = {}
    for name in structures:
        rows.append([
            name, f"{benign[name]:.0f}", f"{yslab[name]:.0f}",
            f"{skew[name]:.0f}",
            f"{max(yslab[name], skew[name]) / max(1.0, benign[name]):.1f}x",
        ])
        gate[f"benign_io_{_slug(name)}"] = round(benign[name], 4)
        gate[f"yslab_io_{_slug(name)}"] = round(yslab[name], 4)
    return rows, gate


def test_e8_worst_case_separation(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "E8",
        title=f"[E8] Classical baselines vs optimal structures "
              f"(N = {N}, B = {B}; identical answers verified)",
        headers=["structure", "benign I/O", "y-slab I/O", "hot-cluster I/O",
                 "worst/benign"],
        rows=rows,
        gate=gate,
    )
    by_name = {r[0]: r for r in rows}
    rt_slab = float(by_name["range-tree (Thm 7)"][2])
    # the optimal structure must beat the filtering baseline on slabs
    assert rt_slab < float(by_name["B-tree+filter"][2])


def _run_3sided():
    """3-sided regime: PST vs B-tree filter on wide slabs, tiny outputs."""
    pts = uniform_points(N, seed=102)
    xs = sorted(p[0] for p in pts)
    ys = sorted(p[1] for p in pts)
    store_p, store_b = BlockStore(B), BlockStore(B)
    pst = ExternalPrioritySearchTree(store_p, pts)
    bt = BTreeXFilter(store_b, pts)
    rows = []
    gate = {}
    for frac, label in ((0.001, "T ~ 8"), (0.01, "T ~ 80"), (0.1, "T ~ 800")):
        c = ys[int(len(ys) * (1 - frac))]
        a, b_hi = xs[100], xs[-100]
        with Meter(store_p) as m1:
            got1 = pst.query(a, b_hi, c)
        with Meter(store_b) as m2:
            got2 = bt.query_3sided(a, b_hi, c)
        assert sorted(got1) == sorted(set(got2))
        rows.append([label, len(got1), m1.delta.ios, m2.delta.ios,
                     f"{m2.delta.ios / max(1, m1.delta.ios):.1f}x"])
        gate[f"pst_io_sel{frac:g}"] = m1.delta.ios
    return rows, gate


def test_e8_pst_vs_btree_3sided(benchmark):
    rows, gate = benchmark.pedantic(_run_3sided, rounds=1, iterations=1)
    record_result(
        "E8b",
        title=f"[E8b] 3-sided wide-slab queries: Theorem 6 PST vs "
              f"B-tree-on-x (N = {N}, B = {B})",
        headers=["output scale", "T", "PST I/O", "B-tree I/O", "speedup"],
        rows=rows,
        gate=gate,
    )
    # output-insensitive baseline loses at small outputs
    assert float(rows[0][4][:-1]) > 2.0
