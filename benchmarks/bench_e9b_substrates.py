"""E9b -- two realizations of the interval-management substrate.

The paper's Section 4 substrate is the Arge-Vitter interval tree [2];
Figure 1(a) shows stabbing is also a diagonal-corner query, i.e. a
special 3-sided query the Theorem 6 PST answers directly.  Both live in
this repository; this bench regenerates their head-to-head: identical
answers, same asymptotics, different constants (the slab tree wins on
stabs by avoiding the PST's per-node query-structure overhead; the
reduction wins on simplicity and inherits worst-case updates).
"""

import random

from repro.analysis.bounds import log_b
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.substrates.av_interval_tree import SlabIntervalTree
from repro.substrates.interval_tree import ExternalIntervalTree

from conftest import record_result

B = 32
N = 6000


def _make(rng, n):
    out = set()
    while len(out) < n:
        l = rng.uniform(0, 10_000)
        out.add((round(l, 4), round(l + rng.expovariate(1 / 300.0), 4)))
    return sorted(out)


def _run():
    rng = random.Random(140)
    ivs = _make(rng, N)
    stabs = [rng.uniform(0, 10_000) for _ in range(30)]
    rows = []
    gate = {}
    answers = {}
    for name, cls in [("diagonal-corner PST", ExternalIntervalTree),
                      ("slab tree (AV [2])", SlabIntervalTree)]:
        store = BlockStore(B)
        with Meter(store) as m_build:
            tree = cls(store, ivs)
        rng2 = random.Random(141)
        stab_io, t_total = 0, 0
        got_all = []
        for q in stabs:
            with Meter(store) as m:
                got = tree.stab(q)
            got_all.append(sorted(got))
            stab_io += m.delta.ios
            t_total += len(got)
        answers[name] = got_all
        fresh = [(l + 20_000, r + 20_000) for l, r in _make(rng2, 40)]
        with Meter(store) as m_upd:
            for iv in fresh:
                tree.insert(*iv)
            for iv in fresh:
                tree.delete(*iv)
        rows.append([
            name, tree.blocks_in_use(), m_build.delta.ios,
            f"{stab_io / len(stabs):.0f}",
            f"{t_total / len(stabs) / B + log_b(N, B):.1f}",
            f"{m_upd.delta.ios / (2 * len(fresh)):.1f}",
        ])
        slug = "pst" if "PST" in name else "slab"
        gate[f"stab_io_{slug}"] = round(stab_io / len(stabs), 4)
        gate[f"update_io_{slug}"] = round(
            m_upd.delta.ios / (2 * len(fresh)), 4
        )
    assert answers["diagonal-corner PST"] == answers["slab tree (AV [2])"]
    return rows, gate


def test_e9b_substrate_comparison(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "E9b",
        title=f"[E9b] Interval substrate head-to-head "
              f"(N = {N}, B = {B}; answers verified identical)",
        headers=["substrate", "blocks", "build I/O", "stab I/O",
                 "log_B N + t/B", "update I/O"],
        rows=rows,
        gate=gate,
    )
