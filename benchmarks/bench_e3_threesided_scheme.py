"""E3 -- Theorem 4: the 3-sided sweep scheme's constant r and constant A.

Regenerates the Section 2.2.1 guarantees across data distributions and
alpha values: redundancy <= 1 + 1/(alpha-1) and per-query block count
<= alpha^2 t + alpha + 1 (we assert the +2 rounding-safe form).
"""

import math

from repro.core.threesided_scheme import ThreeSidedSweepIndex
from repro.workloads import (
    clustered_points,
    skyline_points,
    three_sided_queries,
    uniform_points,
)

from conftest import record_result

B = 16
N = 4096
QUERIES = 60


def _run():
    rows = []
    ok = True
    gate = {}
    for dist_name, gen in [
        ("uniform", uniform_points),
        ("clustered", clustered_points),
        ("skyline", skyline_points),
    ]:
        pts = gen(N, seed=33)
        for alpha in (2, 3, 4, 8):
            idx = ThreeSidedSweepIndex(pts, B, alpha=alpha)
            worst_ao = 0.0
            qs = (three_sided_queries(pts, QUERIES // 2, 1, 0.01)
                  + three_sided_queries(pts, QUERIES // 2, 2, 0.10))
            for q in qs:
                got, used = idx.query(q)
                T = len(set(got))
                bound = alpha * alpha * (T / B) + alpha + 2
                if len(used) > bound:
                    ok = False
                denom = max(1, math.ceil(T / B))
                worst_ao = max(worst_ao, len(used) / denom)
            rows.append([
                dist_name, alpha,
                f"{idx.redundancy:.3f}", f"{1 + 1 / (alpha - 1):.2f}",
                f"{worst_ao:.1f}", alpha * alpha + alpha + 1,
            ])
            gate[f"redundancy_{dist_name}_a{alpha}"] = round(idx.redundancy, 4)
            gate[f"access_{dist_name}_a{alpha}"] = round(worst_ao, 4)
    return rows, ok, gate


def test_e3_theorem4_guarantees(benchmark):
    rows, within_bounds, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "E3",
        title=f"[E3] Theorem 4: 3-sided sweep scheme "
              f"(N = {N}, B = {B}, {QUERIES} queries per cell)",
        headers=["distribution", "alpha", "measured r", "r bound",
                 "measured A", "A bound"],
        rows=rows,
        gate=gate,
    )
    assert within_bounds


def test_e3_construction_speed(benchmark):
    """Wall-time of the sweep construction itself (CPU-side cost)."""
    pts = uniform_points(N, seed=34)
    benchmark(lambda: ThreeSidedSweepIndex(pts, B, alpha=2))
