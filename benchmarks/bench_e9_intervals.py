"""E9 -- Figure 1(a) / Kannan et al.: dynamic interval management.

Regenerates the stabbing-query bounds through the diagonal-corner
reduction onto the external PST (the Arge-Vitter substrate of Section 4):

  space           = O(n) blocks
  stab(q)         = O(log_B N + t) I/Os
  insert/delete   = O(log_B N) I/Os
"""

import random

from repro.analysis.bounds import log_b
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.substrates.interval_tree import ExternalIntervalTree
from repro.workloads import stabbing_points

from conftest import record_result

B = 32
N_SWEEP = (2000, 8000)


def _make_intervals(n, seed, mean_len=50.0):
    rng = random.Random(seed)
    out = set()
    while len(out) < n:
        l = rng.uniform(0, 10_000)
        out.add((round(l, 4), round(l + rng.expovariate(1 / mean_len), 4)))
    return sorted(out)


def _run():
    rows = []
    gate = {}
    for n in N_SWEEP:
        ivs = _make_intervals(n, seed=111)
        store = BlockStore(B)
        tree = ExternalIntervalTree(store, ivs)
        blocks = tree.blocks_in_use()

        stab_io, t_total = 0, 0
        stabs = stabbing_points(ivs, 25, seed=112)
        for q in stabs:
            with Meter(store) as m:
                got = tree.stab(q)
            stab_io += m.delta.ios
            t_total += len(got)
        mean_t = t_total / len(stabs)
        bound = log_b(n, B) + mean_t / B

        fresh = _make_intervals(40, seed=113, mean_len=10.0)
        fresh = [(l + 20_000, r + 20_000) for l, r in fresh]
        with Meter(store) as m_upd:
            for iv in fresh:
                tree.insert(*iv)
            for iv in fresh:
                tree.delete(*iv)
        rows.append([
            n, blocks, f"{blocks / (n / B):.1f}",
            f"{mean_t:.0f}", f"{stab_io / len(stabs):.0f}", f"{bound:.1f}",
            f"{m_upd.delta.ios / (2 * len(fresh)):.1f}",
            f"{log_b(n, B):.1f}",
        ])
        gate[f"blocks_n{n}"] = blocks
        gate[f"stab_io_n{n}"] = round(stab_io / len(stabs), 4)
        gate[f"update_io_n{n}"] = round(m_upd.delta.ios / (2 * len(fresh)), 4)
    return rows, gate


def test_e9_interval_management(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "E9",
        title=f"[E9] Interval stabbing via diagonal corners (B = {B}): "
              f"linear space, output-sensitive stabs, log updates",
        headers=["N intervals", "blocks", "blocks/(N/B)", "mean t",
                 "stab I/O", "log_B N + t/B", "update I/O", "log_B N"],
        rows=rows,
        gate=gate,
    )
    ratios = [float(r[2]) for r in rows]
    assert ratios[-1] <= ratios[0] * 1.5 + 0.5


def test_e9_stab_wall_time(benchmark):
    ivs = _make_intervals(4000, seed=114)
    tree = ExternalIntervalTree(BlockStore(B), ivs)
    benchmark(lambda: tree.stab(5_000.0))
