"""A4 -- the paper's Section 5 practicality remark, quantified.

"In practice, the amortized data structures we develop or a modification
of the static data structures that they are based upon are likely to be
most practical."  This ablation compares, per query, the dynamic
Theorem 6 PST against the static Theorem 4 scheme with an in-memory
directory (and likewise Theorem 7 vs the static Theorem 5 layering):
the static variants trade updatability and O(n) memory words of
directory for strictly fewer I/Os per query.
"""

from repro.core.external_pst import ExternalPrioritySearchTree
from repro.core.log_method import LogMethodThreeSidedIndex
from repro.core.range_tree import ExternalRangeTree
from repro.core.static_index import StaticFourSidedIndex, StaticThreeSidedIndex
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.workloads import (
    four_sided_queries,
    three_sided_queries,
    uniform_points,
)

from conftest import record_result

B = 32
N = 8000


def _run():
    pts = uniform_points(N, seed=150)
    rows = []

    # 3-sided pair
    s1, s2 = BlockStore(B), BlockStore(B)
    static3 = StaticThreeSidedIndex(s1, pts)
    pst = ExternalPrioritySearchTree(s2, pts)
    io_s = io_d = 0
    qs = three_sided_queries(pts, 30, seed=151, target_frac=0.01)
    for q in qs:
        with Meter(s1) as m1:
            g1 = static3.query(x_lo=q.a, x_hi=q.b, y_lo=q.c)
        with Meter(s2) as m2:
            g2 = pst.query(q.a, q.b, q.c)
        assert sorted(g1) == sorted(g2)
        io_s += m1.delta.ios
        io_d += m2.delta.ios
    rows.append([
        "3-sided", "static Thm 4 + directory", static3.blocks_in_use(),
        f"{io_s / len(qs):.1f}", static3.memory_catalog_entries(), "no",
    ])
    rows.append([
        "3-sided", "dynamic Thm 6 PST", pst.blocks_in_use(),
        f"{io_d / len(qs):.1f}", 0, "yes",
    ])
    # the middle rung: Bentley-Saxe dynamization of the static scheme
    s_lm = BlockStore(B)
    lm = LogMethodThreeSidedIndex(s_lm, pts)
    io_lm = 0
    for q in qs:
        with Meter(s_lm) as m:
            g = lm.query(q.a, q.b, q.c)
        assert sorted(g) == sorted(pst.query(q.a, q.b, q.c))
        io_lm += m.delta.ios
    rows.append([
        "3-sided", "log-method over Thm 4", lm.blocks_in_use(),
        f"{io_lm / len(qs):.1f}", lm.blocks_in_use(), "amortized",
    ])

    # 4-sided pair
    s3, s4 = BlockStore(B), BlockStore(B)
    static4 = StaticFourSidedIndex(s3, pts, rho=4)
    rt = ExternalRangeTree(s4, pts)
    io_s4 = io_d4 = 0
    qs4 = four_sided_queries(pts, 20, seed=152, target_frac=0.01)
    for q in qs4:
        with Meter(s3) as m1:
            g1 = static4.query(q.a, q.b, q.c, q.d)
        with Meter(s4) as m2:
            g2 = rt.query(q.a, q.b, q.c, q.d)
        assert sorted(g1) == sorted(g2)
        io_s4 += m1.delta.ios
        io_d4 += m2.delta.ios
    rows.append([
        "4-sided", "static Thm 5 + directory", static4.blocks_in_use(),
        f"{io_s4 / len(qs4):.1f}", static4.blocks_in_use(), "no",
    ])
    rows.append([
        "4-sided", "dynamic Thm 7 tree", rt.blocks_in_use(),
        f"{io_d4 / len(qs4):.1f}", 0, "yes",
    ])
    gate = {
        "static3_query_io": round(io_s / len(qs), 4),
        "pst_query_io": round(io_d / len(qs), 4),
        "logmethod_query_io": round(io_lm / len(qs), 4),
        "static4_query_io": round(io_s4 / len(qs4), 4),
        "rt_query_io": round(io_d4 / len(qs4), 4),
    }
    return rows, io_s, io_d, gate


def test_a4_static_vs_dynamic(benchmark):
    rows, io_s, io_d, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "A4",
        title=f"[A4] Section 5's practicality remark: static scheme + "
              f"directory vs dynamic structure (N = {N}, B = {B})",
        headers=["problem", "structure", "disk blocks", "I/O per query",
                 "directory entries (RAM)", "updatable"],
        rows=rows,
        gate=gate,
    )
    assert io_s < io_d   # the static trade must pay off on queries
