"""E2 -- Theorems 2-3: the redundancy / access-overhead tradeoff is tight.

Regenerates the paper's central tradeoff table: for each access overhead
``A`` the lower bound demands ``r = Omega(log n / log A)``; the Theorem 5
construction achieves ``r = O(log n / log rho)`` while covering queries
with ``O(rho + t)`` blocks.  Plotting measured upper-bound redundancy
against the lower-bound shape shows matching decay -- the tightness
claim of Section 2.
"""

import math

from repro.analysis.bounds import correlation
from repro.core.foursided_scheme import FourSidedLayeredIndex
from repro.geometry import FourSidedQuery
from repro.indexability import (
    fibonacci_lattice,
    fibonacci_tradeoff_bound,
)

from conftest import record_result

K_FIB = 19   # N = 4181
B = 16


def _run(points):
    N = len(points)
    n = N / B
    rows = []
    shapes, measured = [], []
    gate = {}
    for rho in (2, 4, 8, 16):
        idx = FourSidedLayeredIndex(points, B, rho=rho)
        # measured access cost on queries of ~B output across aspects
        worst_blocks_per_t = 0.0
        side = math.sqrt(B * N)
        for aspect in (1.0, 8.0, 64.0):
            w = min(N - 1, side * math.sqrt(aspect))
            h = min(N - 1, side / math.sqrt(aspect))
            q = FourSidedQuery(N / 5, N / 5 + w, N / 7, N / 7 + h)
            got, blocks = idx.query(q)
            t = max(1.0, len(set(got)) / B)
            worst_blocks_per_t = max(worst_blocks_per_t, len(blocks) / t)
        lb_shape = math.log(max(2.0, n)) / math.log(max(2.0, rho))
        lb_numeric = fibonacci_tradeoff_bound(N, B, A=float(rho))
        rows.append([
            rho, f"{idx.redundancy:.2f}", f"{lb_shape:.2f}",
            f"{lb_numeric:.4f}", f"{worst_blocks_per_t:.1f}",
        ])
        shapes.append(lb_shape)
        measured.append(idx.redundancy)
        gate[f"redundancy_rho{rho}"] = round(idx.redundancy, 4)
        gate[f"blocks_per_t_rho{rho}"] = round(worst_blocks_per_t, 4)
    return rows, correlation(shapes, measured), gate


def test_e2_tradeoff_tightness(benchmark):
    points = fibonacci_lattice(K_FIB)
    rows, corr, gate = benchmark.pedantic(
        _run, args=(points,), rounds=1, iterations=1
    )
    record_result(
        "E2",
        title=f"[E2] Tradeoff tightness on F_{{{K_FIB}}} "
              f"(upper-bound r tracks the lower-bound shape; "
              f"corr = {corr:.3f})",
        headers=["rho (~A)", "measured r (Thm 5)", "LB shape log n/log rho",
                 "LB numeric (Thm 2)", "blocks per t"],
        rows=rows,
        gate=gate,
    )
    # the measured redundancy must decay with the lower-bound shape
    assert corr > 0.97
