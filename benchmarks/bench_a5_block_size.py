"""A5 -- ablation: the block size B itself.

The paper treats B as a given of the machine.  This ablation sweeps it:
with N fixed, growing B shortens the tree (log_B N) and fattens blocks
(T/B), so query and update I/Os fall while per-block CPU work grows --
the knob a practitioner would turn first.
"""

from repro.analysis.bounds import log_b
from repro.core.external_pst import ExternalPrioritySearchTree
from repro.io import BlockStore
from repro.io.stats import Meter
from repro.workloads import three_sided_queries, uniform_points

from conftest import record_result

N = 8000


def _run():
    pts = uniform_points(N, seed=161)
    rows = []
    gate = {}
    for B in (16, 32, 64, 128):
        store = BlockStore(B)
        pst = ExternalPrioritySearchTree(store, pts)
        qs = three_sided_queries(pts, 25, seed=162, target_frac=0.01)
        q_io = t_total = 0
        for q in qs:
            with Meter(store) as m:
                got = pst.query(q.a, q.b, q.c)
            q_io += m.delta.ios
            t_total += len(got)
        fresh = [(x + 2e6, y) for x, y in uniform_points(40, seed=163)]
        with Meter(store) as m_upd:
            for p in fresh:
                pst.insert(*p)
        rows.append([
            B, pst.height(), pst.blocks_in_use(),
            f"{q_io / len(qs):.1f}",
            f"{log_b(N, B) + (t_total / len(qs)) / B:.1f}",
            f"{m_upd.delta.ios / len(fresh):.1f}",
        ])
        gate[f"query_io_B{B}"] = round(q_io / len(qs), 4)
        gate[f"insert_io_B{B}"] = round(m_upd.delta.ios / len(fresh), 4)
    return rows, gate


def test_a5_block_size_sweep(benchmark):
    rows, gate = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_result(
        "A5",
        title=f"[A5] Block-size ablation on the external PST (N = {N})",
        headers=["B", "height", "blocks", "query I/O", "log_B N + t/B",
                 "insert I/O"],
        rows=rows,
        gate=gate,
    )
    q_ios = [float(r[3]) for r in rows]
    assert q_ios[-1] < q_ios[0]      # bigger blocks -> fewer I/Os
